//! The SEEC runtime: the full observe–decide–act loop.

use actuation::{Actuator, ActuatorSpec, ConfigId, Configuration, ConfigurationSpace};
use heartbeats::{HeartbeatMonitor, MonitorObservation};
use serde::{Deserialize, Serialize};

use crate::control::{KalmanEstimator, PiController};
use crate::error::SeecError;
use crate::model::{ActionModel, ExplorationPolicy};
use crate::schedule::{ActuationSchedule, IdSchedule};

/// The outcome of one decision period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Configuration applied for the coming period.
    pub configuration: Configuration,
    /// Speedup over nominal the controller asked for.
    pub required_speedup: f64,
    /// The time-division schedule the configuration was drawn from.
    pub schedule: ActuationSchedule,
    /// Whether the performance goal was met over the last observation window
    /// (`None` when too little has been observed).
    pub goal_met: Option<bool>,
    /// The runtime's current estimate of the application's heart rate in the
    /// nominal configuration.
    pub estimated_nominal_rate: f64,
}

/// The outcome of one power-capped decision period
/// ([`SeecRuntime::decide_under_power_cap`]): plain `Copy` data over
/// interned ids, so a coordinator stepping hundreds of applications per
/// quantum allocates nothing per decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapDecision {
    /// Interned handle of the configuration applied for the coming period.
    pub configuration: ConfigId,
    /// Speedup over nominal the controller asked for.
    pub required_speedup: f64,
    /// Whether the performance goal was met over the last observation window
    /// (`None` when too little has been observed).
    pub goal_met: Option<bool>,
    /// The runtime's current estimate of the application's heart rate in the
    /// nominal configuration.
    pub estimated_nominal_rate: f64,
    /// Believed speedup of the applied configuration.
    pub believed_speedup: f64,
    /// Believed power multiplier of the applied configuration — what the
    /// caller's envelope was checked against.
    pub believed_powerup: f64,
}

/// What [`SeecRuntime::decide_core`] resolves before any owned
/// configuration is materialised: interned ids and `Copy` scalars only.
#[derive(Debug, Clone, Copy)]
struct CoreDecision {
    applied: ConfigId,
    schedule: IdSchedule,
    required_speedup: f64,
    goal_met: Option<bool>,
    estimated_nominal_rate: f64,
    upper_speedup: f64,
    lower_speedup: f64,
}

/// Builder for [`SeecRuntime`].
pub struct SeecRuntimeBuilder {
    monitor: HeartbeatMonitor,
    actuators: Vec<Box<dyn Actuator>>,
    target_override: Option<f64>,
    controller: PiController,
    estimator: KalmanEstimator,
    policy: ExplorationPolicy,
    anchored_estimation: bool,
    belief_halflife: f64,
    seed: u64,
}

impl std::fmt::Debug for SeecRuntimeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeecRuntimeBuilder")
            .field("application", &self.monitor.name())
            .field("actuators", &self.actuators.len())
            .field("target_override", &self.target_override)
            .finish_non_exhaustive()
    }
}

impl SeecRuntimeBuilder {
    /// Registers an actuator (hardware, OS, or application provided).
    pub fn actuator(mut self, actuator: Box<dyn Actuator>) -> Self {
        self.actuators.push(actuator);
        self
    }

    /// Registers several actuators at once.
    pub fn actuators<I: IntoIterator<Item = Box<dyn Actuator>>>(mut self, actuators: I) -> Self {
        self.actuators.extend(actuators);
        self
    }

    /// Overrides the target heart rate instead of reading it from the
    /// application's registered goal.
    pub fn target_heart_rate(mut self, beats_per_second: f64) -> Self {
        self.target_override = Some(beats_per_second);
        self
    }

    /// Replaces the classical controller tuning.
    pub fn controller(mut self, controller: PiController) -> Self {
        self.controller = controller;
        self
    }

    /// Replaces the adaptive-layer estimator tuning.
    pub fn estimator(mut self, estimator: KalmanEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the exploration (machine-learning layer) policy.
    pub fn exploration(mut self, policy: ExplorationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables anchored estimation (default off).
    ///
    /// The nominal-rate and nominal-power estimators attribute each
    /// observation window to the *believed* speedups of the configurations
    /// that ran in it. Windows dominated by never-observed configurations
    /// attribute against declared effects, which on real platforms are
    /// systematically optimistic (linear core scaling vs. Amdahl); the
    /// estimators absorb those under-estimates, the whole belief scale
    /// drifts to stay self-consistent with the deflated baseline, and the
    /// controller ends up demanding more speedup than the goal needs —
    /// permanently excluding the cheapest sufficient configurations (their
    /// declared speedups sit below the inflated requirement, so they are
    /// never tried and never corrected).
    ///
    /// With anchoring on, the baselines freeze after their first
    /// observation window — which covers the launch (nominal)
    /// configuration, whose unity effect is exact by definition. Beliefs
    /// are then always corrected against the same fixed ruler, so the
    /// gauge cannot drift: the requirement converges to the true needed
    /// speedup and the cheapest-sufficient search works as designed (phase
    /// drift in the application's underlying speed is handled by the
    /// controller's integral action rather than by re-estimating the
    /// baseline). Off (the default), estimation is bit-for-bit the
    /// historical behaviour.
    pub fn anchored_estimation(mut self, enabled: bool) -> Self {
        self.anchored_estimation = enabled;
        self
    }

    /// Enables belief aging with the given halflife, in decision periods
    /// (default ∞ = disabled, bit-for-bit the unaged runtime).
    ///
    /// The model's learned beliefs then decay toward their declared priors
    /// ([`ActionModel::with_belief_halflife`]), one tick per decision with
    /// feedback: a belief learned during one application phase loses half
    /// its deviation every `halflife` periods unless the configuration is
    /// re-observed. This is the *phase-stale beliefs* experiment — a
    /// runtime that has settled one duty notch above the optimum only
    /// re-tries the cheaper configuration once its stale belief has aged
    /// back toward the prior.
    ///
    /// # Panics
    ///
    /// Panics if `halflife_periods` is NaN, zero, or negative (use
    /// `f64::INFINITY` to disable).
    pub fn belief_halflife(mut self, halflife_periods: f64) -> Self {
        assert!(
            halflife_periods > 0.0,
            "belief halflife must be positive, got {halflife_periods}"
        );
        self.belief_halflife = halflife_periods;
        self
    }

    /// Seeds the exploration randomness (decisions are deterministic for a
    /// given seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the runtime.
    ///
    /// # Errors
    ///
    /// Returns [`SeecError::NoActuators`] when no actuator was registered, or
    /// [`SeecError::InvalidParameter`] when an override target is not positive.
    pub fn build(self) -> Result<SeecRuntime, SeecError> {
        if self.actuators.is_empty() {
            return Err(SeecError::NoActuators);
        }
        if let Some(target) = self.target_override {
            if !(target.is_finite() && target > 0.0) {
                return Err(SeecError::InvalidParameter(format!(
                    "target heart rate must be positive, got {target}"
                )));
            }
        }
        let specs: Vec<ActuatorSpec> = self.actuators.iter().map(|a| a.spec().clone()).collect();
        let space = ConfigurationSpace::new(specs);
        let current = space.nominal();
        let mut model = ActionModel::new(space, self.seed);
        model.set_policy(self.policy);
        model.set_belief_halflife(self.belief_halflife);
        let current_id = model.table().nominal();
        let mut history = std::collections::VecDeque::with_capacity(HISTORY_CAPACITY);
        history.push_back(AppliedSegment {
            start: f64::NEG_INFINITY,
            id: current_id,
            speedup: 1.0,
            powerup: 1.0,
        });
        Ok(SeecRuntime {
            monitor: self.monitor,
            actuators: self.actuators,
            model,
            controller: self.controller,
            estimator: self.estimator,
            power_estimator: KalmanEstimator::default_tuning(),
            target_override: self.target_override,
            current,
            current_id,
            schedule_accumulator: 0.0,
            decisions: 0,
            anchored_estimation: self.anchored_estimation,
            history,
        })
    }
}

/// Minimum fraction of the observation window the current configuration
/// must have occupied for its residual speedup/powerup observation to be
/// informative enough to update the model.
const MIN_LEARN_FRACTION: f64 = 0.5;

/// Number of applied-configuration segments retained for window attribution
/// (a fixed-capacity ring: pushing at capacity evicts the oldest).
const HISTORY_CAPACITY: usize = 128;

/// Time-weighted effects applied over one observation window.
#[derive(Debug, Clone, Copy)]
struct WindowAttribution {
    /// Time-weighted mean believed speedup over the whole window.
    speedup: f64,
    /// Time-weighted mean believed powerup over the whole window.
    powerup: f64,
    /// Fraction of the window spent in the configuration current at
    /// decision time.
    current_fraction: f64,
    /// Contribution of the *other* configurations to the mixture speedup
    /// (`speedup = current_fraction·s_current + other_speedup`).
    other_speedup: f64,
    /// Contribution of the other configurations to the mixture powerup.
    other_powerup: f64,
}

/// One stretch of time spent in a single configuration, used to attribute
/// window-averaged observations to the speedups that were actually applied.
/// Configurations are held as copyable interned ids, so segments are plain
/// `Copy` data and the ring never allocates after construction.
#[derive(Debug, Clone, Copy)]
struct AppliedSegment {
    /// Simulation time the configuration took effect.
    start: f64,
    id: ConfigId,
    speedup: f64,
    powerup: f64,
}

/// The SEEC decision engine bound to one application and a set of actuators.
pub struct SeecRuntime {
    monitor: HeartbeatMonitor,
    actuators: Vec<Box<dyn Actuator>>,
    model: ActionModel,
    controller: PiController,
    estimator: KalmanEstimator,
    power_estimator: KalmanEstimator,
    target_override: Option<f64>,
    /// The applied configuration, materialised for [`Self::current_configuration`];
    /// kept in sync with `current_id` by in-place settings updates.
    current: Configuration,
    /// Interned handle of `current` — what the hot path actually passes around.
    current_id: ConfigId,
    schedule_accumulator: f64,
    decisions: u64,
    /// See [`SeecRuntimeBuilder::anchored_estimation`].
    anchored_estimation: bool,
    history: std::collections::VecDeque<AppliedSegment>,
}

impl std::fmt::Debug for SeecRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeecRuntime")
            .field("application", &self.monitor.name())
            .field("actuators", &self.actuators.len())
            .field("decisions", &self.decisions)
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl SeecRuntime {
    /// Starts building a runtime observing `monitor`.
    pub fn builder(monitor: HeartbeatMonitor) -> SeecRuntimeBuilder {
        SeecRuntimeBuilder {
            monitor,
            actuators: Vec::new(),
            target_override: None,
            controller: PiController::default_tuning(),
            estimator: KalmanEstimator::default_tuning(),
            policy: ExplorationPolicy::default(),
            anchored_estimation: false,
            belief_halflife: f64::INFINITY,
            seed: 0x5eec,
        }
    }

    /// The configuration currently applied.
    pub fn current_configuration(&self) -> &Configuration {
        &self.current
    }

    /// Number of decisions taken so far.
    pub fn decisions_made(&self) -> u64 {
        self.decisions
    }

    /// The online action model (for inspection and tests).
    pub fn model(&self) -> &ActionModel {
        &self.model
    }

    /// Current estimate of the application's nominal-configuration heart rate.
    pub fn estimated_nominal_rate(&self) -> f64 {
        self.estimator.estimate()
    }

    /// Current estimate of the power the application draws in the nominal
    /// configuration, in watts — `None` until at least one power sample has
    /// been attributed to the application. A coordinator divides an awarded
    /// watt envelope by this to obtain the powerup cap it hands to
    /// [`Self::decide_under_power_cap`].
    pub fn estimated_nominal_power(&self) -> Option<f64> {
        self.power_estimator
            .is_initialised()
            .then(|| self.power_estimator.estimate())
    }

    /// Interned handle of the configuration currently applied.
    pub fn current_config_id(&self) -> ConfigId {
        self.current_id
    }

    /// The target heart rate in force (override or the application's goal).
    /// Reads the application's registry; on a hot path that already holds a
    /// [`MonitorObservation`], combine [`Self::target_override`] with the
    /// observation's target instead.
    pub fn target_heart_rate(&self) -> Option<f64> {
        self.target_override.or_else(|| self.monitor.target_heart_rate())
    }

    /// The builder-supplied target override, if any (no registry read).
    pub fn target_override(&self) -> Option<f64> {
        self.target_override
    }

    /// Runs one observe–decide–act iteration at simulation time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`SeecError::NoGoal`] if neither the application nor the
    /// builder specified a performance target, or an actuation error if a
    /// chosen setting cannot be applied.
    pub fn decide(&mut self, now: f64) -> Result<Decision, SeecError> {
        // ---- Observe -------------------------------------------------
        // One snapshot, one lock: stats, goal target, goal attainment, the
        // last beat time, and mean power all come from the same read.
        let observation = self.monitor.observation();
        self.decide_with_observation(now, &observation)
    }

    /// [`Self::decide`] against a caller-supplied snapshot of this
    /// runtime's monitor. Lets a caller that already holds an observation —
    /// e.g. [`crate::UncoordinatedRuntime`], whose instances all watch the
    /// same application — skip the redundant registry read; the result is
    /// identical to `decide` as long as `observation` came from this
    /// runtime's monitor and nothing beat in between.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::decide`].
    pub fn decide_with_observation(
        &mut self,
        now: f64,
        observation: &MonitorObservation,
    ) -> Result<Decision, SeecError> {
        let core = self.decide_core(now, observation, f64::INFINITY)?;
        // Materialise owned configurations only for the Decision record the
        // caller sees.
        let table = self.model.table();
        let schedule = if core.schedule.upper == core.schedule.lower {
            ActuationSchedule::steady(
                table.config_of(core.schedule.upper),
                core.schedule.expected_speedup,
            )
        } else {
            ActuationSchedule::bracketing(
                table.config_of(core.schedule.upper),
                core.upper_speedup,
                table.config_of(core.schedule.lower),
                core.lower_speedup,
                core.required_speedup,
            )
        };
        Ok(Decision {
            configuration: self.current.clone(),
            required_speedup: core.required_speedup,
            schedule,
            goal_met: core.goal_met,
            estimated_nominal_rate: core.estimated_nominal_rate,
        })
    }

    /// One observe–decide–act iteration restricted to configurations whose
    /// believed power multiplier is at most `max_powerup` — the
    /// decide-under-power-envelope entry point a multi-application
    /// coordinator calls after arbitration. Selection, bracketing, and
    /// exploration all run on the admissible prefix of the model's
    /// power-sorted index; nothing is allocated on this path and the result
    /// is plain `Copy` data. An infinite `max_powerup` behaves exactly like
    /// [`Self::decide`].
    ///
    /// When even the cheapest configuration's believed powerup exceeds the
    /// cap, the cheapest is applied — an application cannot run in no
    /// configuration, so an infeasibly small envelope degrades to "as cheap
    /// as the action space allows".
    ///
    /// ```
    /// use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    /// use heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal};
    /// use seec::SeecRuntime;
    ///
    /// // A DVFS knob: "fast" doubles speed at 2.6x power.
    /// let dvfs = ActuatorSpec::builder("dvfs")
    ///     .setting(SettingSpec::new("nominal"))
    ///     .setting(SettingSpec::new("fast").effect(Axis::Performance, 2.0).effect(Axis::Power, 2.6))
    ///     .build()
    ///     .unwrap();
    /// let registry = HeartbeatRegistry::new("app");
    /// registry.issuer().set_goal(Goal::Performance(PerformanceGoal::heart_rate(100.0)));
    /// let mut runtime = SeecRuntime::builder(registry.monitor())
    ///     .actuator(Box::new(TableActuator::new(dvfs)))
    ///     .build()
    ///     .unwrap();
    ///
    /// // The application needs ~2x its nominal ~50 beats/s, but its awarded
    /// // power envelope only admits configurations up to 1.5x power: the
    /// // decision stays inside the envelope instead of chasing the goal.
    /// let mut now = 0.0;
    /// for _ in 0..20 {
    ///     for _ in 0..4 {
    ///         now += 0.02; // ~50 beats/s under the nominal configuration
    ///         registry.issuer().heartbeat(now);
    ///     }
    ///     let decision = runtime.decide_under_power_cap(now, 1.5).unwrap();
    ///     assert!(decision.believed_powerup <= 1.5);
    /// }
    /// // Uncapped, the same runtime may pick the fast (2.6x power) setting.
    /// let unrestricted = runtime.decide_under_power_cap(now, f64::INFINITY).unwrap();
    /// assert!(unrestricted.required_speedup > 1.0);
    /// ```
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::decide`].
    pub fn decide_under_power_cap(
        &mut self,
        now: f64,
        max_powerup: f64,
    ) -> Result<CapDecision, SeecError> {
        let observation = self.monitor.observation();
        self.decide_under_power_cap_with_observation(now, &observation, max_powerup)
    }

    /// [`Self::decide_under_power_cap`] against a caller-supplied snapshot
    /// (see [`Self::decide_with_observation`] for the snapshot contract).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::decide`].
    pub fn decide_under_power_cap_with_observation(
        &mut self,
        now: f64,
        observation: &MonitorObservation,
        max_powerup: f64,
    ) -> Result<CapDecision, SeecError> {
        let core = self.decide_core(now, observation, max_powerup)?;
        let applied = self.model.believed(core.applied);
        Ok(CapDecision {
            configuration: core.applied,
            required_speedup: core.required_speedup,
            goal_met: core.goal_met,
            estimated_nominal_rate: core.estimated_nominal_rate,
            believed_speedup: applied.speedup,
            believed_powerup: applied.powerup,
        })
    }

    /// The full decision pipeline over interned ids: observe (from the
    /// supplied snapshot), track, learn, select under `max_powerup`, and
    /// act. Both the uncapped path (`max_powerup = ∞`, whose selections are
    /// bit-identical to the historical `decide`) and the power-envelope
    /// path run through here, so they can never drift apart.
    fn decide_core(
        &mut self,
        now: f64,
        obs: &MonitorObservation,
        max_powerup: f64,
    ) -> Result<CoreDecision, SeecError> {
        let target = self
            .target_override
            .or(obs.target_heart_rate)
            .ok_or(SeecError::NoGoal)?;
        let stats = obs.stats;
        let observed = stats.window;
        let goal_met = obs.performance_goal_met.or({
            if stats.beats_in_window >= 2 {
                Some(observed >= target)
            } else {
                None
            }
        });

        if stats.beats_in_window < 2 || observed <= 0.0 {
            // Not enough feedback yet: stay at the current configuration —
            // unless it breaches the power envelope. A stalled application
            // must not sit above its awarded envelope indefinitely, so the
            // capped path falls to the cheapest configuration (the floor
            // every envelope degrades to). Never taken by the uncapped
            // path (`max_powerup = ∞`), whose behaviour is unchanged.
            if self.model.believed(self.current_id).powerup > max_powerup {
                let (cheapest, _) = self.model.cheapest_id();
                self.apply_id(cheapest)?;
                let applied = self.model.believed(cheapest);
                if self.history.len() == HISTORY_CAPACITY {
                    self.history.pop_front();
                }
                self.history.push_back(AppliedSegment {
                    start: now,
                    id: cheapest,
                    speedup: applied.speedup,
                    powerup: applied.powerup,
                });
            }
            self.decisions += 1;
            return Ok(CoreDecision {
                applied: self.current_id,
                schedule: IdSchedule::steady(self.current_id, 1.0),
                required_speedup: 1.0,
                goal_met,
                estimated_nominal_rate: self.estimator.estimate(),
                upper_speedup: 1.0,
                lower_speedup: 1.0,
            });
        }

        // ---- Age beliefs (no-op unless a finite halflife was set) -----
        // One tick per decision period with feedback: stale learned
        // deviations decay toward the declared priors before this period's
        // fresh observation lands at full strength below.
        self.model.age_beliefs();

        // ---- Adaptive layer: track the nominal-configuration rate -----
        // The observed rate is a window average, and time-division schedules
        // change configuration between (and within) windows, so the
        // observation must be attributed to the time-weighted speedup that
        // was actually applied over the window — not to the configuration
        // that happens to be current. Attributing to the current
        // configuration alone drags the nominal-rate estimate toward
        // whichever bracketing configuration ran last and never converges.
        //
        // The window's beats span `[last_beat - duration, last_beat]`; when
        // the application has stopped beating (e.g. a configuration too slow
        // to complete a beat per quantum), `now` trails the last beat and
        // anchoring at `now` would attribute the stale rate to segments that
        // produced none of its beats.
        let window_end = obs.last_beat_timestamp.unwrap_or(now);
        let window_duration = (stats.beats_in_window as f64 - 1.0) / observed;
        let window_start = window_end - window_duration;
        let attribution = self.window_attribution(window_start, window_end);
        let nominal_rate_observation = observed / attribution.speedup.max(1e-9);
        // Under anchored estimation, the baselines freeze after their
        // first (launch-configuration) observation: absorbing later windows
        // lets optimistic declared effects deflate the baseline and drift
        // the whole belief scale (see
        // [`SeecRuntimeBuilder::anchored_estimation`]).
        let anchored_hold = self.anchored_estimation && self.estimator.is_initialised();
        let base_rate = if anchored_hold {
            self.estimator.estimate()
        } else {
            self.estimator.observe(nominal_rate_observation)
        };

        // Power baseline: the window's mean power divided by the mixture
        // powerup estimates the nominal-configuration power.
        let mean_power = obs.mean_power;
        let nominal_power = match mean_power {
            Some(power) if power > 0.0 => {
                let observation = power / attribution.powerup.max(1e-9);
                if anchored_hold && self.power_estimator.is_initialised() {
                    Some(self.power_estimator.estimate())
                } else {
                    Some(self.power_estimator.observe(observation))
                }
            }
            _ => None,
        };

        // ---- Model learning: correct speedup/power beliefs ------------
        // The mixture satisfies observed/base ≈ f_cur·s_cur + Σ f_i·s_i over
        // the window's segments, so the current configuration's speedup can
        // be solved for residually, trusting the other segments' beliefs.
        // Only windows where the current configuration ran long enough for
        // the residual to be informative are used.
        if attribution.current_fraction >= MIN_LEARN_FRACTION {
            let mixture_speedup = observed / base_rate.max(1e-9);
            let speedup_obs =
                (mixture_speedup - attribution.other_speedup) / attribution.current_fraction;
            let powerup_obs = match (mean_power, nominal_power) {
                (Some(power), Some(nominal)) if nominal > 0.0 => {
                    let mixture_powerup = power / nominal;
                    (mixture_powerup - attribution.other_powerup) / attribution.current_fraction
                }
                _ => self.model.believed(self.current_id).powerup,
            };
            if speedup_obs.is_finite() && speedup_obs > 0.0 {
                self.model.observe_id(self.current_id, speedup_obs, powerup_obs);
            }
        }

        // ---- Decide: classical control + model-based selection --------
        // Selection and scheduling run entirely on interned ids: no
        // settings vector is allocated anywhere on this path. Under a
        // finite power cap both ends of the schedule come from the
        // admissible prefix of the power index.
        let required = self.controller.next_speedup(target, observed, base_rate);
        let upper = self.model.choose_id_capped(required, self.current_id, max_powerup);
        let upper_speedup = self.model.believed(upper).speedup;
        let (lower, lower_speedup) = self
            .model
            .bracket_below_id_capped(upper_speedup.min(required), max_powerup);
        let schedule = if upper == lower {
            IdSchedule::steady(upper, upper_speedup)
        } else {
            IdSchedule::bracketing(upper, upper_speedup, lower, lower_speedup, required)
        };
        let next = schedule.id_for_period(&mut self.schedule_accumulator);

        // ---- Act -------------------------------------------------------
        self.apply_id(next)?;
        let applied = self.model.believed(next);
        if self.history.len() == HISTORY_CAPACITY {
            self.history.pop_front();
        }
        self.history.push_back(AppliedSegment {
            start: now,
            id: next,
            speedup: applied.speedup,
            powerup: applied.powerup,
        });
        self.decisions += 1;
        Ok(CoreDecision {
            applied: next,
            schedule,
            required_speedup: required,
            goal_met,
            estimated_nominal_rate: base_rate,
            upper_speedup,
            lower_speedup,
        })
    }

    /// Time-weighted effects applied over the observation window
    /// `[window_start, now]`, and the fraction of that window spent in the
    /// configuration that is current at decision time.
    fn window_attribution(&self, window_start: f64, now: f64) -> WindowAttribution {
        let mut total = 0.0;
        let mut speedup_weighted = 0.0;
        let mut powerup_weighted = 0.0;
        let mut current_time = 0.0;
        let mut other_speedup_weighted = 0.0;
        let mut other_powerup_weighted = 0.0;
        for (i, segment) in self.history.iter().enumerate() {
            let end = self
                .history
                .get(i + 1)
                .map_or(now, |next| next.start.min(now));
            let overlap = (end.min(now) - segment.start.max(window_start)).max(0.0);
            if overlap <= 0.0 {
                continue;
            }
            total += overlap;
            speedup_weighted += overlap * segment.speedup;
            powerup_weighted += overlap * segment.powerup;
            if segment.id == self.current_id {
                current_time += overlap;
            } else {
                other_speedup_weighted += overlap * segment.speedup;
                other_powerup_weighted += overlap * segment.powerup;
            }
        }
        if total <= 0.0 {
            // Degenerate window: zero-length, or so stale that every retained
            // history segment starts after it (the application stopped
            // beating long ago and the segment cap evicted the overlapping
            // ones). The observation describes none of the retained
            // segments, so report zero current_fraction — the learning gate
            // must skip it, not attribute it to the current configuration.
            let believed = self.model.believed(self.current_id);
            return WindowAttribution {
                speedup: believed.speedup,
                powerup: believed.powerup,
                current_fraction: 0.0,
                other_speedup: 0.0,
                other_powerup: 0.0,
            };
        }
        WindowAttribution {
            speedup: speedup_weighted / total,
            powerup: powerup_weighted / total,
            current_fraction: current_time / total,
            other_speedup: other_speedup_weighted / total,
            other_powerup: other_powerup_weighted / total,
        }
    }

    /// Applies the interned configuration `id` to every registered actuator.
    /// No-ops (including the actuator round trips) when `id` is already
    /// current.
    ///
    /// # Errors
    ///
    /// Propagates the first actuation failure; earlier actuators keep the
    /// settings already applied.
    fn apply_id(&mut self, id: ConfigId) -> Result<(), SeecError> {
        if id == self.current_id {
            return Ok(());
        }
        for (position, actuator) in self.actuators.iter_mut().enumerate() {
            let setting = self.model.table().setting(id, position);
            if actuator.current() != setting {
                actuator.apply(setting)?;
            }
        }
        self.current_id = id;
        self.current = self.model.table().config_of(id);
        Ok(())
    }

    /// Applies `configuration` to every registered actuator. Positions the
    /// configuration does not cover fall back to the actuator's nominal
    /// setting, and the stored current configuration is the canonical
    /// full-arity form.
    ///
    /// # Errors
    ///
    /// Propagates the first actuation failure; earlier actuators keep the
    /// settings already applied.
    pub fn apply(&mut self, configuration: &Configuration) -> Result<(), SeecError> {
        for (position, actuator) in self.actuators.iter_mut().enumerate() {
            let setting = configuration
                .setting(position)
                .unwrap_or_else(|| actuator.spec().nominal());
            if actuator.current() != setting {
                actuator.apply(setting)?;
            }
        }
        // Canonicalise: every setting just applied is valid, so the interned
        // id always exists.
        let applied = Configuration::new(
            self.actuators
                .iter()
                .enumerate()
                .map(|(position, actuator)| {
                    configuration
                        .setting(position)
                        .unwrap_or_else(|| actuator.spec().nominal())
                })
                .collect(),
        );
        self.current_id = self
            .model
            .table()
            .id_of(&applied)
            .expect("applied settings are valid for the space");
        self.current = applied;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuation::{Axis, SettingSpec, TableActuator};
    use heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal};

    fn dvfs_spec() -> ActuatorSpec {
        ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("nominal"))
            .setting(
                SettingSpec::new("fast")
                    .effect(Axis::Performance, 2.0)
                    .effect(Axis::Power, 2.6),
            )
            .nominal(1)
            .build()
            .unwrap()
    }

    fn cores_spec() -> ActuatorSpec {
        ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("2")
                    .effect(Axis::Performance, 1.9)
                    .effect(Axis::Power, 2.0),
            )
            .setting(
                SettingSpec::new("4")
                    .effect(Axis::Performance, 3.5)
                    .effect(Axis::Power, 4.0),
            )
            .build()
            .unwrap()
    }

    fn no_exploration() -> ExplorationPolicy {
        ExplorationPolicy {
            epsilon: 0.0,
            ..ExplorationPolicy::default()
        }
    }

    /// Simulates an application whose heart rate is `nominal_rate` times the
    /// believed speedup of the configuration SEEC applied, and checks that
    /// the runtime converges to meeting the target at low cost.
    fn run_closed_loop(target: f64, nominal_rate: f64, periods: usize) -> (SeecRuntime, f64) {
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(target)));
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .actuator(Box::new(TableActuator::new(cores_spec())))
            .exploration(no_exploration())
            .build()
            .unwrap();

        let issuer = registry.issuer();
        let monitor = registry.monitor();
        let mut now = 0.0;
        let mut rates = Vec::new();
        for _ in 0..periods {
            // The "true" behaviour of the platform mirrors the declared
            // effects exactly (the model starts correct in this test).
            let effect = runtime
                .model()
                .space()
                .predicted_effect(runtime.current_configuration())
                .unwrap();
            let rate = nominal_rate * effect.performance;
            let power = 10.0 * effect.power;
            // Emit a window's worth of beats at that rate.
            for _ in 0..8 {
                now += 1.0 / rate;
                issuer.heartbeat(now);
            }
            monitor.record_power_sample(now, power);
            runtime.decide(now).unwrap();
            rates.push(rate);
        }
        // Time-division schedules alternate between bracketing settings, so
        // judge convergence on the average delivered rate of the final
        // periods rather than whichever setting the last period landed on.
        let tail = rates.len().saturating_sub(10);
        let settled_rate = rates[tail..].iter().sum::<f64>() / rates[tail..].len() as f64;
        (runtime, settled_rate)
    }

    #[test]
    fn builder_requires_actuators_and_valid_targets() {
        let registry = HeartbeatRegistry::new("app");
        assert!(matches!(
            SeecRuntime::builder(registry.monitor()).build(),
            Err(SeecError::NoActuators)
        ));
        assert!(matches!(
            SeecRuntime::builder(registry.monitor())
                .actuator(Box::new(TableActuator::new(dvfs_spec())))
                .target_heart_rate(-1.0)
                .build(),
            Err(SeecError::InvalidParameter(_))
        ));
    }

    #[test]
    fn decide_without_goal_is_an_error() {
        let registry = HeartbeatRegistry::new("app");
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .build()
            .unwrap();
        assert!(matches!(runtime.decide(0.0), Err(SeecError::NoGoal)));
    }

    #[test]
    fn runtime_converges_to_the_goal() {
        // Nominal rate 10 beats/s, target 30: needs ~3x speedup.
        let (runtime, settled_rate) = run_closed_loop(30.0, 10.0, 60);
        assert!(runtime.decisions_made() >= 60);
        assert!(
            settled_rate >= 30.0 * 0.85,
            "closed loop should settle near the target, got {settled_rate}"
        );
        // The estimate is taken while the schedule alternates between
        // bracketing configurations, so it carries some bias; it must still
        // land in the right neighbourhood of the true 10 beats/s.
        assert!(
            runtime.estimated_nominal_rate() > 5.0 && runtime.estimated_nominal_rate() < 20.0,
            "adaptive layer should learn the nominal rate's neighbourhood, got {}",
            runtime.estimated_nominal_rate()
        );
    }

    #[test]
    fn model_learning_stays_active_under_bracketing_schedules() {
        // The platform's true speedups are weaker than the declared effects:
        // the fast DVFS point delivers 1.6x (declared 2.0x) and 4 cores
        // deliver 2.8x (declared 3.5x). SEEC must keep learning while the
        // time-division schedule alternates configurations (the 64-beat
        // window always spans several decision periods here) and still reach
        // the target — if learning shut off in the bracketing steady state,
        // the runtime would keep scheduling off the optimistic declared
        // speedups and chronically undershoot.
        let target = 30.0;
        let nominal_rate = 10.0;
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(target)));
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .actuator(Box::new(TableActuator::new(cores_spec())))
            .exploration(no_exploration())
            .build()
            .unwrap();
        let true_speedup = |cfg: &Configuration| -> f64 {
            let dvfs = [0.5, 1.0, 1.6][cfg.setting(0).unwrap_or(1)];
            let cores = [1.0, 1.7, 2.8][cfg.setting(1).unwrap_or(0)];
            dvfs * cores
        };

        let issuer = registry.issuer();
        let monitor = registry.monitor();
        let mut now = 0.0;
        let mut rates = Vec::new();
        for _ in 0..120 {
            let speedup = true_speedup(runtime.current_configuration());
            let rate = nominal_rate * speedup;
            for _ in 0..8 {
                now += 1.0 / rate;
                issuer.heartbeat(now);
            }
            monitor.record_power_sample(now, 10.0 * speedup);
            runtime.decide(now).unwrap();
            rates.push(rate);
        }

        let tail = rates.len() - 10;
        let settled = rates[tail..].iter().sum::<f64>() / 10.0;
        assert!(
            settled >= target * 0.85,
            "SEEC must learn the true (weaker) effects and still settle near \
             the target, got {settled:.2}"
        );
        assert!(
            runtime.model().observed_configurations() > 0,
            "model learning must have run"
        );
        // Base rate and per-configuration speedups are only jointly
        // observable (scale shifts between them cancel), so the calibrated,
        // identifiable quantity is the *predicted absolute rate*
        // `base × believed_speedup`. For the steady-state configuration it
        // must approach the true delivered rate — with learning shut off it
        // stays pinned to the optimistic declared prediction.
        let steady = runtime.current_configuration().clone();
        let believed = runtime.model().believed_effect(&steady);
        assert!(
            believed.observations > 0,
            "the steady-state configuration must have been observed"
        );
        let predicted_rate = believed.speedup * runtime.estimated_nominal_rate();
        let true_rate = nominal_rate * true_speedup(&steady);
        assert!(
            (predicted_rate - true_rate).abs() <= 0.25 * true_rate,
            "learned prediction for the steady-state configuration should \
             approach its true rate {true_rate:.1}, got {predicted_rate:.1}"
        );
    }

    #[test]
    fn runtime_minimises_cost_when_the_goal_is_easy() {
        // Target of 6 beats/s with nominal 10: the cheap (slow) settings are
        // sufficient, so SEEC should not run flat out.
        let (runtime, _) = run_closed_loop(6.0, 10.0, 60);
        let effect = runtime
            .model()
            .space()
            .predicted_effect(runtime.current_configuration())
            .unwrap();
        assert!(
            effect.power < 1.5,
            "easy goals must not be met with expensive configurations (power {})",
            effect.power
        );
    }

    #[test]
    fn early_decisions_without_feedback_keep_the_nominal_configuration() {
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(10.0)));
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .build()
            .unwrap();
        let nominal = runtime.current_configuration().clone();
        let decision = runtime.decide(0.0).unwrap();
        assert_eq!(decision.configuration, nominal);
        assert_eq!(decision.required_speedup, 1.0);
        assert_eq!(decision.goal_met, None);
    }

    #[test]
    fn target_override_takes_precedence_over_the_goal() {
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(10.0)));
        let runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .target_heart_rate(25.0)
            .build()
            .unwrap();
        assert_eq!(runtime.target_heart_rate(), Some(25.0));
    }

    #[test]
    fn apply_forwards_settings_to_every_actuator() {
        let registry = HeartbeatRegistry::new("app");
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .actuator(Box::new(TableActuator::new(cores_spec())))
            .target_heart_rate(5.0)
            .build()
            .unwrap();
        let config = Configuration::new(vec![2, 1]);
        runtime.apply(&config).unwrap();
        assert_eq!(runtime.current_configuration(), &config);
        assert!(format!("{runtime:?}").contains("SeecRuntime"));
    }

    #[test]
    fn infinite_power_cap_reproduces_the_uncapped_run() {
        // Two identical closed loops, one driven through decide(), one
        // through decide_under_power_cap(∞): applied configurations must
        // match step for step.
        let run = |capped: bool| {
            let registry = HeartbeatRegistry::new("app");
            registry
                .issuer()
                .set_goal(Goal::Performance(PerformanceGoal::heart_rate(20.0)));
            let mut runtime = SeecRuntime::builder(registry.monitor())
                .actuator(Box::new(TableActuator::new(dvfs_spec())))
                .actuator(Box::new(TableActuator::new(cores_spec())))
                .seed(3)
                .build()
                .unwrap();
            let issuer = registry.issuer();
            let mut now = 0.0;
            let mut configs = Vec::new();
            for _ in 0..30 {
                for _ in 0..4 {
                    now += 0.05;
                    issuer.heartbeat(now);
                }
                if capped {
                    let decision = runtime.decide_under_power_cap(now, f64::INFINITY).unwrap();
                    configs.push(runtime.model().table().config_of(decision.configuration));
                } else {
                    let decision = runtime.decide(now).unwrap();
                    configs.push(decision.configuration);
                }
            }
            configs
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn power_cap_keeps_the_applied_configuration_inside_the_envelope() {
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(40.0)));
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .actuator(Box::new(TableActuator::new(cores_spec())))
            .exploration(no_exploration())
            .build()
            .unwrap();
        let issuer = registry.issuer();
        let monitor = registry.monitor();
        // The goal needs ~4x the nominal 10 beats/s, but the envelope only
        // admits configurations up to 2.1x power: the runtime must stay
        // inside it (fastest admissible) rather than chase the goal.
        let cap = 2.1;
        let mut now = 0.0;
        for _ in 0..40 {
            let effect = runtime
                .model()
                .space()
                .predicted_effect(runtime.current_configuration())
                .unwrap();
            let rate = 10.0 * effect.performance;
            for _ in 0..8 {
                now += 1.0 / rate;
                issuer.heartbeat(now);
            }
            monitor.record_power_sample(now, 10.0 * effect.power);
            let decision = runtime.decide_under_power_cap(now, cap).unwrap();
            assert!(
                decision.believed_powerup <= cap + 1e-9,
                "applied powerup {} exceeds the {cap} envelope",
                decision.believed_powerup
            );
        }
        assert!(runtime.decisions_made() >= 40);
        // The power estimator converged on the ~10 W nominal draw.
        let nominal_power = runtime.estimated_nominal_power().unwrap();
        assert!(
            (nominal_power - 10.0).abs() < 3.0,
            "nominal power estimate should near 10 W, got {nominal_power}"
        );
    }

    #[test]
    fn stalled_app_above_its_envelope_falls_to_the_cheapest_configuration() {
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(10.0)));
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .actuator(Box::new(TableActuator::new(cores_spec())))
            .build()
            .unwrap();
        // Manually park the app in the most expensive configuration, then
        // cut its envelope while it emits no beats: the capped decide must
        // not leave it over-envelope just because feedback is missing.
        runtime.apply(&Configuration::new(vec![2, 2])).unwrap();
        let decision = runtime.decide_under_power_cap(1.0, 0.5).unwrap();
        assert_eq!(
            runtime.current_configuration(),
            &Configuration::new(vec![0, 0]),
            "stalled over-cap app must fall to the cheapest configuration"
        );
        assert!(decision.goal_met.is_none());
        // The uncapped stall path still keeps the current configuration.
        runtime.apply(&Configuration::new(vec![2, 2])).unwrap();
        let _ = runtime.decide(2.0).unwrap();
        assert_eq!(runtime.current_configuration(), &Configuration::new(vec![2, 2]));
    }

    #[test]
    fn infinite_belief_halflife_reproduces_the_unaged_run() {
        // The flag-gate pin: a runtime built with an explicit infinite
        // halflife takes byte-for-byte the decisions of one built without.
        let run = |halflife: Option<f64>| {
            let registry = HeartbeatRegistry::new("app");
            registry
                .issuer()
                .set_goal(Goal::Performance(PerformanceGoal::heart_rate(20.0)));
            let mut builder = SeecRuntime::builder(registry.monitor())
                .actuator(Box::new(TableActuator::new(dvfs_spec())))
                .actuator(Box::new(TableActuator::new(cores_spec())))
                .seed(11);
            if let Some(halflife) = halflife {
                builder = builder.belief_halflife(halflife);
            }
            let mut runtime = builder.build().unwrap();
            let issuer = registry.issuer();
            let mut now = 0.0;
            let mut configs = Vec::new();
            for _ in 0..40 {
                for _ in 0..4 {
                    now += 0.05;
                    issuer.heartbeat(now);
                }
                configs.push(runtime.decide(now).unwrap().configuration);
            }
            configs
        };
        assert_eq!(run(None), run(Some(f64::INFINITY)));
        // A finite halflife is allowed to differ (and typically does).
        assert_eq!(run(Some(2.0)).len(), 40);
    }

    #[test]
    #[should_panic(expected = "halflife")]
    fn non_positive_belief_halflife_panics() {
        let registry = HeartbeatRegistry::new("app");
        let _ = SeecRuntime::builder(registry.monitor()).belief_halflife(0.0);
    }

    #[test]
    fn decisions_are_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let registry = HeartbeatRegistry::new("app");
            registry
                .issuer()
                .set_goal(Goal::Performance(PerformanceGoal::heart_rate(20.0)));
            let mut runtime = SeecRuntime::builder(registry.monitor())
                .actuator(Box::new(TableActuator::new(dvfs_spec())))
                .actuator(Box::new(TableActuator::new(cores_spec())))
                .seed(seed)
                .build()
                .unwrap();
            let issuer = registry.issuer();
            let mut now = 0.0;
            let mut configs = Vec::new();
            for _ in 0..20 {
                for _ in 0..4 {
                    now += 0.05;
                    issuer.heartbeat(now);
                }
                configs.push(runtime.decide(now).unwrap().configuration);
            }
            configs
        };
        assert_eq!(run(7), run(7));
    }
}
