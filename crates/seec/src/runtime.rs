//! The SEEC runtime: the full observe–decide–act loop.

use actuation::{Actuator, ActuatorSpec, Configuration, ConfigurationSpace};
use heartbeats::HeartbeatMonitor;
use serde::{Deserialize, Serialize};

use crate::control::{KalmanEstimator, PiController};
use crate::error::SeecError;
use crate::model::{ActionModel, ExplorationPolicy};
use crate::schedule::ActuationSchedule;

/// The outcome of one decision period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Configuration applied for the coming period.
    pub configuration: Configuration,
    /// Speedup over nominal the controller asked for.
    pub required_speedup: f64,
    /// The time-division schedule the configuration was drawn from.
    pub schedule: ActuationSchedule,
    /// Whether the performance goal was met over the last observation window
    /// (`None` when too little has been observed).
    pub goal_met: Option<bool>,
    /// The runtime's current estimate of the application's heart rate in the
    /// nominal configuration.
    pub estimated_nominal_rate: f64,
}

/// Builder for [`SeecRuntime`].
pub struct SeecRuntimeBuilder {
    monitor: HeartbeatMonitor,
    actuators: Vec<Box<dyn Actuator>>,
    target_override: Option<f64>,
    controller: PiController,
    estimator: KalmanEstimator,
    policy: ExplorationPolicy,
    seed: u64,
}

impl std::fmt::Debug for SeecRuntimeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeecRuntimeBuilder")
            .field("application", &self.monitor.name())
            .field("actuators", &self.actuators.len())
            .field("target_override", &self.target_override)
            .finish_non_exhaustive()
    }
}

impl SeecRuntimeBuilder {
    /// Registers an actuator (hardware, OS, or application provided).
    pub fn actuator(mut self, actuator: Box<dyn Actuator>) -> Self {
        self.actuators.push(actuator);
        self
    }

    /// Registers several actuators at once.
    pub fn actuators<I: IntoIterator<Item = Box<dyn Actuator>>>(mut self, actuators: I) -> Self {
        self.actuators.extend(actuators);
        self
    }

    /// Overrides the target heart rate instead of reading it from the
    /// application's registered goal.
    pub fn target_heart_rate(mut self, beats_per_second: f64) -> Self {
        self.target_override = Some(beats_per_second);
        self
    }

    /// Replaces the classical controller tuning.
    pub fn controller(mut self, controller: PiController) -> Self {
        self.controller = controller;
        self
    }

    /// Replaces the adaptive-layer estimator tuning.
    pub fn estimator(mut self, estimator: KalmanEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the exploration (machine-learning layer) policy.
    pub fn exploration(mut self, policy: ExplorationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Seeds the exploration randomness (decisions are deterministic for a
    /// given seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the runtime.
    ///
    /// # Errors
    ///
    /// Returns [`SeecError::NoActuators`] when no actuator was registered, or
    /// [`SeecError::InvalidParameter`] when an override target is not positive.
    pub fn build(self) -> Result<SeecRuntime, SeecError> {
        if self.actuators.is_empty() {
            return Err(SeecError::NoActuators);
        }
        if let Some(target) = self.target_override {
            if !(target.is_finite() && target > 0.0) {
                return Err(SeecError::InvalidParameter(format!(
                    "target heart rate must be positive, got {target}"
                )));
            }
        }
        let specs: Vec<ActuatorSpec> = self.actuators.iter().map(|a| a.spec().clone()).collect();
        let space = ConfigurationSpace::new(specs);
        let current = space.nominal();
        let mut model = ActionModel::new(space, self.seed);
        model.set_policy(self.policy);
        Ok(SeecRuntime {
            monitor: self.monitor,
            actuators: self.actuators,
            model,
            controller: self.controller,
            estimator: self.estimator,
            power_estimator: KalmanEstimator::default_tuning(),
            target_override: self.target_override,
            current,
            schedule_accumulator: 0.0,
            decisions: 0,
        })
    }
}

/// The SEEC decision engine bound to one application and a set of actuators.
pub struct SeecRuntime {
    monitor: HeartbeatMonitor,
    actuators: Vec<Box<dyn Actuator>>,
    model: ActionModel,
    controller: PiController,
    estimator: KalmanEstimator,
    power_estimator: KalmanEstimator,
    target_override: Option<f64>,
    current: Configuration,
    schedule_accumulator: f64,
    decisions: u64,
}

impl std::fmt::Debug for SeecRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeecRuntime")
            .field("application", &self.monitor.name())
            .field("actuators", &self.actuators.len())
            .field("decisions", &self.decisions)
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl SeecRuntime {
    /// Starts building a runtime observing `monitor`.
    pub fn builder(monitor: HeartbeatMonitor) -> SeecRuntimeBuilder {
        SeecRuntimeBuilder {
            monitor,
            actuators: Vec::new(),
            target_override: None,
            controller: PiController::default_tuning(),
            estimator: KalmanEstimator::default_tuning(),
            policy: ExplorationPolicy::default(),
            seed: 0x5eec,
        }
    }

    /// The configuration currently applied.
    pub fn current_configuration(&self) -> &Configuration {
        &self.current
    }

    /// Number of decisions taken so far.
    pub fn decisions_made(&self) -> u64 {
        self.decisions
    }

    /// The online action model (for inspection and tests).
    pub fn model(&self) -> &ActionModel {
        &self.model
    }

    /// Current estimate of the application's nominal-configuration heart rate.
    pub fn estimated_nominal_rate(&self) -> f64 {
        self.estimator.estimate()
    }

    /// The target heart rate in force (override or the application's goal).
    pub fn target_heart_rate(&self) -> Option<f64> {
        self.target_override.or_else(|| self.monitor.target_heart_rate())
    }

    /// Runs one observe–decide–act iteration at simulation time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`SeecError::NoGoal`] if neither the application nor the
    /// builder specified a performance target, or an actuation error if a
    /// chosen setting cannot be applied.
    pub fn decide(&mut self, _now: f64) -> Result<Decision, SeecError> {
        let target = self.target_heart_rate().ok_or(SeecError::NoGoal)?;

        // ---- Observe -------------------------------------------------
        let stats = self.monitor.heart_rate();
        let observed = stats.window;
        let goal_met = self.monitor.performance_goal_met().or({
            if stats.beats_in_window >= 2 {
                Some(observed >= target)
            } else {
                None
            }
        });

        if stats.beats_in_window < 2 || observed <= 0.0 {
            // Not enough feedback yet: stay at the current configuration.
            self.decisions += 1;
            return Ok(Decision {
                configuration: self.current.clone(),
                required_speedup: 1.0,
                schedule: ActuationSchedule::steady(self.current.clone(), 1.0),
                goal_met,
                estimated_nominal_rate: self.estimator.estimate(),
            });
        }

        // ---- Adaptive layer: track the nominal-configuration rate -----
        let believed = self.model.believed_effect(&self.current);
        let nominal_rate_observation = observed / believed.speedup.max(1e-9);
        let base_rate = self.estimator.observe(nominal_rate_observation);

        // ---- Model learning: correct speedup/power beliefs ------------
        let observed_speedup = observed / base_rate.max(1e-9);
        let observed_powerup = match self.monitor.mean_power() {
            Some(power) if power > 0.0 => {
                let nominal_power_obs = power / believed.powerup.max(1e-9);
                let nominal_power = self.power_estimator.observe(nominal_power_obs);
                power / nominal_power.max(1e-9)
            }
            _ => believed.powerup,
        };
        self.model
            .observe(&self.current, observed_speedup, observed_powerup);

        // ---- Decide: classical control + model-based selection --------
        let required = self.controller.next_speedup(target, observed, base_rate);
        let upper = self.model.choose(required, &self.current);
        let upper_speedup = self.model.believed_effect(&upper).speedup;
        let (lower, lower_speedup) = self.model.bracket_below(upper_speedup.min(required));
        let schedule = if upper == lower {
            ActuationSchedule::steady(upper.clone(), upper_speedup)
        } else {
            ActuationSchedule::bracketing(
                upper.clone(),
                upper_speedup,
                lower,
                lower_speedup,
                required,
            )
        };
        let next = schedule.configuration_for_period(&mut self.schedule_accumulator);

        // ---- Act -------------------------------------------------------
        self.apply(&next)?;
        self.decisions += 1;
        Ok(Decision {
            configuration: next,
            required_speedup: required,
            schedule,
            goal_met,
            estimated_nominal_rate: base_rate,
        })
    }

    /// Applies `configuration` to every registered actuator.
    ///
    /// # Errors
    ///
    /// Propagates the first actuation failure; earlier actuators keep the
    /// settings already applied.
    pub fn apply(&mut self, configuration: &Configuration) -> Result<(), SeecError> {
        for (position, actuator) in self.actuators.iter_mut().enumerate() {
            let setting = configuration
                .setting(position)
                .unwrap_or_else(|| actuator.spec().nominal());
            if actuator.current() != setting {
                actuator.apply(setting)?;
            }
        }
        self.current = configuration.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuation::{Axis, SettingSpec, TableActuator};
    use heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal};

    fn dvfs_spec() -> ActuatorSpec {
        ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("nominal"))
            .setting(
                SettingSpec::new("fast")
                    .effect(Axis::Performance, 2.0)
                    .effect(Axis::Power, 2.6),
            )
            .nominal(1)
            .build()
            .unwrap()
    }

    fn cores_spec() -> ActuatorSpec {
        ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("2")
                    .effect(Axis::Performance, 1.9)
                    .effect(Axis::Power, 2.0),
            )
            .setting(
                SettingSpec::new("4")
                    .effect(Axis::Performance, 3.5)
                    .effect(Axis::Power, 4.0),
            )
            .build()
            .unwrap()
    }

    fn no_exploration() -> ExplorationPolicy {
        ExplorationPolicy {
            epsilon: 0.0,
            ..ExplorationPolicy::default()
        }
    }

    /// Simulates an application whose heart rate is `nominal_rate` times the
    /// believed speedup of the configuration SEEC applied, and checks that
    /// the runtime converges to meeting the target at low cost.
    fn run_closed_loop(target: f64, nominal_rate: f64, periods: usize) -> (SeecRuntime, f64) {
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(target)));
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .actuator(Box::new(TableActuator::new(cores_spec())))
            .exploration(no_exploration())
            .build()
            .unwrap();

        let issuer = registry.issuer();
        let monitor = registry.monitor();
        let mut now = 0.0;
        let mut rates = Vec::new();
        for _ in 0..periods {
            // The "true" behaviour of the platform mirrors the declared
            // effects exactly (the model starts correct in this test).
            let effect = runtime
                .model()
                .space()
                .predicted_effect(runtime.current_configuration())
                .unwrap();
            let rate = nominal_rate * effect.performance;
            let power = 10.0 * effect.power;
            // Emit a window's worth of beats at that rate.
            for _ in 0..8 {
                now += 1.0 / rate;
                issuer.heartbeat(now);
            }
            monitor.record_power_sample(now, power);
            runtime.decide(now).unwrap();
            rates.push(rate);
        }
        // Time-division schedules alternate between bracketing settings, so
        // judge convergence on the average delivered rate of the final
        // periods rather than whichever setting the last period landed on.
        let tail = rates.len().saturating_sub(10);
        let settled_rate = rates[tail..].iter().sum::<f64>() / rates[tail..].len() as f64;
        (runtime, settled_rate)
    }

    #[test]
    fn builder_requires_actuators_and_valid_targets() {
        let registry = HeartbeatRegistry::new("app");
        assert!(matches!(
            SeecRuntime::builder(registry.monitor()).build(),
            Err(SeecError::NoActuators)
        ));
        assert!(matches!(
            SeecRuntime::builder(registry.monitor())
                .actuator(Box::new(TableActuator::new(dvfs_spec())))
                .target_heart_rate(-1.0)
                .build(),
            Err(SeecError::InvalidParameter(_))
        ));
    }

    #[test]
    fn decide_without_goal_is_an_error() {
        let registry = HeartbeatRegistry::new("app");
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .build()
            .unwrap();
        assert!(matches!(runtime.decide(0.0), Err(SeecError::NoGoal)));
    }

    #[test]
    fn runtime_converges_to_the_goal() {
        // Nominal rate 10 beats/s, target 30: needs ~3x speedup.
        let (runtime, settled_rate) = run_closed_loop(30.0, 10.0, 60);
        assert!(runtime.decisions_made() >= 60);
        assert!(
            settled_rate >= 30.0 * 0.85,
            "closed loop should settle near the target, got {settled_rate}"
        );
        // The estimate is taken while the schedule alternates between
        // bracketing configurations, so it carries some bias; it must still
        // land in the right neighbourhood of the true 10 beats/s.
        assert!(
            runtime.estimated_nominal_rate() > 5.0 && runtime.estimated_nominal_rate() < 20.0,
            "adaptive layer should learn the nominal rate's neighbourhood, got {}",
            runtime.estimated_nominal_rate()
        );
    }

    #[test]
    fn runtime_minimises_cost_when_the_goal_is_easy() {
        // Target of 6 beats/s with nominal 10: the cheap (slow) settings are
        // sufficient, so SEEC should not run flat out.
        let (runtime, _) = run_closed_loop(6.0, 10.0, 60);
        let effect = runtime
            .model()
            .space()
            .predicted_effect(runtime.current_configuration())
            .unwrap();
        assert!(
            effect.power < 1.5,
            "easy goals must not be met with expensive configurations (power {})",
            effect.power
        );
    }

    #[test]
    fn early_decisions_without_feedback_keep_the_nominal_configuration() {
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(10.0)));
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .build()
            .unwrap();
        let nominal = runtime.current_configuration().clone();
        let decision = runtime.decide(0.0).unwrap();
        assert_eq!(decision.configuration, nominal);
        assert_eq!(decision.required_speedup, 1.0);
        assert_eq!(decision.goal_met, None);
    }

    #[test]
    fn target_override_takes_precedence_over_the_goal() {
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(10.0)));
        let runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .target_heart_rate(25.0)
            .build()
            .unwrap();
        assert_eq!(runtime.target_heart_rate(), Some(25.0));
    }

    #[test]
    fn apply_forwards_settings_to_every_actuator() {
        let registry = HeartbeatRegistry::new("app");
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(dvfs_spec())))
            .actuator(Box::new(TableActuator::new(cores_spec())))
            .target_heart_rate(5.0)
            .build()
            .unwrap();
        let config = Configuration::new(vec![2, 1]);
        runtime.apply(&config).unwrap();
        assert_eq!(runtime.current_configuration(), &config);
        assert!(format!("{runtime:?}").contains("SeecRuntime"));
    }

    #[test]
    fn decisions_are_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let registry = HeartbeatRegistry::new("app");
            registry
                .issuer()
                .set_goal(Goal::Performance(PerformanceGoal::heart_rate(20.0)));
            let mut runtime = SeecRuntime::builder(registry.monitor())
                .actuator(Box::new(TableActuator::new(dvfs_spec())))
                .actuator(Box::new(TableActuator::new(cores_spec())))
                .seed(seed)
                .build()
                .unwrap();
            let issuer = registry.issuer();
            let mut now = 0.0;
            let mut configs = Vec::new();
            for _ in 0..20 {
                for _ in 0..4 {
                    now += 0.05;
                    issuer.heartbeat(now);
                }
                configs.push(runtime.decide(now).unwrap().configuration);
            }
            configs
        };
        assert_eq!(run(7), run(7));
    }
}
