//! Uncoordinated adaptation: the composition of closed adaptive systems.
//!
//! The paper's §5.2 baseline "uncoordinated adaptation" runs separate
//! instances of the SEEC runtime, one per actuator, none of which
//! coordinates with the others. Each instance sees the full gap between the
//! goal and the observed heart rate and tries to close it with its single
//! knob, so the instances collectively over- and under-shoot and oscillate
//! through sub-optimal allocations — exactly the pathology Figure 2
//! illustrates for closed adaptive systems.

use actuation::{Actuator, Configuration};
use heartbeats::HeartbeatMonitor;

use crate::error::SeecError;
use crate::model::ExplorationPolicy;
use crate::runtime::{Decision, SeecRuntime};

/// A bundle of independent single-actuator SEEC runtimes sharing one goal.
pub struct UncoordinatedRuntime {
    runtimes: Vec<SeecRuntime>,
    /// The shared application monitor, kept so one decision round takes one
    /// registry snapshot instead of one per instance.
    monitor: HeartbeatMonitor,
}

impl std::fmt::Debug for UncoordinatedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UncoordinatedRuntime")
            .field("instances", &self.runtimes.len())
            .finish()
    }
}

impl UncoordinatedRuntime {
    /// Creates one independent SEEC instance per actuator, each observing the
    /// same application through `monitor`.
    ///
    /// # Errors
    ///
    /// Returns [`SeecError::NoActuators`] when `actuators` is empty, or any
    /// error produced while building the per-actuator runtimes.
    pub fn new(
        monitor: &HeartbeatMonitor,
        actuators: Vec<Box<dyn Actuator>>,
        seed: u64,
    ) -> Result<Self, SeecError> {
        Self::new_with(monitor, actuators, seed, |builder| builder)
    }

    /// Like [`Self::new`], but `tune` customises every per-actuator
    /// runtime's builder (controller tuning, anchored estimation, ...) so
    /// the uncoordinated baseline can be configured identically to the
    /// coordinated runtime it is compared against.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::new`].
    pub fn new_with(
        monitor: &HeartbeatMonitor,
        actuators: Vec<Box<dyn Actuator>>,
        seed: u64,
        tune: impl Fn(crate::SeecRuntimeBuilder) -> crate::SeecRuntimeBuilder,
    ) -> Result<Self, SeecError> {
        if actuators.is_empty() {
            return Err(SeecError::NoActuators);
        }
        let mut runtimes = Vec::new();
        for (i, actuator) in actuators.into_iter().enumerate() {
            let builder = SeecRuntime::builder(monitor.clone())
                .actuator(actuator)
                .exploration(ExplorationPolicy {
                    epsilon: 0.0,
                    ..ExplorationPolicy::default()
                })
                .seed(seed.wrapping_add(i as u64));
            runtimes.push(tune(builder).build()?);
        }
        Ok(UncoordinatedRuntime {
            runtimes,
            monitor: monitor.clone(),
        })
    }

    /// Number of independent instances (one per actuator).
    pub fn instances(&self) -> usize {
        self.runtimes.len()
    }

    /// Runs one decision period of every instance and returns the combined
    /// joint configuration (instance `i` controls position `i`).
    ///
    /// Every instance observes the same application, so the registry is
    /// snapshotted once and shared — one lock acquisition per decision
    /// round instead of one per instance. Nothing writes the registry
    /// between the per-instance reads this replaces, so results are
    /// identical to each instance observing independently.
    ///
    /// # Errors
    ///
    /// Propagates the first error from any instance.
    pub fn decide(&mut self, now: f64) -> Result<Vec<Decision>, SeecError> {
        let observation = self.monitor.observation();
        self.runtimes
            .iter_mut()
            .map(|r| r.decide_with_observation(now, &observation))
            .collect()
    }

    /// The joint configuration currently applied across all instances.
    pub fn joint_configuration(&self) -> Configuration {
        Configuration::new(
            self.runtimes
                .iter()
                .map(|r| r.current_configuration().setting(0).unwrap_or(0))
                .collect(),
        )
    }

    /// Total decisions taken across every instance.
    pub fn decisions_made(&self) -> u64 {
        self.runtimes.iter().map(|r| r.decisions_made()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    use heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal};

    fn actuators() -> Vec<Box<dyn Actuator>> {
        let dvfs = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("fast"))
            .nominal(1)
            .build()
            .unwrap();
        let cores = ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("4")
                    .effect(Axis::Performance, 3.0)
                    .effect(Axis::Power, 3.6),
            )
            .build()
            .unwrap();
        vec![
            Box::new(TableActuator::new(dvfs)),
            Box::new(TableActuator::new(cores)),
        ]
    }

    #[test]
    fn one_instance_is_created_per_actuator() {
        let registry = HeartbeatRegistry::new("app");
        let uncoordinated = UncoordinatedRuntime::new(&registry.monitor(), actuators(), 1).unwrap();
        assert_eq!(uncoordinated.instances(), 2);
        assert_eq!(uncoordinated.joint_configuration().len(), 2);
        assert!(format!("{uncoordinated:?}").contains("instances"));
    }

    #[test]
    fn empty_actuator_list_is_rejected() {
        let registry = HeartbeatRegistry::new("app");
        assert!(matches!(
            UncoordinatedRuntime::new(&registry.monitor(), vec![], 1),
            Err(SeecError::NoActuators)
        ));
    }

    #[test]
    fn each_instance_decides_independently() {
        let registry = HeartbeatRegistry::new("app");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(30.0)));
        let mut uncoordinated =
            UncoordinatedRuntime::new(&registry.monitor(), actuators(), 1).unwrap();
        let issuer = registry.issuer();
        let mut now = 0.0;
        // The application runs at only 10 beats/s: every instance sees the
        // shortfall and independently escalates its own knob.
        for _ in 0..20 {
            for _ in 0..4 {
                now += 0.1;
                issuer.heartbeat(now);
            }
            let decisions = uncoordinated.decide(now).unwrap();
            assert_eq!(decisions.len(), 2);
        }
        assert_eq!(uncoordinated.decisions_made(), 40);
        let joint = uncoordinated.joint_configuration();
        // Both knobs end up at their fast settings even though either alone
        // would have been the coordinated choice — the over-provisioning the
        // paper attributes to uncoordinated adaptation.
        assert_eq!(joint, Configuration::new(vec![1, 1]));
    }
}
