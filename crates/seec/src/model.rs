//! Online action model: what each configuration is believed to do.
//!
//! The SEEC runtime must often manage actions and applications it has no
//! prior experience with (DAC 2012 §3.3). It therefore seeds its model of
//! every configuration from the effects the actuator *designers* declared
//! (the multipliers in the actuator specification) and then corrects that
//! model from observation. When the model proves persistently wrong, an
//! exploration policy (the machine-learning layer) tries configurations the
//! model would not otherwise pick.

use std::collections::HashMap;

use actuation::{Axis, Configuration, ConfigurationSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Believed effect of one configuration, as multipliers over nominal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BelievedEffect {
    /// Speedup over the nominal configuration.
    pub speedup: f64,
    /// Power multiplier over the nominal configuration.
    pub powerup: f64,
    /// Number of times this configuration has actually been observed.
    pub observations: u64,
}

/// When and how the runtime explores off-model configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplorationPolicy {
    /// Probability of exploring a neighbouring configuration on any decision.
    pub epsilon: f64,
    /// Relative model error above which the runtime switches from exploiting
    /// the model to exploring around the current configuration.
    pub divergence_threshold: f64,
    /// Number of consecutive divergent observations required before
    /// exploration kicks in.
    pub patience: u32,
}

impl Default for ExplorationPolicy {
    fn default() -> Self {
        ExplorationPolicy {
            epsilon: 0.02,
            divergence_threshold: 0.5,
            patience: 3,
        }
    }
}

/// The runtime's model of every configuration in a [`ConfigurationSpace`].
#[derive(Debug, Clone)]
pub struct ActionModel {
    space: ConfigurationSpace,
    learned: HashMap<Configuration, BelievedEffect>,
    /// Exponential-moving-average weight given to a new observation.
    pub learning_rate: f64,
    policy: ExplorationPolicy,
    divergent_streak: u32,
    rng: StdRng,
}

impl ActionModel {
    /// Creates a model over `space` seeded from the declared effects.
    pub fn new(space: ConfigurationSpace, seed: u64) -> Self {
        ActionModel {
            space,
            learned: HashMap::new(),
            learning_rate: 0.3,
            policy: ExplorationPolicy::default(),
            divergent_streak: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the exploration policy.
    pub fn set_policy(&mut self, policy: ExplorationPolicy) {
        self.policy = policy;
    }

    /// The configuration space this model covers.
    pub fn space(&self) -> &ConfigurationSpace {
        &self.space
    }

    /// The believed effect of `config`: learned if observed, declared otherwise.
    pub fn believed_effect(&self, config: &Configuration) -> BelievedEffect {
        if let Some(learned) = self.learned.get(config) {
            return *learned;
        }
        let declared = self
            .space
            .predicted_effect(config)
            .unwrap_or_else(|_| actuation::PredictedEffect::nominal());
        BelievedEffect {
            speedup: declared.on(Axis::Performance),
            powerup: declared.on(Axis::Power),
            observations: 0,
        }
    }

    /// Records that running in `config` produced `observed_speedup` and
    /// `observed_powerup` (both relative to nominal). Returns the relative
    /// error between the previous belief and the observation.
    pub fn observe(
        &mut self,
        config: &Configuration,
        observed_speedup: f64,
        observed_powerup: f64,
    ) -> f64 {
        let mut belief = self.believed_effect(config);
        let error = if belief.speedup > 0.0 {
            ((observed_speedup - belief.speedup) / belief.speedup).abs()
        } else {
            1.0
        };
        let a = self.learning_rate;
        if observed_speedup.is_finite() && observed_speedup > 0.0 {
            belief.speedup = (1.0 - a) * belief.speedup + a * observed_speedup;
        }
        if observed_powerup.is_finite() && observed_powerup > 0.0 {
            belief.powerup = (1.0 - a) * belief.powerup + a * observed_powerup;
        }
        belief.observations += 1;
        self.learned.insert(config.clone(), belief);

        if error > self.policy.divergence_threshold {
            self.divergent_streak += 1;
        } else {
            self.divergent_streak = 0;
        }
        error
    }

    /// Whether the model considers itself diverged (exploration should take
    /// over the next decisions).
    pub fn is_diverged(&self) -> bool {
        self.divergent_streak >= self.policy.patience
    }

    /// Chooses the configuration to run next: the cheapest (lowest believed
    /// power) configuration whose believed speedup meets `required_speedup`.
    /// If none meets it, the configuration with the highest believed speedup
    /// is returned. With probability epsilon — or whenever the model has
    /// diverged — a neighbouring configuration of the choice is explored
    /// instead.
    pub fn choose(&mut self, required_speedup: f64, current: &Configuration) -> Configuration {
        let mut best_meeting: Option<(Configuration, f64)> = None;
        let mut best_overall: Option<(Configuration, f64)> = None;
        for config in self.space.iter() {
            let belief = self.believed_effect(&config);
            if belief.speedup >= required_speedup {
                let better = match &best_meeting {
                    None => true,
                    Some((_, power)) => belief.powerup < *power,
                };
                if better {
                    best_meeting = Some((config.clone(), belief.powerup));
                }
            }
            let faster = match &best_overall {
                None => true,
                Some((_, speed)) => belief.speedup > *speed,
            };
            if faster {
                best_overall = Some((config.clone(), belief.speedup));
            }
        }
        let exploit = best_meeting
            .map(|(c, _)| c)
            .or(best_overall.map(|(c, _)| c))
            .unwrap_or_else(|| self.space.nominal());

        let explore = self.is_diverged() || self.rng.gen_bool(self.policy.epsilon.clamp(0.0, 1.0));
        if explore {
            let neighbors = self.space.neighbors(current);
            if !neighbors.is_empty() {
                let pick = self.rng.gen_range(0..neighbors.len());
                return neighbors[pick].clone();
            }
        }
        exploit
    }

    /// The bracketing configuration *below* a required speedup: among the
    /// configurations whose believed speedup is less than `required_speedup`,
    /// the fastest one (ties broken toward lower power). Falls back to the
    /// cheapest configuration when everything meets the requirement. Used as
    /// the low end of time-division schedules so that the schedule alternates
    /// between adjacent operating points rather than between extremes.
    pub fn bracket_below(&self, required_speedup: f64) -> (Configuration, f64) {
        let mut best: Option<(Configuration, f64, f64)> = None;
        for config in self.space.iter() {
            let belief = self.believed_effect(&config);
            if belief.speedup >= required_speedup {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, speedup, power)) => {
                    belief.speedup > *speedup
                        || (belief.speedup == *speedup && belief.powerup < *power)
                }
            };
            if better {
                best = Some((config, belief.speedup, belief.powerup));
            }
        }
        match best {
            Some((config, speedup, _)) => (config, speedup),
            None => self.cheapest(),
        }
    }

    /// The configuration with the lowest believed power, and its believed
    /// speedup. Used as the low end of time-division schedules.
    pub fn cheapest(&self) -> (Configuration, f64) {
        let mut best: Option<(Configuration, f64, f64)> = None;
        for config in self.space.iter() {
            let belief = self.believed_effect(&config);
            let cheaper = match &best {
                None => true,
                Some((_, power, _)) => belief.powerup < *power,
            };
            if cheaper {
                best = Some((config, belief.powerup, belief.speedup));
            }
        }
        match best {
            Some((config, _, speedup)) => (config, speedup),
            None => (self.space.nominal(), 1.0),
        }
    }

    /// Number of distinct configurations observed at least once.
    pub fn observed_configurations(&self) -> usize {
        self.learned.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuation::{ActuatorSpec, SettingSpec};

    fn space() -> ConfigurationSpace {
        let dvfs = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("fast"))
            .nominal(1)
            .build()
            .unwrap();
        let cores = ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("4")
                    .effect(Axis::Performance, 3.0)
                    .effect(Axis::Power, 3.5),
            )
            .build()
            .unwrap();
        ConfigurationSpace::new(vec![dvfs, cores])
    }

    fn no_exploration() -> ExplorationPolicy {
        ExplorationPolicy {
            epsilon: 0.0,
            ..ExplorationPolicy::default()
        }
    }

    #[test]
    fn beliefs_start_from_declared_effects() {
        let model = ActionModel::new(space(), 1);
        let effect = model.believed_effect(&Configuration::new(vec![0, 1]));
        assert!((effect.speedup - 1.5).abs() < 1e-12);
        assert!((effect.powerup - 1.4).abs() < 1e-12);
        assert_eq!(effect.observations, 0);
    }

    #[test]
    fn observations_pull_beliefs_toward_reality() {
        let mut model = ActionModel::new(space(), 1);
        let config = Configuration::new(vec![1, 1]);
        // Declared speedup 3.0, but reality is only 1.5 (memory bound).
        for _ in 0..20 {
            model.observe(&config, 1.5, 3.2);
        }
        let belief = model.believed_effect(&config);
        assert!((belief.speedup - 1.5).abs() < 0.1);
        assert!(belief.observations == 20);
        assert_eq!(model.observed_configurations(), 1);
    }

    #[test]
    fn choose_picks_cheapest_configuration_meeting_the_target() {
        let mut model = ActionModel::new(space(), 1);
        model.set_policy(no_exploration());
        let current = model.space().nominal();
        // Needs 1.4x: [1,1] (3.0x at 3.5 power) and [0,1] (1.5x at 1.4 power)
        // both meet it; the cheaper one is [0,1].
        let choice = model.choose(1.4, &current);
        assert_eq!(choice, Configuration::new(vec![0, 1]));
        // Needs 2.5x: only [1,1] meets it.
        let choice = model.choose(2.5, &current);
        assert_eq!(choice, Configuration::new(vec![1, 1]));
        // Nothing meets 10x: fall back to the fastest.
        let choice = model.choose(10.0, &current);
        assert_eq!(choice, Configuration::new(vec![1, 1]));
    }

    #[test]
    fn persistent_divergence_triggers_exploration() {
        let mut model = ActionModel::new(space(), 7);
        model.set_policy(ExplorationPolicy {
            epsilon: 0.0,
            divergence_threshold: 0.3,
            patience: 2,
        });
        let config = Configuration::new(vec![1, 1]);
        assert!(!model.is_diverged());
        // Observations wildly off the declared 3.0x speedup.
        model.observe(&config, 0.9, 3.5);
        assert!(!model.is_diverged());
        model.observe(&config, 0.9, 3.5);
        assert!(model.is_diverged());
        // While diverged, choose() explores a neighbour of the current
        // configuration rather than exploiting the (wrong) model.
        let current = Configuration::new(vec![1, 0]);
        let choice = model.choose(1.0, &current);
        let diffs = choice
            .settings()
            .iter()
            .zip(current.settings())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1, "exploration stays adjacent to the current configuration");
        // Converging observations clear the divergence.
        let belief = model.believed_effect(&config);
        model.observe(&config, belief.speedup, belief.powerup);
        assert!(!model.is_diverged());
    }

    #[test]
    fn bracket_below_returns_the_fastest_configuration_under_the_requirement() {
        let model = ActionModel::new(space(), 1);
        // Speedups available: 0.5, 1.0, 1.5, 3.0 (dvfs x cores products).
        let (config, speedup) = model.bracket_below(2.0);
        assert!((speedup - 1.5).abs() < 1e-12);
        assert_eq!(config, Configuration::new(vec![0, 1]));
        // Nothing is below 0.3x: fall back to the cheapest configuration.
        let (config, speedup) = model.bracket_below(0.3);
        assert_eq!(config, Configuration::new(vec![0, 0]));
        assert!((speedup - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cheapest_returns_the_lowest_power_configuration() {
        let model = ActionModel::new(space(), 1);
        let (config, speedup) = model.cheapest();
        // Slow DVFS (0.4 power) with a single core (1.0 power) is cheapest.
        assert_eq!(config, Configuration::new(vec![0, 0]));
        assert!((speedup - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_observations_do_not_corrupt_the_model() {
        let mut model = ActionModel::new(space(), 1);
        let config = Configuration::new(vec![0, 0]);
        let before = model.believed_effect(&config);
        model.observe(&config, f64::NAN, -1.0);
        let after = model.believed_effect(&config);
        assert_eq!(before.speedup, after.speedup);
        assert_eq!(before.powerup, after.powerup);
        assert_eq!(after.observations, 1);
    }
}
