//! Online action model: what each configuration is believed to do.
//!
//! The SEEC runtime must often manage actions and applications it has no
//! prior experience with (DAC 2012 §3.3). It therefore seeds its model of
//! every configuration from the effects the actuator *designers* declared
//! (the multipliers in the actuator specification) and then corrects that
//! model from observation. When the model proves persistently wrong, an
//! exploration policy (the machine-learning layer) tries configurations the
//! model would not otherwise pick.
//!
//! ## Representation
//!
//! Configurations are interned into the [`ConfigTable`] arena and addressed
//! by copyable [`ConfigId`] handles. Beliefs live in a dense `Vec` indexed
//! by id — no hashing, no per-lookup allocation — and two sorted indices
//! (by believed speedup and by believed power) are maintained incrementally
//! as observations arrive, so the selection queries of the decision loop
//! ([`ActionModel::choose_id`], [`ActionModel::bracket_below_id`],
//! [`ActionModel::cheapest_id`]) never materialise a configuration.
//!
//! Selection results are *identical* to a naive first-match scan in
//! configuration order (the pre-arena implementation): every tie is broken
//! toward the smaller id, which is exactly what a lexicographic scan with
//! strict comparisons produced.

use actuation::{ConfigId, ConfigTable, Configuration, ConfigurationSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Believed effect of one configuration, as multipliers over nominal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BelievedEffect {
    /// Speedup over the nominal configuration.
    pub speedup: f64,
    /// Power multiplier over the nominal configuration.
    pub powerup: f64,
    /// Number of times this configuration has actually been observed.
    pub observations: u64,
}

/// When and how the runtime explores off-model configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplorationPolicy {
    /// Probability of exploring a neighbouring configuration on any decision.
    pub epsilon: f64,
    /// Relative model error above which the runtime switches from exploiting
    /// the model to exploring around the current configuration.
    pub divergence_threshold: f64,
    /// Number of consecutive divergent observations required before
    /// exploration kicks in.
    pub patience: u32,
}

impl Default for ExplorationPolicy {
    fn default() -> Self {
        ExplorationPolicy {
            epsilon: 0.02,
            divergence_threshold: 0.5,
            patience: 3,
        }
    }
}

/// The runtime's model of every configuration in a [`ConfigurationSpace`].
#[derive(Debug, Clone)]
pub struct ActionModel {
    space: ConfigurationSpace,
    table: ConfigTable,
    beliefs: Vec<BelievedEffect>,
    /// Ids sorted ascending by (believed speedup, id).
    by_speedup: Vec<ConfigId>,
    /// Ids sorted ascending by (believed powerup, id).
    by_power: Vec<ConfigId>,
    /// id → position in `by_speedup` / `by_power`.
    rank_speedup: Vec<u32>,
    rank_power: Vec<u32>,
    observed: usize,
    /// Exponential-moving-average weight given to a new observation.
    pub learning_rate: f64,
    policy: ExplorationPolicy,
    divergent_streak: u32,
    /// Belief-aging halflife in [`Self::age_beliefs`] ticks (∞ = aging
    /// disabled, the default).
    belief_halflife: f64,
    /// Per-tick retention factor derived from the halflife
    /// (`0.5^(1/halflife)`; 1.0 = aging disabled).
    aging_retention: f64,
    rng: StdRng,
}

impl ActionModel {
    /// Creates a model over `space` seeded from the declared effects.
    pub fn new(space: ConfigurationSpace, seed: u64) -> Self {
        let table = space.table();
        let beliefs: Vec<BelievedEffect> = (0..table.len())
            .map(|i| {
                let declared = table.declared_effect(ConfigId(i as u32));
                BelievedEffect {
                    speedup: declared.performance,
                    powerup: declared.power,
                    observations: 0,
                }
            })
            .collect();
        // The declared-effect indices precomputed by the arena are the
        // correct starting point: beliefs equal declared effects until the
        // first observation.
        let by_speedup = table.by_declared_speedup().to_vec();
        let by_power = table.by_declared_power().to_vec();
        let mut rank_speedup = vec![0u32; table.len()];
        for (pos, id) in by_speedup.iter().enumerate() {
            rank_speedup[id.index()] = pos as u32;
        }
        let mut rank_power = vec![0u32; table.len()];
        for (pos, id) in by_power.iter().enumerate() {
            rank_power[id.index()] = pos as u32;
        }
        ActionModel {
            space,
            table,
            beliefs,
            by_speedup,
            by_power,
            rank_speedup,
            rank_power,
            observed: 0,
            learning_rate: 0.3,
            policy: ExplorationPolicy::default(),
            divergent_streak: 0,
            belief_halflife: f64::INFINITY,
            aging_retention: 1.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the exploration policy.
    pub fn set_policy(&mut self, policy: ExplorationPolicy) {
        self.policy = policy;
    }

    /// Enables *belief aging* with the given halflife, in
    /// [`Self::age_beliefs`] ticks (one tick per decision period when
    /// driven by the runtime). Aged beliefs decay **toward their declared
    /// priors**: a learned deviation loses half its amplitude every
    /// `halflife` ticks unless re-observed, so beliefs that have gone
    /// stale — learned in a phase the application has since left — lose
    /// their grip on selection instead of pinning it to the old phase.
    ///
    /// An infinite (or non-positive) halflife disables aging entirely:
    /// [`Self::age_beliefs`] becomes a no-op and the model is bit-for-bit
    /// the unaged one (no arithmetic, no RNG draws — pinned by the unit
    /// suite).
    pub fn with_belief_halflife(mut self, halflife_ticks: f64) -> Self {
        self.set_belief_halflife(halflife_ticks);
        self
    }

    /// Changes the belief-aging halflife (see
    /// [`Self::with_belief_halflife`]).
    pub fn set_belief_halflife(&mut self, halflife_ticks: f64) {
        self.belief_halflife = halflife_ticks;
        self.aging_retention = if halflife_ticks.is_finite() && halflife_ticks > 0.0 {
            0.5f64.powf(1.0 / halflife_ticks)
        } else {
            1.0
        };
    }

    /// The belief-aging halflife in ticks (∞ = aging disabled).
    pub fn belief_halflife(&self) -> f64 {
        self.belief_halflife
    }

    /// One aging tick: every belief decays toward its declared prior by
    /// the retention factor derived from the halflife, and the two sorted
    /// selection indices are rebuilt to match. A no-op (early return,
    /// nothing touched) when aging is disabled.
    ///
    /// Unobserved beliefs already *equal* their declared priors, so the
    /// decay leaves them bit-identical; observation counts are not aged —
    /// they record how often a configuration was tried, not how fresh the
    /// belief is.
    pub fn age_beliefs(&mut self) {
        if self.aging_retention >= 1.0 {
            return;
        }
        let retention = self.aging_retention;
        for (index, belief) in self.beliefs.iter_mut().enumerate() {
            let declared = self.table.declared_effect(ConfigId(index as u32));
            belief.speedup = declared.performance + (belief.speedup - declared.performance) * retention;
            belief.powerup = declared.power + (belief.powerup - declared.power) * retention;
        }
        // The decay is monotone per belief but not order-preserving across
        // beliefs (each decays toward a different prior), so both indices
        // are re-sorted wholesale. In-place, allocation-free, and O(n log n)
        // on the aging path only — the unaged hot path never gets here.
        let beliefs = &self.beliefs;
        self.by_speedup
            .sort_unstable_by(|&a, &b| {
                beliefs[a.index()]
                    .speedup
                    .total_cmp(&beliefs[b.index()].speedup)
                    .then(a.cmp(&b))
            });
        self.by_power.sort_unstable_by(|&a, &b| {
            beliefs[a.index()]
                .powerup
                .total_cmp(&beliefs[b.index()].powerup)
                .then(a.cmp(&b))
        });
        for (pos, id) in self.by_speedup.iter().enumerate() {
            self.rank_speedup[id.index()] = pos as u32;
        }
        for (pos, id) in self.by_power.iter().enumerate() {
            self.rank_power[id.index()] = pos as u32;
        }
    }


    /// The configuration space this model covers.
    pub fn space(&self) -> &ConfigurationSpace {
        &self.space
    }

    /// The interned-configuration arena the model runs on.
    pub fn table(&self) -> &ConfigTable {
        &self.table
    }

    /// The believed effect of the configuration `id`.
    #[inline]
    pub fn believed(&self, id: ConfigId) -> BelievedEffect {
        self.beliefs[id.index()]
    }

    /// The believed effect of `config`: learned if observed, declared
    /// otherwise. Configurations outside the space report the nominal
    /// effect, as the pre-arena model did.
    pub fn believed_effect(&self, config: &Configuration) -> BelievedEffect {
        match self.table.id_of(config) {
            Some(id) => self.believed(id),
            None => BelievedEffect {
                speedup: 1.0,
                powerup: 1.0,
                observations: 0,
            },
        }
    }

    /// Records that running in `id` produced `observed_speedup` and
    /// `observed_powerup` (both relative to nominal). Returns the relative
    /// error between the previous belief and the observation.
    pub fn observe_id(
        &mut self,
        id: ConfigId,
        observed_speedup: f64,
        observed_powerup: f64,
    ) -> f64 {
        let belief = &mut self.beliefs[id.index()];
        let error = if belief.speedup > 0.0 {
            ((observed_speedup - belief.speedup) / belief.speedup).abs()
        } else {
            1.0
        };
        let a = self.learning_rate;
        if observed_speedup.is_finite() && observed_speedup > 0.0 {
            belief.speedup = (1.0 - a) * belief.speedup + a * observed_speedup;
        }
        if observed_powerup.is_finite() && observed_powerup > 0.0 {
            belief.powerup = (1.0 - a) * belief.powerup + a * observed_powerup;
        }
        if belief.observations == 0 {
            self.observed += 1;
        }
        belief.observations += 1;
        let (speedup, powerup) = (belief.speedup, belief.powerup);
        reposition(
            &mut self.by_speedup,
            &mut self.rank_speedup,
            id,
            |other| self.beliefs[other.index()].speedup,
            speedup,
        );
        reposition(
            &mut self.by_power,
            &mut self.rank_power,
            id,
            |other| self.beliefs[other.index()].powerup,
            powerup,
        );

        if error > self.policy.divergence_threshold {
            self.divergent_streak += 1;
        } else {
            self.divergent_streak = 0;
        }
        error
    }

    /// Records an observation addressed by configuration (see
    /// [`Self::observe_id`]). Observations of configurations outside the
    /// space are reported against the nominal belief and not stored.
    pub fn observe(
        &mut self,
        config: &Configuration,
        observed_speedup: f64,
        observed_powerup: f64,
    ) -> f64 {
        match self.table.id_of(config) {
            Some(id) => self.observe_id(id, observed_speedup, observed_powerup),
            None => {
                let error = (observed_speedup - 1.0).abs();
                if error > self.policy.divergence_threshold {
                    self.divergent_streak += 1;
                } else {
                    self.divergent_streak = 0;
                }
                error
            }
        }
    }

    /// Whether the model considers itself diverged (exploration should take
    /// over the next decisions).
    pub fn is_diverged(&self) -> bool {
        self.divergent_streak >= self.policy.patience
    }

    /// Chooses the configuration to run next: the cheapest (lowest believed
    /// power) configuration whose believed speedup meets `required_speedup`.
    /// If none meets it, the configuration with the highest believed speedup
    /// is returned. With probability epsilon — or whenever the model has
    /// diverged — a neighbouring configuration of the current one is
    /// explored instead. Ties break toward the smaller id, like the
    /// first-match scan this replaces.
    pub fn choose_id(&mut self, required_speedup: f64, current: ConfigId) -> ConfigId {
        self.choose_id_capped(required_speedup, current, f64::INFINITY)
    }

    /// [`Self::choose_id`] restricted to configurations whose believed
    /// powerup is at most `max_powerup` — the admissible prefix of the
    /// power-sorted index under a power envelope. With an infinite cap this
    /// is exactly `choose_id` (same comparisons, same RNG draws, same
    /// result). When even the cheapest configuration exceeds the cap, the
    /// cheapest is returned: an application cannot run in no configuration,
    /// so the envelope degrades to "as cheap as the action space allows".
    pub fn choose_id_capped(
        &mut self,
        required_speedup: f64,
        current: ConfigId,
        max_powerup: f64,
    ) -> ConfigId {
        // Admissible prefix of the power-sorted index (the whole index for
        // an infinite cap), floored at one so the cheapest is always a
        // candidate.
        let admissible = self.power_boundary(max_powerup).max(1).min(self.by_power.len());
        // Walk the power-sorted prefix: the first id meeting the speedup
        // requirement is the cheapest meeting it (ties by id). Usually an
        // early exit; the scan it replaced was always O(cardinality) with a
        // settings-vector allocation per step.
        let meeting = self.by_power[..admissible]
            .iter()
            .copied()
            .find(|id| self.beliefs[id.index()].speedup >= required_speedup);
        let exploit = meeting.unwrap_or_else(|| {
            if admissible == self.by_power.len() {
                self.fastest()
            } else {
                self.fastest_within(admissible)
            }
        });

        let explore =
            self.is_diverged() || self.rng.gen_bool(self.policy.epsilon.clamp(0.0, 1.0));
        if explore {
            let count = self.table.neighbor_count();
            if count > 0 {
                let pick = self.rng.gen_range(0..count);
                let neighbor = self.table.neighbor(current, pick);
                // An exploration step must not breach the power envelope;
                // over-cap neighbours fall back to the exploit choice.
                if self.beliefs[neighbor.index()].powerup <= max_powerup {
                    return neighbor;
                }
            }
        }
        exploit
    }

    /// Length of the admissible prefix of the power-sorted index under
    /// `max_powerup` (the whole index for an infinite cap).
    fn power_boundary(&self, max_powerup: f64) -> usize {
        if max_powerup == f64::INFINITY {
            return self.by_power.len();
        }
        self.by_power
            .partition_point(|id| self.beliefs[id.index()].powerup <= max_powerup)
    }

    /// Configuration-typed convenience wrapper over [`Self::choose_id`].
    pub fn choose(&mut self, required_speedup: f64, current: &Configuration) -> Configuration {
        if self.table.is_empty() {
            // Preserve the pre-arena behaviour (and RNG draw order) for
            // degenerate spaces: exploit falls back to the empty nominal.
            let _ = self.is_diverged() || self.rng.gen_bool(self.policy.epsilon.clamp(0.0, 1.0));
            return self.space.nominal();
        }
        let current_id = self
            .table
            .id_of(current)
            .unwrap_or_else(|| self.table.nominal());
        let choice = self.choose_id(required_speedup, current_id);
        self.table.config_of(choice)
    }

    /// The id with the highest believed speedup (smallest id on ties).
    fn fastest(&self) -> ConfigId {
        let top = *self.by_speedup.last().expect("non-empty space");
        let top_speedup = self.beliefs[top.index()].speedup;
        // Ids are ascending within an equal-speedup run, so the first id of
        // the top run is the scan's answer.
        self.by_speedup
            [self.by_speedup.partition_point(|id| self.beliefs[id.index()].speedup < top_speedup)]
    }

    /// The id with the highest believed speedup among the first `admissible`
    /// entries of the power-sorted index (smallest id on ties) — what
    /// [`Self::fastest`] degrades to under a power envelope. Equals
    /// `fastest()` when the whole index is admissible.
    fn fastest_within(&self, admissible: usize) -> ConfigId {
        let mut best = self.by_power[0];
        let mut best_speedup = self.beliefs[best.index()].speedup;
        for &id in &self.by_power[1..admissible] {
            let speedup = self.beliefs[id.index()].speedup;
            if speedup > best_speedup || (speedup == best_speedup && id < best) {
                best = id;
                best_speedup = speedup;
            }
        }
        best
    }

    /// The bracketing configuration *below* a required speedup: among the
    /// configurations whose believed speedup is less than `required_speedup`,
    /// the fastest one (ties broken toward lower power, then smaller id).
    /// Falls back to the cheapest configuration when everything meets the
    /// requirement. Used as the low end of time-division schedules so that
    /// the schedule alternates between adjacent operating points rather than
    /// between extremes.
    pub fn bracket_below_id(&self, required_speedup: f64) -> (ConfigId, f64) {
        self.bracket_below_id_capped(required_speedup, f64::INFINITY)
    }

    /// [`Self::bracket_below_id`] restricted to configurations whose
    /// believed powerup is at most `max_powerup`. With an infinite cap this
    /// is exactly `bracket_below_id`; under a finite cap, over-envelope
    /// configurations are skipped while walking down the speedup index, and
    /// when nothing under the requirement is admissible the overall cheapest
    /// configuration is returned (the same floor [`Self::choose_id_capped`]
    /// degrades to).
    pub fn bracket_below_id_capped(
        &self,
        required_speedup: f64,
        max_powerup: f64,
    ) -> (ConfigId, f64) {
        let boundary = self
            .by_speedup
            .partition_point(|id| self.beliefs[id.index()].speedup < required_speedup);
        // Walk down from the fastest candidate, skipping over-cap entries;
        // the first admissible entry fixes the bracket's speedup and the
        // rest of its equal-speedup run competes on lowest power (ties by
        // id). With an infinite cap nothing is skipped, so the walk is the
        // original: the run below `boundary - 1`.
        let mut best: Option<(ConfigId, f64)> = None;
        let mut best_speedup = f64::NEG_INFINITY;
        for &id in self.by_speedup[..boundary].iter().rev() {
            let belief = self.beliefs[id.index()];
            if belief.speedup < best_speedup {
                break;
            }
            if belief.powerup > max_powerup {
                continue;
            }
            best_speedup = belief.speedup;
            let better = match best {
                None => true,
                Some((best_id, power)) => {
                    belief.powerup < power || (belief.powerup == power && id < best_id)
                }
            };
            if better {
                best = Some((id, belief.powerup));
            }
        }
        match best {
            Some((id, _)) => (id, best_speedup),
            None => self.cheapest_id(),
        }
    }

    /// Configuration-typed convenience wrapper over
    /// [`Self::bracket_below_id`].
    pub fn bracket_below(&self, required_speedup: f64) -> (Configuration, f64) {
        if self.table.is_empty() {
            return (self.space.nominal(), 1.0);
        }
        let (id, speedup) = self.bracket_below_id(required_speedup);
        (self.table.config_of(id), speedup)
    }

    /// The id with the lowest believed power (smallest id on ties), and its
    /// believed speedup. Used as the low end of time-division schedules.
    pub fn cheapest_id(&self) -> (ConfigId, f64) {
        let id = self.by_power[0];
        (id, self.beliefs[id.index()].speedup)
    }

    /// Configuration-typed convenience wrapper over [`Self::cheapest_id`].
    pub fn cheapest(&self) -> (Configuration, f64) {
        if self.table.is_empty() {
            return (self.space.nominal(), 1.0);
        }
        let (id, speedup) = self.cheapest_id();
        (self.table.config_of(id), speedup)
    }

    /// Number of distinct configurations observed at least once.
    pub fn observed_configurations(&self) -> usize {
        self.observed
    }
}

/// Moves `id` to its sorted position after its key changed to `new_key`.
/// `vec` is ordered by `(key, id)` ascending; `rank` maps id → position.
fn reposition<F: Fn(ConfigId) -> f64>(
    vec: &mut [ConfigId],
    rank: &mut [u32],
    id: ConfigId,
    key_of: F,
    new_key: f64,
) {
    let mut pos = rank[id.index()] as usize;
    // Bubble toward the front while the predecessor sorts after (new_key, id).
    while pos > 0 {
        let prev = vec[pos - 1];
        let prev_key = key_of(prev);
        if prev_key < new_key || (prev_key == new_key && prev < id) {
            break;
        }
        vec[pos] = prev;
        rank[prev.index()] = pos as u32;
        pos -= 1;
    }
    // Or toward the back while the successor sorts before (new_key, id).
    while pos + 1 < vec.len() {
        let next = vec[pos + 1];
        let next_key = key_of(next);
        if next_key > new_key || (next_key == new_key && next > id) {
            break;
        }
        vec[pos] = next;
        rank[next.index()] = pos as u32;
        pos += 1;
    }
    vec[pos] = id;
    rank[id.index()] = pos as u32;
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuation::{ActuatorSpec, Axis, SettingSpec};

    fn space() -> ConfigurationSpace {
        let dvfs = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("fast"))
            .nominal(1)
            .build()
            .unwrap();
        let cores = ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("4")
                    .effect(Axis::Performance, 3.0)
                    .effect(Axis::Power, 3.5),
            )
            .build()
            .unwrap();
        ConfigurationSpace::new(vec![dvfs, cores])
    }

    fn no_exploration() -> ExplorationPolicy {
        ExplorationPolicy {
            epsilon: 0.0,
            ..ExplorationPolicy::default()
        }
    }

    /// Reference implementation: the pre-arena first-match scans in
    /// configuration order. The index-based selections must agree exactly.
    mod reference {
        use super::*;

        pub fn choose_exploit(model: &ActionModel, required: f64) -> Configuration {
            let mut best_meeting: Option<(Configuration, f64)> = None;
            let mut best_overall: Option<(Configuration, f64)> = None;
            for config in model.space().iter() {
                let belief = model.believed_effect(&config);
                if belief.speedup >= required {
                    let better = match &best_meeting {
                        None => true,
                        Some((_, power)) => belief.powerup < *power,
                    };
                    if better {
                        best_meeting = Some((config.clone(), belief.powerup));
                    }
                }
                let faster = match &best_overall {
                    None => true,
                    Some((_, speed)) => belief.speedup > *speed,
                };
                if faster {
                    best_overall = Some((config.clone(), belief.speedup));
                }
            }
            best_meeting
                .map(|(c, _)| c)
                .or(best_overall.map(|(c, _)| c))
                .unwrap_or_else(|| model.space().nominal())
        }

        pub fn bracket_below(model: &ActionModel, required: f64) -> (Configuration, f64) {
            let mut best: Option<(Configuration, f64, f64)> = None;
            for config in model.space().iter() {
                let belief = model.believed_effect(&config);
                if belief.speedup >= required {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((_, speedup, power)) => {
                        belief.speedup > *speedup
                            || (belief.speedup == *speedup && belief.powerup < *power)
                    }
                };
                if better {
                    best = Some((config, belief.speedup, belief.powerup));
                }
            }
            match best {
                Some((config, speedup, _)) => (config, speedup),
                None => cheapest(model),
            }
        }

        pub fn cheapest(model: &ActionModel) -> (Configuration, f64) {
            let mut best: Option<(Configuration, f64, f64)> = None;
            for config in model.space().iter() {
                let belief = model.believed_effect(&config);
                let cheaper = match &best {
                    None => true,
                    Some((_, power, _)) => belief.powerup < *power,
                };
                if cheaper {
                    best = Some((config, belief.powerup, belief.speedup));
                }
            }
            match best {
                Some((config, _, speedup)) => (config, speedup),
                None => (model.space().nominal(), 1.0),
            }
        }
    }

    #[test]
    fn beliefs_start_from_declared_effects() {
        let model = ActionModel::new(space(), 1);
        let effect = model.believed_effect(&Configuration::new(vec![0, 1]));
        assert!((effect.speedup - 1.5).abs() < 1e-12);
        assert!((effect.powerup - 1.4).abs() < 1e-12);
        assert_eq!(effect.observations, 0);
    }

    #[test]
    fn observations_pull_beliefs_toward_reality() {
        let mut model = ActionModel::new(space(), 1);
        let config = Configuration::new(vec![1, 1]);
        // Declared speedup 3.0, but reality is only 1.5 (memory bound).
        for _ in 0..20 {
            model.observe(&config, 1.5, 3.2);
        }
        let belief = model.believed_effect(&config);
        assert!((belief.speedup - 1.5).abs() < 0.1);
        assert!(belief.observations == 20);
        assert_eq!(model.observed_configurations(), 1);
    }

    #[test]
    fn choose_picks_cheapest_configuration_meeting_the_target() {
        let mut model = ActionModel::new(space(), 1);
        model.set_policy(no_exploration());
        let current = model.space().nominal();
        // Needs 1.4x: [1,1] (3.0x at 3.5 power) and [0,1] (1.5x at 1.4 power)
        // both meet it; the cheaper one is [0,1].
        let choice = model.choose(1.4, &current);
        assert_eq!(choice, Configuration::new(vec![0, 1]));
        // Needs 2.5x: only [1,1] meets it.
        let choice = model.choose(2.5, &current);
        assert_eq!(choice, Configuration::new(vec![1, 1]));
        // Nothing meets 10x: fall back to the fastest.
        let choice = model.choose(10.0, &current);
        assert_eq!(choice, Configuration::new(vec![1, 1]));
    }

    #[test]
    fn persistent_divergence_triggers_exploration() {
        let mut model = ActionModel::new(space(), 7);
        model.set_policy(ExplorationPolicy {
            epsilon: 0.0,
            divergence_threshold: 0.3,
            patience: 2,
        });
        let config = Configuration::new(vec![1, 1]);
        assert!(!model.is_diverged());
        // Observations wildly off the declared 3.0x speedup.
        model.observe(&config, 0.9, 3.5);
        assert!(!model.is_diverged());
        model.observe(&config, 0.9, 3.5);
        assert!(model.is_diverged());
        // While diverged, choose() explores a neighbour of the current
        // configuration rather than exploiting the (wrong) model.
        let current = Configuration::new(vec![1, 0]);
        let choice = model.choose(1.0, &current);
        let diffs = choice
            .settings()
            .iter()
            .zip(current.settings())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1, "exploration stays adjacent to the current configuration");
        // Converging observations clear the divergence.
        let belief = model.believed_effect(&config);
        model.observe(&config, belief.speedup, belief.powerup);
        assert!(!model.is_diverged());
    }

    #[test]
    fn bracket_below_returns_the_fastest_configuration_under_the_requirement() {
        let model = ActionModel::new(space(), 1);
        // Speedups available: 0.5, 1.0, 1.5, 3.0 (dvfs x cores products).
        let (config, speedup) = model.bracket_below(2.0);
        assert!((speedup - 1.5).abs() < 1e-12);
        assert_eq!(config, Configuration::new(vec![0, 1]));
        // Nothing is below 0.3x: fall back to the cheapest configuration.
        let (config, speedup) = model.bracket_below(0.3);
        assert_eq!(config, Configuration::new(vec![0, 0]));
        assert!((speedup - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cheapest_returns_the_lowest_power_configuration() {
        let model = ActionModel::new(space(), 1);
        let (config, speedup) = model.cheapest();
        // Slow DVFS (0.4 power) with a single core (1.0 power) is cheapest.
        assert_eq!(config, Configuration::new(vec![0, 0]));
        assert!((speedup - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_observations_do_not_corrupt_the_model() {
        let mut model = ActionModel::new(space(), 1);
        let config = Configuration::new(vec![0, 0]);
        let before = model.believed_effect(&config);
        model.observe(&config, f64::NAN, -1.0);
        let after = model.believed_effect(&config);
        assert_eq!(before.speedup, after.speedup);
        assert_eq!(before.powerup, after.powerup);
        assert_eq!(after.observations, 1);
    }

    #[test]
    fn infinite_cap_matches_the_uncapped_selections() {
        // Same observation schedule driven into two models (identical seeds):
        // one queried uncapped, one with an infinite cap. Results — and the
        // RNG streams, exercised via a non-zero epsilon — must be identical.
        let mut uncapped = ActionModel::new(space(), 11);
        let mut capped = ActionModel::new(space(), 11);
        let policy = ExplorationPolicy {
            epsilon: 0.3,
            ..ExplorationPolicy::default()
        };
        uncapped.set_policy(policy);
        capped.set_policy(policy);
        let nominal = uncapped.table().nominal();
        for step in 0..100 {
            let id = ConfigId((step * 7 % uncapped.table().len()) as u32);
            let speedup = 0.3 + (step % 17) as f64 * 0.2;
            let powerup = 0.3 + (step % 13) as f64 * 0.3;
            uncapped.observe_id(id, speedup, powerup);
            capped.observe_id(id, speedup, powerup);
            for i in 0..8 {
                let required = i as f64 * 0.5;
                assert_eq!(
                    uncapped.bracket_below_id(required),
                    capped.bracket_below_id_capped(required, f64::INFINITY)
                );
                assert_eq!(
                    uncapped.choose_id(required, nominal),
                    capped.choose_id_capped(required, nominal, f64::INFINITY),
                    "step {step} required {required}"
                );
            }
        }
    }

    #[test]
    fn capped_selection_stays_inside_the_envelope() {
        let mut model = ActionModel::new(space(), 1);
        model.set_policy(no_exploration());
        let nominal = model.table().nominal();
        // Believed powers: 0.4, 1.0, 1.4, 3.5 (dvfs x cores products).
        // Cap at 1.5: [1,1] (3.0x at 3.5) is inadmissible, so a 2.5x
        // requirement degrades to the fastest admissible, [0,1] (1.5x).
        let choice = model.choose_id_capped(2.5, nominal, 1.5);
        assert_eq!(model.table().config_of(choice), Configuration::new(vec![0, 1]));
        // The bracket below a requirement also skips over-cap entries.
        let (id, speedup) = model.bracket_below_id_capped(10.0, 1.5);
        assert_eq!(model.table().config_of(id), Configuration::new(vec![0, 1]));
        assert!((speedup - 1.5).abs() < 1e-12);
        // A cap below even the cheapest configuration degrades to the
        // cheapest rather than selecting nothing.
        let choice = model.choose_id_capped(1.0, nominal, 0.1);
        assert_eq!(model.table().config_of(choice), Configuration::new(vec![0, 0]));
        let (id, _) = model.bracket_below_id_capped(0.3, 0.1);
        assert_eq!(model.table().config_of(id), Configuration::new(vec![0, 0]));
    }

    #[test]
    fn capped_exploration_never_breaches_the_envelope() {
        let mut model = ActionModel::new(space(), 5);
        // Always explore: epsilon 1.0.
        model.set_policy(ExplorationPolicy {
            epsilon: 1.0,
            divergence_threshold: 0.5,
            patience: 3,
        });
        let nominal = model.table().nominal();
        let cap = 1.5;
        for _ in 0..200 {
            let choice = model.choose_id_capped(1.0, nominal, cap);
            assert!(
                model.believed(choice).powerup <= cap,
                "exploration must clamp to the envelope"
            );
        }
    }

    #[test]
    fn belief_aging_decays_toward_declared_priors_with_the_halflife() {
        let mut model = ActionModel::new(space(), 1).with_belief_halflife(10.0);
        assert_eq!(model.belief_halflife(), 10.0);
        let config = Configuration::new(vec![1, 1]);
        let declared = model.believed_effect(&config);
        // Learn a strong deviation: reality is twice the declared speedup.
        for _ in 0..50 {
            model.observe(&config, declared.speedup * 2.0, declared.powerup * 2.0);
        }
        let learned = model.believed_effect(&config);
        assert!(learned.speedup > declared.speedup * 1.9);
        // Ten aging ticks = one halflife: half the deviation remains.
        for _ in 0..10 {
            model.age_beliefs();
        }
        let aged = model.believed_effect(&config);
        let remaining =
            (aged.speedup - declared.speedup) / (learned.speedup - declared.speedup);
        assert!(
            (remaining - 0.5).abs() < 1e-9,
            "one halflife must leave half the deviation, left {remaining}"
        );
        assert_eq!(aged.observations, learned.observations, "counts are not aged");
        // Unobserved configurations stay bit-identical to their priors.
        let untouched = Configuration::new(vec![0, 0]);
        let before = model.believed_effect(&untouched);
        model.age_beliefs();
        let after = model.believed_effect(&untouched);
        assert_eq!(before.speedup.to_bits(), after.speedup.to_bits());
        assert_eq!(before.powerup.to_bits(), after.powerup.to_bits());
    }

    #[test]
    fn aged_indices_still_match_the_reference_scans() {
        // Interleave observations and aging ticks, then check every
        // selection against the first-match reference scans — the re-sorted
        // indices must stay exactly consistent with the aged beliefs.
        let mut model = ActionModel::new(space(), 3).with_belief_halflife(4.0);
        model.set_policy(ExplorationPolicy {
            epsilon: 0.0,
            divergence_threshold: f64::INFINITY,
            patience: u32::MAX,
        });
        for step in 0..60 {
            let id = ConfigId((step * 5 % model.table().len()) as u32);
            model.observe_id(id, 0.3 + (step % 11) as f64 * 0.35, 0.3 + (step % 7) as f64 * 0.5);
            model.age_beliefs();
            for i in 0..=12 {
                let required = i as f64 * 0.3;
                assert_eq!(
                    model.bracket_below(required),
                    reference::bracket_below(&model, required),
                    "bracket mismatch at step {step} req {required}"
                );
                let nominal = model.table().nominal();
                let chosen = model.choose_id(required, nominal);
                assert_eq!(
                    model.table().config_of(chosen),
                    reference::choose_exploit(&model, required),
                    "choose mismatch at step {step} req {required}"
                );
            }
            assert_eq!(model.cheapest(), reference::cheapest(&model));
        }
    }

    #[test]
    fn infinite_halflife_is_bit_identical_to_no_aging() {
        let drive = |aged: bool| {
            let mut model = ActionModel::new(space(), 9);
            if aged {
                model.set_belief_halflife(f64::INFINITY);
            }
            // age_beliefs must be a pure no-op: beliefs, indices, and the
            // RNG stream (exercised via epsilon exploration) all untouched.
            model.set_policy(ExplorationPolicy {
                epsilon: 0.4,
                ..ExplorationPolicy::default()
            });
            let nominal = model.table().nominal();
            let mut picks = Vec::new();
            for step in 0..80 {
                let id = ConfigId((step % model.table().len()) as u32);
                model.observe_id(id, 0.5 + (step % 5) as f64, 0.5 + (step % 3) as f64);
                if aged {
                    model.age_beliefs();
                }
                picks.push(model.choose_id(1.0 + (step % 4) as f64 * 0.5, nominal));
            }
            picks
        };
        assert_eq!(drive(false), drive(true));
        // Non-positive halflives also disable aging.
        let mut model = ActionModel::new(space(), 1).with_belief_halflife(0.0);
        assert_eq!(model.belief_halflife(), 0.0);
        let before = model.believed_effect(&Configuration::new(vec![1, 1]));
        model.age_beliefs();
        let after = model.believed_effect(&Configuration::new(vec![1, 1]));
        assert_eq!(before.speedup.to_bits(), after.speedup.to_bits());
    }

    #[test]
    fn indexed_selection_matches_the_reference_scan() {
        // Drive the model through a pseudo-random observation schedule and
        // check, at every step and over a sweep of requirements, that the
        // index-based selections equal the first-match reference scans.
        let mut model = ActionModel::new(space(), 3);
        // The reference scans model only the exploit path, so exploration
        // (epsilon and divergence driven) must be fully disabled.
        model.set_policy(ExplorationPolicy {
            epsilon: 0.0,
            divergence_threshold: f64::INFINITY,
            patience: u32::MAX,
        });
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..200 {
            let id = ConfigId((next() % model.table().len() as u64) as u32);
            let speedup = 0.2 + (next() % 400) as f64 / 100.0;
            let powerup = 0.2 + (next() % 400) as f64 / 100.0;
            model.observe_id(id, speedup, powerup);
            for i in 0..=40 {
                let required = i as f64 * 0.1;
                let (id_cfg, id_speedup) = model.bracket_below(required);
                let (ref_cfg, ref_speedup) = reference::bracket_below(&model, required);
                assert_eq!(id_cfg, ref_cfg, "bracket mismatch at step {step} req {required}");
                assert_eq!(id_speedup.to_bits(), ref_speedup.to_bits());
                let nominal = model.table().nominal();
                let chosen = model.choose_id(required, nominal);
                let exploit = model.table().config_of(chosen);
                assert_eq!(
                    exploit,
                    reference::choose_exploit(&model, required),
                    "choose mismatch at step {step} req {required}"
                );
            }
            assert_eq!(model.cheapest(), reference::cheapest(&model));
        }
    }
}
