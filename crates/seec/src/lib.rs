//! # SEEC: a self-aware (observe–decide–act) runtime
//!
//! SEEC (SElf-awarE Computing) is the decision engine at the centre of the
//! Angstrom project (DAC 2012 §3). Applications state *goals* through the
//! [Application Heartbeats](heartbeats) API; every other layer of the system
//! — system software, the OS, and the Angstrom hardware — registers the
//! *actions* it can take through the [actuation] interface; and the SEEC
//! runtime closes the observe–decide–act loop: it watches the heartbeats,
//! decides how to use the registered actions to meet the goals at minimum
//! cost (power), and applies the chosen settings.
//!
//! The decision engine is layered, following the SEEC technical report the
//! paper summarises:
//!
//! 1. **Classical control** ([`control::PiController`]) turns the gap
//!    between target and observed heart rate into a required speedup.
//! 2. **Adaptive control** ([`control::KalmanEstimator`]) tracks the
//!    application's underlying (nominal-configuration) speed so the
//!    controller stays calibrated as the workload changes phase.
//! 3. **Online model learning** ([`model::ActionModel`]) starts from the
//!    effects each actuator *declared* and corrects them from observation,
//!    with an exploration fallback when predictions diverge
//!    ([`model::ExplorationPolicy`]).
//!
//! The translation from a continuous required speedup to discrete actuator
//! settings uses time-division scheduling between neighbouring
//! configurations ([`schedule`]), and [`runtime::SeecRuntime`] packages the
//! whole loop. [`uncoordinated::UncoordinatedRuntime`] wires one independent
//! SEEC instance per actuator to reproduce the paper's *uncoordinated
//! adaptation* baseline.
//!
//! ```
//! use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
//! use heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal};
//! use seec::SeecRuntime;
//!
//! // An application that wants 100 beats/s.
//! let registry = HeartbeatRegistry::new("app");
//! registry.issuer().set_goal(Goal::Performance(PerformanceGoal::heart_rate(100.0)));
//!
//! // A hardware-provided DVFS actuator.
//! let dvfs = ActuatorSpec::builder("dvfs")
//!     .setting(SettingSpec::new("slow").effect(Axis::Performance, 0.5).effect(Axis::Power, 0.4))
//!     .setting(SettingSpec::new("fast"))
//!     .nominal(1)
//!     .build()
//!     .unwrap();
//!
//! let mut runtime = SeecRuntime::builder(registry.monitor())
//!     .actuator(Box::new(TableActuator::new(dvfs)))
//!     .build()
//!     .unwrap();
//!
//! // Drive the loop: the application beats, the platform reports power,
//! // and SEEC periodically decides which settings to apply.
//! for step in 0..50 {
//!     let now = step as f64 * 0.01;
//!     registry.issuer().heartbeat(now);
//!     registry.monitor().record_power_sample(now, 10.0);
//!     runtime.decide(now);
//! }
//! assert!(runtime.decisions_made() > 0);
//! ```

// `warn` locally so exploratory builds are not blocked mid-edit; CI
// promotes both to errors (`RUSTFLAGS`/`RUSTDOCFLAGS` `-D warnings`), so
// no undocumented public item or broken link can land.
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod control;
pub mod error;
pub mod model;
pub mod runtime;
pub mod schedule;
pub mod uncoordinated;

pub use error::SeecError;
pub use model::{ActionModel, ExplorationPolicy};
pub use runtime::{CapDecision, Decision, SeecRuntime, SeecRuntimeBuilder};
pub use schedule::ActuationSchedule;
pub use uncoordinated::UncoordinatedRuntime;
