//! Split evaluation: hoist configuration- and demand-invariant work out of
//! the per-(demand, configuration) inner loop.
//!
//! [`XeonServer::evaluate`] performs, on every call, work that depends only
//! on the configuration (clamping, the P-state frequency lookup, and — most
//! expensively — the `powf` in the power model) or only on the demand (the
//! Amdahl split). Experiment sweeps evaluate the *same* configurations
//! against the *same* demands thousands of times, so this module lets them
//! prepare both sides once and pay only ~10 floating-point operations per
//! cell.
//!
//! Bit-for-bit contract: [`XeonServer::evaluate_prepared`] performs exactly
//! the same floating-point operations, in exactly the same association
//! order, as [`XeonServer::evaluate`] — the precomputed values are the
//! identical intermediates, just computed earlier. A property test below
//! asserts bitwise equality over randomised demands and configurations; the
//! figure pipeline relies on it for reproducibility.

use crate::demand::ServerDemand;
use crate::server::{ServerConfiguration, ServerReport, XeonServer};

/// Configuration-side intermediates of [`XeonServer::evaluate`], computed
/// once per configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedConfig {
    /// Clamped core count, as f64 for the Amdahl denominator.
    cores: f64,
    /// DRAM stall penalty in cycles at this configuration's frequency.
    miss_penalty_cycles: f64,
    /// Frequency × duty.
    effective_frequency: f64,
    /// `effective_frequency * cores` — the parallel-term denominator.
    effective_frequency_times_cores: f64,
    /// Power above idle at this configuration (demand independent).
    power_above_idle_watts: f64,
    /// Total power including idle.
    total_power_watts: f64,
}

impl PreparedConfig {
    /// Power above idle of the prepared configuration, in watts.
    pub fn power_above_idle_watts(&self) -> f64 {
        self.power_above_idle_watts
    }

    /// DRAM stall penalty at this configuration's frequency, in cycles —
    /// the key for matching pre-folded [`DemandTerms`].
    pub fn miss_penalty_cycles(&self) -> f64 {
        self.miss_penalty_cycles
    }
}

/// Demand-side intermediates of [`XeonServer::evaluate`], computed once per
/// demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedDemand {
    instructions: f64,
    work_units: f64,
    base_cpi: f64,
    /// `memory_ops_per_instruction * llc_miss_rate`.
    memory_miss_ops: f64,
    /// Serial instructions: `(1 - parallel_fraction) * instructions`.
    serial: f64,
    /// Parallel instructions: `parallel_fraction * instructions`.
    parallel: f64,
    load_imbalance: f64,
}

impl PreparedDemand {
    /// Precomputes the demand-side intermediates of the evaluation.
    pub fn new(demand: &ServerDemand) -> Self {
        PreparedDemand {
            instructions: demand.instructions,
            work_units: demand.work_units,
            base_cpi: demand.base_cpi,
            memory_miss_ops: demand.memory_ops_per_instruction * demand.llc_miss_rate,
            serial: (1.0 - demand.parallel_fraction) * demand.instructions,
            parallel: demand.parallel_fraction * demand.instructions,
            load_imbalance: demand.load_imbalance,
        }
    }

    /// Folds in the one configuration-dependent input of the CPI model —
    /// the DRAM miss penalty, which depends only on the P-state frequency —
    /// yielding the terms shared by every configuration at that frequency.
    /// Sweeps over a grid recompute these once per P-state instead of once
    /// per (cores × duty × P-state) cell.
    pub fn at_miss_penalty(&self, miss_penalty_cycles: f64) -> DemandTerms {
        let cpi = self.base_cpi + self.memory_miss_ops * miss_penalty_cycles;
        DemandTerms {
            miss_penalty_cycles,
            instructions: self.instructions,
            work_units: self.work_units,
            serial_cpi: self.serial * cpi,
            parallel_cpi_imbalance: self.parallel * cpi * self.load_imbalance,
        }
    }
}

/// Demand terms at one DRAM miss penalty (equivalently, one P-state): the
/// numerators of the Amdahl split with the CPI folded in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandTerms {
    /// The miss penalty these terms were folded at (for cache matching).
    miss_penalty_cycles: f64,
    instructions: f64,
    work_units: f64,
    /// `serial * cpi`.
    serial_cpi: f64,
    /// `(parallel * cpi) * load_imbalance`.
    parallel_cpi_imbalance: f64,
}

impl DemandTerms {
    /// The miss penalty the terms were folded at.
    pub fn miss_penalty_cycles(&self) -> f64 {
        self.miss_penalty_cycles
    }
}

impl XeonServer {
    /// Precomputes the configuration-side intermediates of the evaluation
    /// (including the super-linear frequency power term).
    pub fn prepare(&self, configuration: &ServerConfiguration) -> PreparedConfig {
        let cores = configuration.cores.clamp(1, self.total_cores);
        let pstate = configuration.pstate_index.min(self.pstates.len() - 1);
        let duty = configuration.active_cycle_fraction.clamp(0.05, 1.0);
        let frequency = self.pstates.frequency(pstate).expect("index clamped");

        let miss_penalty_cycles = self.dram_latency * frequency;
        let effective_frequency = frequency * duty;

        let per_core_max = (self.max_power - self.idle_power) / self.total_cores as f64;
        let frequency_ratio = frequency / self.pstates.max_frequency();
        let per_core = per_core_max * frequency_ratio.powf(self.frequency_power_exponent) * duty;
        let power_above_idle = per_core * cores as f64 * self.utilization_convexity(cores, duty);
        let total_power = self.idle_power + power_above_idle;

        PreparedConfig {
            cores: cores as f64,
            miss_penalty_cycles,
            effective_frequency,
            effective_frequency_times_cores: effective_frequency * cores as f64,
            power_above_idle_watts: power_above_idle,
            total_power_watts: total_power,
        }
    }

    /// Evaluates a prepared demand under a prepared configuration.
    ///
    /// Bit-identical to [`XeonServer::evaluate`] on the corresponding raw
    /// demand and configuration, at a fraction of the cost.
    #[inline]
    pub fn evaluate_prepared(
        &self,
        demand: &PreparedDemand,
        config: &PreparedConfig,
    ) -> ServerReport {
        self.evaluate_terms(&demand.at_miss_penalty(config.miss_penalty_cycles), config)
    }

    /// Evaluates pre-folded demand terms under a prepared configuration —
    /// the innermost loop of grid sweeps: two divisions, an add, and the
    /// power products. The caller must have folded the terms at this
    /// configuration's miss penalty.
    ///
    /// Bit-identical to [`XeonServer::evaluate`]: the operation association
    /// matches exactly (`(serial·cpi)/eff + ((parallel·cpi)·imbalance)/(eff·cores)`).
    #[inline]
    pub fn evaluate_terms(&self, terms: &DemandTerms, config: &PreparedConfig) -> ServerReport {
        debug_assert_eq!(
            terms.miss_penalty_cycles.to_bits(),
            config.miss_penalty_cycles.to_bits(),
            "demand terms folded at a different P-state than the configuration"
        );
        let seconds = (terms.serial_cpi / config.effective_frequency
            + terms.parallel_cpi_imbalance / config.effective_frequency_times_cores)
            .max(1e-9);
        let energy = config.total_power_watts * seconds;
        ServerReport {
            seconds,
            instructions: terms.instructions,
            work_units: terms.work_units,
            instructions_per_second: terms.instructions / seconds,
            total_power_watts: config.total_power_watts,
            power_above_idle_watts: config.power_above_idle_watts,
            energy_joules: energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bit_identical(server: &XeonServer, demand: &ServerDemand, cfg: &ServerConfiguration) {
        let direct = server.evaluate(demand, cfg);
        let prepared = server.evaluate_prepared(&PreparedDemand::new(demand), &server.prepare(cfg));
        assert_eq!(direct.seconds.to_bits(), prepared.seconds.to_bits());
        assert_eq!(
            direct.instructions_per_second.to_bits(),
            prepared.instructions_per_second.to_bits()
        );
        assert_eq!(
            direct.total_power_watts.to_bits(),
            prepared.total_power_watts.to_bits()
        );
        assert_eq!(
            direct.power_above_idle_watts.to_bits(),
            prepared.power_above_idle_watts.to_bits()
        );
        assert_eq!(
            direct.energy_joules.to_bits(),
            prepared.energy_joules.to_bits()
        );
        assert_eq!(direct.instructions.to_bits(), prepared.instructions.to_bits());
        assert_eq!(direct.work_units.to_bits(), prepared.work_units.to_bits());
    }

    #[test]
    fn prepared_evaluation_is_bit_identical_over_the_full_grid() {
        for server in [XeonServer::dell_r410(), XeonServer::dell_r410_calibrated()] {
            let mut x = 0x2545f4914f6cdd1du64;
            let mut frac = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 11) as f64 / (1u64 << 53) as f64
            };
            for _ in 0..50 {
                let demand = ServerDemand::builder()
                    .instructions(1.0e8 + frac() * 1.0e10)
                    .parallel_fraction(frac())
                    .memory_ops_per_instruction(frac() * 0.6)
                    .llc_miss_rate(frac() * 0.3)
                    .base_cpi(0.5 + frac() * 2.0)
                    .load_imbalance(1.0 + frac())
                    .work_units(1.0 + frac() * 100.0)
                    .build();
                for cores in 1..=server.total_cores() {
                    for pstate in 0..server.pstates().len() {
                        for duty_step in 1..=10 {
                            let cfg = ServerConfiguration::new(
                                cores,
                                pstate,
                                duty_step as f64 / 10.0,
                            );
                            assert_bit_identical(&server, &demand, &cfg);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn clamping_matches_evaluate() {
        let server = XeonServer::dell_r410();
        let demand = ServerDemand::builder().build();
        for cfg in [
            ServerConfiguration::new(0, 0, 1.0),
            ServerConfiguration::new(100, 99, 7.0),
            ServerConfiguration::new(4, 3, 0.001),
        ] {
            assert_bit_identical(&server, &demand, &cfg);
        }
    }

    #[test]
    fn calibrated_model_penalises_flat_out() {
        let linear = XeonServer::dell_r410();
        let convex = XeonServer::dell_r410_calibrated();
        let demand = ServerDemand::builder().parallel_fraction(0.95).build();
        let flat_out = ServerConfiguration::new(8, 0, 1.0);
        let half = ServerConfiguration::new(4, 0, 1.0);
        // Full utilisation: identical power (the envelope is preserved).
        let lin_full = linear.evaluate(&demand, &flat_out);
        let cvx_full = convex.evaluate(&demand, &flat_out);
        assert!((lin_full.power_above_idle_watts - cvx_full.power_above_idle_watts).abs() < 1e-9);
        // Partial utilisation: the convex model is cheaper than linear
        // (0.5^0.15 ≈ 0.90 at half utilisation), so flat-out runs are
        // *relatively* penalised.
        let lin_half = linear.evaluate(&demand, &half);
        let cvx_half = convex.evaluate(&demand, &half);
        assert!(cvx_half.power_above_idle_watts < lin_half.power_above_idle_watts * 0.95);
        assert!(
            cvx_half.performance_per_watt_above_idle() > lin_half.performance_per_watt_above_idle()
        );
    }
}
