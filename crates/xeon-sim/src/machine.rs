//! Machine-level power accounting across many applications.
//!
//! One server hosts many self-aware applications at once; the platform —
//! not any single application — owns the machine's power budget. A
//! [`MachineMeter`] plays that role in the simulation: every quantum, the
//! experiment driver reports each application's power draw and the meter
//! accumulates the machine total, tracking how much of the run violated the
//! configured cap. The per-application samples still flow into each
//! application's own [`heartbeats`-side](crate::PowerMeter) accounting; the
//! machine meter is the shared view an arbitration layer is judged against.

use serde::{Deserialize, Serialize};

/// Accumulates machine-level (summed across applications) power over a run
/// and reports cap violations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineMeter {
    cap_watts: f64,
    seconds: f64,
    energy_joules: f64,
    violation_seconds: f64,
    /// Energy above the cap — how *deep* the violations ran, not just how
    /// long.
    excess_energy_joules: f64,
    peak_watts: f64,
    intervals: u64,
    violation_intervals: u64,
}

impl MachineMeter {
    /// A meter enforcing (observing, really — the meter never throttles)
    /// a machine-level cap of `cap_watts`.
    ///
    /// # Panics
    ///
    /// Panics unless the cap is positive (use `f64::INFINITY` for an
    /// uncapped machine).
    pub fn new(cap_watts: f64) -> Self {
        assert!(cap_watts > 0.0, "machine power cap must be positive");
        MachineMeter {
            cap_watts,
            seconds: 0.0,
            energy_joules: 0.0,
            violation_seconds: 0.0,
            excess_energy_joules: 0.0,
            peak_watts: 0.0,
            intervals: 0,
            violation_intervals: 0,
        }
    }

    /// The configured cap, in watts.
    pub fn cap_watts(&self) -> f64 {
        self.cap_watts
    }

    /// Steps the cap mid-run (operator- or rack-level power management).
    /// Already-recorded intervals keep the verdicts of the cap in force
    /// when they were recorded; only future intervals are judged against
    /// the new cap.
    ///
    /// # Panics
    ///
    /// Panics unless the cap is positive (`f64::INFINITY` = uncapped).
    pub fn set_cap(&mut self, cap_watts: f64) {
        assert!(cap_watts > 0.0, "machine power cap must be positive");
        self.cap_watts = cap_watts;
    }

    /// Records that the machine drew `total_watts` (summed across every
    /// application) for `seconds` of simulated time. Non-positive durations
    /// are ignored.
    pub fn record(&mut self, seconds: f64, total_watts: f64) {
        if seconds.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        self.seconds += seconds;
        self.energy_joules += total_watts * seconds;
        self.peak_watts = self.peak_watts.max(total_watts);
        self.intervals += 1;
        if total_watts > self.cap_watts {
            self.violation_seconds += seconds;
            self.excess_energy_joules += (total_watts - self.cap_watts) * seconds;
            self.violation_intervals += 1;
        }
    }

    /// Sums one interval's per-application draws and records the total.
    /// Returns the machine total, so callers can log it without re-summing.
    pub fn record_apps<I: IntoIterator<Item = f64>>(&mut self, seconds: f64, watts: I) -> f64 {
        let total: f64 = watts.into_iter().sum();
        self.record(seconds, total);
        total
    }

    /// Total simulated time observed, in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.seconds
    }

    /// Number of recorded intervals.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Time-weighted mean machine power, in watts (0 before any interval).
    pub fn mean_watts(&self) -> f64 {
        if self.seconds > 0.0 {
            self.energy_joules / self.seconds
        } else {
            0.0
        }
    }

    /// Highest interval power observed, in watts.
    pub fn peak_watts(&self) -> f64 {
        self.peak_watts
    }

    /// Total machine energy observed, in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy_joules
    }

    /// Fraction of observed *time* spent above the cap, in `[0, 1]`.
    pub fn violation_rate(&self) -> f64 {
        if self.seconds > 0.0 {
            self.violation_seconds / self.seconds
        } else {
            0.0
        }
    }

    /// Number of recorded intervals above the cap — the numerator of
    /// [`Self::violation_interval_rate`], exposed so telemetry can count
    /// violations incrementally (before/after deltas around a record).
    pub fn violation_intervals(&self) -> u64 {
        self.violation_intervals
    }

    /// Fraction of recorded *intervals* above the cap, in `[0, 1]`.
    pub fn violation_interval_rate(&self) -> f64 {
        if self.intervals > 0 {
            self.violation_intervals as f64 / self.intervals as f64
        } else {
            0.0
        }
    }

    /// Energy delivered above the cap, in joules — the depth of the
    /// violations, which a duration-based rate cannot distinguish.
    pub fn excess_energy_joules(&self) -> f64 {
        self.excess_energy_joules
    }

    /// Whether any recorded interval exceeded the cap.
    pub fn violated(&self) -> bool {
        self.violation_intervals > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_means_accumulate() {
        let mut meter = MachineMeter::new(100.0);
        meter.record(1.0, 60.0);
        meter.record(3.0, 80.0);
        assert_eq!(meter.cap_watts(), 100.0);
        assert_eq!(meter.elapsed_seconds(), 4.0);
        assert_eq!(meter.intervals(), 2);
        assert!((meter.mean_watts() - (60.0 + 240.0) / 4.0).abs() < 1e-12);
        assert_eq!(meter.peak_watts(), 80.0);
        assert!(!meter.violated());
        assert_eq!(meter.violation_rate(), 0.0);
        assert_eq!(meter.excess_energy_joules(), 0.0);
    }

    #[test]
    fn violations_are_tracked_by_time_interval_and_depth() {
        let mut meter = MachineMeter::new(100.0);
        meter.record(1.0, 90.0); // under
        meter.record(1.0, 120.0); // over by 20 W for 1 s
        meter.record(2.0, 110.0); // over by 10 W for 2 s
        assert!(meter.violated());
        assert!((meter.violation_rate() - 3.0 / 4.0).abs() < 1e-12);
        assert!((meter.violation_interval_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((meter.excess_energy_joules() - 40.0).abs() < 1e-12);
        assert_eq!(meter.peak_watts(), 120.0);
    }

    #[test]
    fn per_app_draws_sum_into_the_machine_total() {
        let mut meter = MachineMeter::new(50.0);
        let total = meter.record_apps(2.0, [10.0, 15.0, 30.0]);
        assert!((total - 55.0).abs() < 1e-12);
        assert!(meter.violated());
        assert!((meter.excess_energy_joules() - 10.0).abs() < 1e-12);
        // An empty fleet draws nothing but the interval still counts.
        let total = meter.record_apps(1.0, []);
        assert_eq!(total, 0.0);
        assert_eq!(meter.intervals(), 2);
    }

    #[test]
    fn degenerate_durations_are_ignored() {
        let mut meter = MachineMeter::new(100.0);
        meter.record(0.0, 500.0);
        meter.record(-1.0, 500.0);
        assert_eq!(meter.intervals(), 0);
        assert_eq!(meter.mean_watts(), 0.0);
        assert_eq!(meter.violation_interval_rate(), 0.0);
        assert!(!meter.violated());
    }

    #[test]
    fn stepping_the_cap_rejudges_only_future_intervals() {
        let mut meter = MachineMeter::new(100.0);
        meter.record(1.0, 90.0); // under the 100 W cap
        meter.set_cap(50.0);
        assert_eq!(meter.cap_watts(), 50.0);
        meter.record(1.0, 90.0); // over the new 50 W cap
        assert!((meter.violation_rate() - 0.5).abs() < 1e-12);
        assert!((meter.excess_energy_joules() - 40.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_cap_step_panics() {
        let mut meter = MachineMeter::new(100.0);
        meter.set_cap(-1.0);
    }

    #[test]
    fn infinite_cap_never_violates() {
        let mut meter = MachineMeter::new(f64::INFINITY);
        meter.record(1.0, 1.0e9);
        assert!(!meter.violated());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_cap_panics() {
        let _ = MachineMeter::new(0.0);
    }
}
