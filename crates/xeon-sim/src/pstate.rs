//! ACPI P-state table of the Xeon E5530.

use serde::{Deserialize, Serialize};

/// The discrete clock-frequency states software can select through
/// `cpufrequtils` (DAC 2012 §5.2: seven states from 2.4 GHz down to 1.6 GHz).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PStateTable {
    frequencies: Vec<f64>,
}

impl PStateTable {
    /// The seven P-states of the Xeon E5530, fastest first (index 0 =
    /// 2.4 GHz, index 6 = 1.6 GHz).
    pub fn xeon_e5530() -> Self {
        PStateTable {
            frequencies: vec![2.400e9, 2.267e9, 2.133e9, 2.000e9, 1.867e9, 1.733e9, 1.600e9],
        }
    }

    /// Builds a table from explicit frequencies in hertz, fastest first.
    ///
    /// # Panics
    ///
    /// Panics if `frequencies` is empty.
    pub fn new(frequencies: Vec<f64>) -> Self {
        assert!(!frequencies.is_empty(), "P-state table must not be empty");
        PStateTable { frequencies }
    }

    /// Number of selectable states.
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }

    /// Frequency of state `index`, in hertz.
    pub fn frequency(&self, index: usize) -> Option<f64> {
        self.frequencies.get(index).copied()
    }

    /// The highest frequency in the table, in hertz.
    pub fn max_frequency(&self) -> f64 {
        self.frequencies.iter().copied().fold(0.0, f64::max)
    }

    /// The lowest frequency in the table, in hertz.
    pub fn min_frequency(&self) -> f64 {
        self.frequencies.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// All frequencies, fastest first.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }
}

impl Default for PStateTable {
    fn default() -> Self {
        PStateTable::xeon_e5530()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5530_has_seven_states_spanning_the_paper_range() {
        let table = PStateTable::xeon_e5530();
        assert_eq!(table.len(), 7);
        assert!(!table.is_empty());
        assert_eq!(table.max_frequency(), 2.4e9);
        assert_eq!(table.min_frequency(), 1.6e9);
        assert_eq!(table.frequency(0), Some(2.4e9));
        assert_eq!(table.frequency(6), Some(1.6e9));
        assert_eq!(table.frequency(7), None);
    }

    #[test]
    fn frequencies_are_strictly_decreasing() {
        let table = PStateTable::default();
        for pair in table.frequencies().windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_table_panics() {
        let _ = PStateTable::new(vec![]);
    }
}
