//! WattsUp-style external power meter.
//!
//! The paper measures power with a WattsUp device that samples and stores
//! the average consumed power over one-second intervals (DAC 2012 §5.2).
//! [`PowerMeter`] reproduces that behaviour: the simulation feeds it
//! (duration, power) segments and it emits one averaged sample per sampling
//! interval.

use serde::{Deserialize, Serialize};

/// One stored sample: the average power over one sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// End time of the interval, in seconds since the meter was started.
    pub timestamp: f64,
    /// Average power over the interval, in watts.
    pub watts: f64,
}

/// A sampling power meter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMeter {
    interval: f64,
    samples: Vec<PowerSample>,
    bucket_energy: f64,
    bucket_elapsed: f64,
    now: f64,
}

impl PowerMeter {
    /// A WattsUp-style meter sampling every second.
    pub fn wattsup() -> Self {
        PowerMeter::with_interval(1.0)
    }

    /// A meter sampling every `interval` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn with_interval(interval: f64) -> Self {
        assert!(interval > 0.0, "sampling interval must be positive");
        PowerMeter {
            interval,
            samples: Vec::new(),
            bucket_energy: 0.0,
            bucket_elapsed: 0.0,
            now: 0.0,
        }
    }

    /// Sampling interval in seconds.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Current meter time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Records that the platform drew `watts` for `seconds` of simulated time,
    /// emitting completed samples along the way.
    pub fn record(&mut self, watts: f64, seconds: f64) {
        let mut remaining = seconds.max(0.0);
        while remaining > 0.0 {
            let room = self.interval - self.bucket_elapsed;
            let step = remaining.min(room);
            self.bucket_energy += watts * step;
            self.bucket_elapsed += step;
            self.now += step;
            remaining -= step;
            if self.bucket_elapsed >= self.interval - 1e-12 {
                self.samples.push(PowerSample {
                    timestamp: self.now,
                    watts: self.bucket_energy / self.interval,
                });
                self.bucket_energy = 0.0;
                self.bucket_elapsed = 0.0;
            }
        }
    }

    /// Every completed sample so far, oldest first.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Mean of the completed samples, in watts.
    pub fn mean_power(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|s| s.watts).sum::<f64>() / self.samples.len() as f64)
    }
}

impl Default for PowerMeter {
    fn default() -> Self {
        PowerMeter::wattsup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_gives_constant_samples() {
        let mut meter = PowerMeter::wattsup();
        meter.record(150.0, 5.0);
        assert_eq!(meter.samples().len(), 5);
        for s in meter.samples() {
            assert!((s.watts - 150.0).abs() < 1e-9);
        }
        assert_eq!(meter.mean_power(), Some(150.0));
        assert!((meter.now() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn samples_average_power_changes_within_an_interval() {
        let mut meter = PowerMeter::wattsup();
        meter.record(100.0, 0.5);
        meter.record(200.0, 0.5);
        assert_eq!(meter.samples().len(), 1);
        assert!((meter.samples()[0].watts - 150.0).abs() < 1e-9);
    }

    #[test]
    fn partial_intervals_are_not_emitted_until_complete() {
        let mut meter = PowerMeter::wattsup();
        meter.record(120.0, 0.7);
        assert!(meter.samples().is_empty());
        assert!(meter.mean_power().is_none());
        meter.record(120.0, 0.3);
        assert_eq!(meter.samples().len(), 1);
    }

    #[test]
    fn long_segments_split_into_many_samples() {
        let mut meter = PowerMeter::with_interval(0.5);
        meter.record(90.0, 2.25);
        assert_eq!(meter.samples().len(), 4);
        assert_eq!(meter.interval(), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = PowerMeter::with_interval(0.0);
    }

    #[test]
    fn negative_durations_are_ignored() {
        let mut meter = PowerMeter::wattsup();
        meter.record(100.0, -5.0);
        assert_eq!(meter.now(), 0.0);
        assert!(meter.samples().is_empty());
    }
}
