//! The analytical Xeon server performance and power model.

use serde::{Deserialize, Serialize};

use crate::demand::ServerDemand;
use crate::pstate::PStateTable;

/// The three knobs SEEC manipulates on the existing system (DAC 2012 §5.2):
/// cores assigned to the application, the clock speed of those cores, and the
/// fraction of non-idle cycles the application receives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfiguration {
    /// Number of cores assigned to the application.
    pub cores: usize,
    /// Index into the P-state table (0 = fastest).
    pub pstate_index: usize,
    /// Fraction of cycles the application is allowed to be non-idle, in
    /// `(0, 1]` (1.0 = no forced idling).
    pub active_cycle_fraction: f64,
}

impl ServerConfiguration {
    /// Creates a configuration.
    pub fn new(cores: usize, pstate_index: usize, active_cycle_fraction: f64) -> Self {
        ServerConfiguration {
            cores,
            pstate_index,
            active_cycle_fraction,
        }
    }

    /// Checks the configuration against a particular server.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, server: &XeonServer) -> Result<(), String> {
        if self.cores == 0 || self.cores > server.total_cores() {
            return Err(format!(
                "core assignment {} outside 1..={}",
                self.cores,
                server.total_cores()
            ));
        }
        if self.pstate_index >= server.pstates().len() {
            return Err(format!(
                "P-state {} out of range (0..{})",
                self.pstate_index,
                server.pstates().len()
            ));
        }
        if !(self.active_cycle_fraction > 0.0 && self.active_cycle_fraction <= 1.0) {
            return Err(format!(
                "active cycle fraction {} outside (0, 1]",
                self.active_cycle_fraction
            ));
        }
        Ok(())
    }
}

/// Outcome of executing a demand quantum on the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerReport {
    /// Wall-clock duration of the quantum, in seconds.
    pub seconds: f64,
    /// Instructions retired.
    pub instructions: f64,
    /// Application work units completed.
    pub work_units: f64,
    /// Achieved throughput, in instructions per second.
    pub instructions_per_second: f64,
    /// Average total server power (including idle), in watts.
    pub total_power_watts: f64,
    /// Average power beyond idle attributable to the application, in watts.
    pub power_above_idle_watts: f64,
    /// Total energy over the quantum, in joules.
    pub energy_joules: f64,
}

impl ServerReport {
    /// Performance per watt as the paper computes it on this platform:
    /// throughput divided by power *beyond idle*.
    pub fn performance_per_watt_above_idle(&self) -> f64 {
        if self.power_above_idle_watts > 0.0 {
            self.instructions_per_second / self.power_above_idle_watts
        } else {
            0.0
        }
    }
}

/// Analytical model of the dual-socket Xeon E5530 server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XeonServer {
    pub(crate) pstates: PStateTable,
    pub(crate) total_cores: usize,
    pub(crate) idle_power: f64,
    pub(crate) max_power: f64,
    /// Exponent relating frequency to per-core dynamic power (voltage tracks
    /// frequency on this part, so power grows super-linearly with clock).
    pub(crate) frequency_power_exponent: f64,
    /// Exponent relating total utilisation (active cores × duty / all cores)
    /// to power above idle. `1.0` is the historical linear model; values
    /// above `1.0` make flat-out operation disproportionately expensive, as
    /// measured on real hardware (shared-resource contention, VR and fan
    /// losses grow with load). See [`XeonServer::dell_r410_calibrated`].
    pub(crate) utilization_power_exponent: f64,
    /// DRAM access latency in seconds.
    pub(crate) dram_latency: f64,
}

impl XeonServer {
    /// The Dell PowerEdge R410 used in the paper: 8 cores, seven P-states,
    /// ~90 W idle and ~220 W at full load. Power above idle is linear in
    /// utilisation (the model this reproduction has always used; kept as the
    /// default so existing figures are bit-for-bit reproducible).
    pub fn dell_r410() -> Self {
        XeonServer {
            pstates: PStateTable::xeon_e5530(),
            total_cores: 8,
            idle_power: 90.0,
            max_power: 220.0,
            frequency_power_exponent: 2.2,
            utilization_power_exponent: 1.0,
            dram_latency: 60.0e-9,
        }
    }

    /// The R410 with the recalibrated convex power curve.
    ///
    /// The linear-above-idle model makes the no-adaptation baseline tie the
    /// oracles on perf/W-above-idle (running flat out costs exactly
    /// proportionally more); real measurements show power above idle grows
    /// super-linearly with utilisation, penalising flat-out runs. The
    /// exponent 1.15 keeps the 220 W full-load envelope (the convexity
    /// factor is exactly 1.0 at 100 % utilisation) while making
    /// half-utilised operation ~10 % cheaper than the linear model predicts
    /// — the order of the efficiency hump measured on Nehalem-class
    /// servers. Experiments gate on this constructor explicitly; see
    /// EXPERIMENTS.md for the recalibrated Figure-3 gap.
    pub fn dell_r410_calibrated() -> Self {
        XeonServer::dell_r410().with_utilization_power_exponent(1.15)
    }

    /// Returns the server with an explicit utilisation-power exponent
    /// (1.0 = the linear historical model), for what-if studies.
    ///
    /// # Panics
    ///
    /// Panics unless the exponent is finite and at least 1.0 (sub-linear
    /// exponents would let partial utilisation cost more than full load).
    pub fn with_utilization_power_exponent(mut self, exponent: f64) -> Self {
        assert!(
            exponent.is_finite() && exponent >= 1.0,
            "utilisation power exponent must be finite and >= 1.0, got {exponent}"
        );
        self.utilization_power_exponent = exponent;
        self
    }

    /// Exponent relating utilisation to power above idle (1.0 = linear).
    pub fn utilization_power_exponent(&self) -> f64 {
        self.utilization_power_exponent
    }

    /// The P-state table of the server.
    pub fn pstates(&self) -> &PStateTable {
        &self.pstates
    }

    /// Total cores across both sockets.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }

    /// Idle power of the whole server, in watts.
    pub fn idle_power_watts(&self) -> f64 {
        self.idle_power
    }

    /// Nameplate full-load power, in watts.
    pub fn max_power_watts(&self) -> f64 {
        self.max_power
    }

    /// The default configuration: every core at the fastest clock, no forced
    /// idling.
    pub fn default_configuration(&self) -> ServerConfiguration {
        ServerConfiguration::new(self.total_cores, 0, 1.0)
    }

    /// Evaluates `demand` under `configuration` (clamped into range), without
    /// mutating any state.
    pub fn evaluate(&self, demand: &ServerDemand, configuration: &ServerConfiguration) -> ServerReport {
        let cores = configuration.cores.clamp(1, self.total_cores);
        let pstate = configuration.pstate_index.min(self.pstates.len() - 1);
        let duty = configuration.active_cycle_fraction.clamp(0.05, 1.0);
        let frequency = self.pstates.frequency(pstate).expect("index clamped");

        // Cycles per instruction: base plus DRAM stalls (latency is constant
        // in nanoseconds, so the cycle cost scales with frequency).
        let miss_penalty_cycles = self.dram_latency * frequency;
        let cpi = demand.base_cpi
            + demand.memory_ops_per_instruction * demand.llc_miss_rate * miss_penalty_cycles;

        // Amdahl split with load imbalance; forced idling stretches time.
        let serial = (1.0 - demand.parallel_fraction) * demand.instructions;
        let parallel = demand.parallel_fraction * demand.instructions;
        let effective_frequency = frequency * duty;
        let seconds = (serial * cpi / effective_frequency
            + parallel * cpi * demand.load_imbalance / (effective_frequency * cores as f64))
            .max(1e-9);

        // Power beyond idle: each active core contributes in proportion to
        // its duty cycle and a super-linear function of its clock. The
        // convexity factor is exactly 1.0 under the linear default, keeping
        // the historical model's results bit-for-bit.
        let per_core_max = (self.max_power - self.idle_power) / self.total_cores as f64;
        let frequency_ratio = frequency / self.pstates.max_frequency();
        let per_core = per_core_max * frequency_ratio.powf(self.frequency_power_exponent) * duty;
        let power_above_idle = per_core * cores as f64 * self.utilization_convexity(cores, duty);
        let total_power = self.idle_power + power_above_idle;
        let energy = total_power * seconds;

        ServerReport {
            seconds,
            instructions: demand.instructions,
            work_units: demand.work_units,
            instructions_per_second: demand.instructions / seconds,
            total_power_watts: total_power,
            power_above_idle_watts: power_above_idle,
            energy_joules: energy,
        }
    }

    /// The multiplicative convexity correction on power above idle for a
    /// given core count and duty cycle: `utilisation^(exponent - 1)`.
    /// Exactly 1.0 under the linear default exponent.
    pub(crate) fn utilization_convexity(&self, cores: usize, duty: f64) -> f64 {
        if self.utilization_power_exponent == 1.0 {
            1.0
        } else {
            let utilization = (cores as f64 * duty) / self.total_cores as f64;
            utilization.powf(self.utilization_power_exponent - 1.0)
        }
    }

    /// The maximum achievable throughput for `demand` across every
    /// configuration, in instructions per second. The paper's experiments
    /// set each application's performance goal to half this value.
    pub fn max_throughput(&self, demand: &ServerDemand) -> f64 {
        let best = self.default_configuration();
        self.evaluate(demand, &best).instructions_per_second
    }
}

impl Default for XeonServer {
    fn default() -> Self {
        XeonServer::dell_r410()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> ServerDemand {
        ServerDemand::builder()
            .instructions(5.0e9)
            .parallel_fraction(0.95)
            .memory_ops_per_instruction(0.3)
            .llc_miss_rate(0.02)
            .build()
    }

    #[test]
    fn r410_matches_published_envelope() {
        let server = XeonServer::dell_r410();
        assert_eq!(server.total_cores(), 8);
        assert_eq!(server.pstates().len(), 7);
        assert_eq!(server.idle_power_watts(), 90.0);
        let report = server.evaluate(&demand(), &server.default_configuration());
        assert!(report.total_power_watts <= server.max_power_watts() + 1e-9);
        assert!(report.total_power_watts > 200.0, "full load approaches 220 W");
    }

    #[test]
    fn more_cores_and_higher_clock_run_faster() {
        let server = XeonServer::dell_r410();
        let d = demand();
        let slow = server.evaluate(&d, &ServerConfiguration::new(1, 6, 1.0));
        let fast = server.evaluate(&d, &ServerConfiguration::new(8, 0, 1.0));
        assert!(fast.seconds < slow.seconds);
        assert!(fast.instructions_per_second > slow.instructions_per_second);
        assert!(fast.power_above_idle_watts > slow.power_above_idle_watts);
    }

    #[test]
    fn forced_idling_trades_performance_for_power() {
        let server = XeonServer::dell_r410();
        let d = demand();
        let full = server.evaluate(&d, &ServerConfiguration::new(4, 0, 1.0));
        let half = server.evaluate(&d, &ServerConfiguration::new(4, 0, 0.5));
        assert!(half.seconds > full.seconds);
        assert!(half.power_above_idle_watts < full.power_above_idle_watts);
    }

    #[test]
    fn lower_clock_is_more_efficient_per_instruction() {
        let server = XeonServer::dell_r410();
        let d = demand();
        let fast = server.evaluate(&d, &ServerConfiguration::new(4, 0, 1.0));
        let slow = server.evaluate(&d, &ServerConfiguration::new(4, 6, 1.0));
        // Energy above idle per instruction falls at the lower clock.
        let fast_energy_above_idle = fast.power_above_idle_watts * fast.seconds;
        let slow_energy_above_idle = slow.power_above_idle_watts * slow.seconds;
        assert!(slow_energy_above_idle < fast_energy_above_idle);
    }

    #[test]
    fn energy_identity_holds() {
        let server = XeonServer::dell_r410();
        let report = server.evaluate(&demand(), &ServerConfiguration::new(6, 2, 0.8));
        assert!((report.energy_joules - report.total_power_watts * report.seconds).abs() < 1e-6);
        assert!(
            (report.performance_per_watt_above_idle()
                - report.instructions_per_second / report.power_above_idle_watts)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn validation_rejects_bad_configurations() {
        let server = XeonServer::dell_r410();
        assert!(ServerConfiguration::new(0, 0, 1.0).validate(&server).is_err());
        assert!(ServerConfiguration::new(9, 0, 1.0).validate(&server).is_err());
        assert!(ServerConfiguration::new(4, 9, 1.0).validate(&server).is_err());
        assert!(ServerConfiguration::new(4, 0, 0.0).validate(&server).is_err());
        assert!(ServerConfiguration::new(4, 0, 1.5).validate(&server).is_err());
        assert!(ServerConfiguration::new(4, 0, 1.0).validate(&server).is_ok());
        assert!(server.default_configuration().validate(&server).is_ok());
    }

    #[test]
    fn max_throughput_uses_the_fastest_configuration() {
        let server = XeonServer::dell_r410();
        let d = demand();
        let max = server.max_throughput(&d);
        for cores in [1, 2, 4, 8] {
            for pstate in [0, 3, 6] {
                let r = server.evaluate(&d, &ServerConfiguration::new(cores, pstate, 1.0));
                assert!(r.instructions_per_second <= max * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn out_of_range_configurations_are_clamped() {
        let server = XeonServer::dell_r410();
        let report = server.evaluate(&demand(), &ServerConfiguration::new(100, 99, 7.0));
        assert!(report.seconds.is_finite() && report.seconds > 0.0);
        assert!(report.total_power_watts <= server.max_power_watts() + 1e-9);
    }
}
