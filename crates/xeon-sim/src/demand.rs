//! Application demand as seen by the server model.

use serde::{Deserialize, Serialize};

/// Analytical description of one quantum of application demand on the Xeon
/// server. Rates are per dynamic instruction so the same demand can be
/// evaluated under any configuration of cores, clock speed, and idle cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerDemand {
    /// Dynamic instructions in the quantum.
    pub instructions: f64,
    /// Fraction of the work that can execute in parallel.
    pub parallel_fraction: f64,
    /// Memory operations per instruction.
    pub memory_ops_per_instruction: f64,
    /// Last-level-cache miss rate of those memory operations (the Xeon's
    /// cache hierarchy is fixed, so this is a property of the workload).
    pub llc_miss_rate: f64,
    /// Base cycles per instruction with an ideal memory system.
    pub base_cpi: f64,
    /// Load imbalance factor ≥ 1.0 across threads.
    pub load_imbalance: f64,
    /// Application work units (heartbeats' worth of work) in the quantum.
    pub work_units: f64,
}

impl ServerDemand {
    /// Starts building a demand with representative defaults.
    pub fn builder() -> ServerDemandBuilder {
        ServerDemandBuilder::default()
    }

    /// A smaller quantum containing `fraction` of the instructions and work.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0.0, 1.0]`.
    pub fn scaled(&self, fraction: f64) -> ServerDemand {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        ServerDemand {
            instructions: self.instructions * fraction,
            work_units: self.work_units * fraction,
            ..self.clone()
        }
    }
}

/// Builder for [`ServerDemand`].
#[derive(Debug, Clone)]
pub struct ServerDemandBuilder {
    demand: ServerDemand,
}

impl Default for ServerDemandBuilder {
    fn default() -> Self {
        ServerDemandBuilder {
            demand: ServerDemand {
                instructions: 1.0e9,
                parallel_fraction: 0.9,
                memory_ops_per_instruction: 0.3,
                llc_miss_rate: 0.02,
                base_cpi: 0.8,
                load_imbalance: 1.0,
                work_units: 1.0,
            },
        }
    }
}

impl ServerDemandBuilder {
    /// Sets the dynamic instruction count.
    pub fn instructions(mut self, value: f64) -> Self {
        self.demand.instructions = value;
        self
    }

    /// Sets the parallel fraction.
    pub fn parallel_fraction(mut self, value: f64) -> Self {
        self.demand.parallel_fraction = value;
        self
    }

    /// Sets memory operations per instruction.
    pub fn memory_ops_per_instruction(mut self, value: f64) -> Self {
        self.demand.memory_ops_per_instruction = value;
        self
    }

    /// Sets the last-level-cache miss rate.
    pub fn llc_miss_rate(mut self, value: f64) -> Self {
        self.demand.llc_miss_rate = value;
        self
    }

    /// Sets the base CPI.
    pub fn base_cpi(mut self, value: f64) -> Self {
        self.demand.base_cpi = value;
        self
    }

    /// Sets the load imbalance factor.
    pub fn load_imbalance(mut self, value: f64) -> Self {
        self.demand.load_imbalance = value;
        self
    }

    /// Sets the work units completed by the quantum.
    pub fn work_units(mut self, value: f64) -> Self {
        self.demand.work_units = value;
        self
    }

    /// Finalises the demand, clamping out-of-range values to their domains.
    pub fn build(self) -> ServerDemand {
        let d = self.demand;
        ServerDemand {
            instructions: d.instructions.max(0.0),
            parallel_fraction: d.parallel_fraction.clamp(0.0, 1.0),
            memory_ops_per_instruction: d.memory_ops_per_instruction.max(0.0),
            llc_miss_rate: d.llc_miss_rate.clamp(0.0, 1.0),
            base_cpi: d.base_cpi.max(0.1),
            load_imbalance: d.load_imbalance.max(1.0),
            work_units: d.work_units.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_values() {
        let d = ServerDemand::builder()
            .parallel_fraction(2.0)
            .llc_miss_rate(-0.5)
            .load_imbalance(0.1)
            .base_cpi(0.0)
            .build();
        assert_eq!(d.parallel_fraction, 1.0);
        assert_eq!(d.llc_miss_rate, 0.0);
        assert_eq!(d.load_imbalance, 1.0);
        assert!(d.base_cpi > 0.0);
    }

    #[test]
    fn scaled_quantum_preserves_rates() {
        let d = ServerDemand::builder().instructions(1000.0).work_units(4.0).build();
        let quarter = d.scaled(0.25);
        assert_eq!(quarter.instructions, 250.0);
        assert_eq!(quarter.work_units, 1.0);
        assert_eq!(quarter.base_cpi, d.base_cpi);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn scaled_rejects_out_of_range() {
        let _ = ServerDemand::builder().build().scaled(1.5);
    }
}
