//! # Xeon server model: the "existing system" of the SEEC evaluation
//!
//! Section 5.2 of the paper evaluates SEEC on a Dell PowerEdge R410 with two
//! quad-core Intel Xeon E5530 processors running Linux 2.6.26: seven power
//! states between 1.6 GHz and 2.4 GHz controlled through `cpufrequtils`, a
//! WattsUp meter sampling average power over one-second intervals, and a
//! measured power envelope from roughly 90 W idle to 220 W at full load.
//!
//! This crate models exactly that observable surface:
//!
//! * [`PStateTable`] — the seven ACPI P-states of the E5530,
//! * [`XeonServer`] — an analytical performance/power model whose knobs are
//!   the three actions SEEC uses in the paper: the number of cores assigned
//!   to the application, the clock speed of those cores, and the fraction of
//!   non-idle cycles the application receives,
//! * [`PowerMeter`] — a WattsUp-style sampler that averages power over
//!   one-second windows,
//! * [`MachineMeter`] — machine-level power accounting across many
//!   applications sharing the server, with cap-violation tracking (the
//!   shared view a multi-application power arbiter is judged against).
//!
//! ```
//! use xeon_sim::{ServerConfiguration, ServerDemand, XeonServer};
//!
//! let server = XeonServer::dell_r410();
//! let demand = ServerDemand::builder().instructions(5.0e9).build();
//! let cfg = ServerConfiguration::new(4, 0, 1.0); // 4 cores, fastest clock, no forced idling
//! let report = server.evaluate(&demand, &cfg);
//! assert!(report.total_power_watts > server.idle_power_watts());
//! assert!(report.seconds > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod demand;
mod eval;
mod machine;
mod meter;
mod pstate;
mod server;

pub use demand::{ServerDemand, ServerDemandBuilder};
pub use eval::{DemandTerms, PreparedConfig, PreparedDemand};
pub use machine::MachineMeter;
pub use meter::{PowerMeter, PowerSample};
pub use pstate::PStateTable;
pub use server::{ServerConfiguration, ServerReport, XeonServer};
