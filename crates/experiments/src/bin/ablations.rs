//! Runs the design-choice ablations listed in DESIGN.md.

use experiments::ablation::Ablations;

fn main() {
    let ablations = Ablations::compute();
    println!("Ablations — adaptive NoC features, coherence protocols, decision placement\n");
    println!("{}", ablations.to_table());
    match serde_json::to_string_pretty(&ablations) {
        Ok(json) => {
            if let Err(err) = std::fs::write("ablations.json", json) {
                eprintln!("could not write ablations.json: {err}");
            } else {
                println!("raw data written to ablations.json");
            }
        }
        Err(err) => eprintln!("could not serialise ablations: {err}"),
    }
}
