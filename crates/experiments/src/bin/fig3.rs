//! Regenerates Figure 3: SEEC on an existing Linux/x86 system.
//!
//! By default this reproduces the historical figure bit-for-bit
//! (`fig3.json`). Pass `--leaky-pi` to *additionally* run the calibrated
//! (convex) goal-respecting protocol twice — classical integral vs. the
//! flag-gated leaky integral (`CONVEX_PROTOCOL_LEAK`) — print the fidelity
//! delta, and write the comparison to `fig3_leaky.json`. Pass
//! `--belief-aging` to sweep the flag-gated belief-aging halflives
//! (`BELIEF_AGING_HALFLIVES`) through the same calibrated protocol — the
//! ROADMAP's phase-stale-beliefs probe — and write the sweep to
//! `fig3_belief_aging.json`. The default outputs are unchanged either way.

use experiments::fig3::{
    ConvexTuning, BELIEF_AGING_HALFLIVES, CONVEX_PROTOCOL_LEAK, QUANTA_PER_RUN,
};
use experiments::Figure3;
use serde::Serialize;
use xeon_sim::XeonServer;

/// The leaky-integral comparison on the calibrated server, as raw data.
#[derive(Serialize)]
struct LeakyComparison {
    leak: f64,
    classical_mean_seec_vs_dynamic_oracle: f64,
    leaky_mean_seec_vs_dynamic_oracle: f64,
    classical: Figure3,
    leaky: Figure3,
}

/// One halflife's arm of the belief-aging sweep.
#[derive(Serialize)]
struct BeliefAgingArm {
    halflife_periods: f64,
    mean_seec_vs_dynamic_oracle: f64,
    figure: Figure3,
}

/// The belief-aging sweep on the calibrated server, as raw data.
#[derive(Serialize)]
struct BeliefAgingSweep {
    classical_mean_seec_vs_dynamic_oracle: f64,
    classical: Figure3,
    arms: Vec<BeliefAgingArm>,
}

fn mean_seec_ratio(figure: &Figure3) -> f64 {
    let sum: f64 = figure.rows.iter().map(|row| row.normalized()[2]).sum();
    sum / figure.rows.len() as f64
}

fn write_json<T: Serialize>(value: &T, path: &str) {
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(err) = std::fs::write(path, json) {
                eprintln!("could not write {path}: {err}");
            } else {
                println!("raw data written to {path}");
            }
        }
        Err(err) => eprintln!("could not serialise {path}: {err}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let leaky = args.iter().any(|arg| arg == "--leaky-pi");
    let belief_aging = args.iter().any(|arg| arg == "--belief-aging");

    let figure = Figure3::compute();
    println!("Figure 3 — SEEC on the Xeon E5530 server, perf/W normalised to the dynamic oracle\n");
    println!("{}", figure.to_table());
    match serde_json::to_string_pretty(&figure) {
        Ok(json) => {
            if let Err(err) = std::fs::write("fig3.json", json) {
                eprintln!("could not write fig3.json: {err}");
            } else {
                println!("raw data written to fig3.json");
            }
        }
        Err(err) => eprintln!("could not serialise figure 3: {err}"),
    }

    // Both studies compare against the same calibrated classical baseline;
    // compute it once when either flag asks for it.
    let server = XeonServer::dell_r410_calibrated();
    let classical = (leaky || belief_aging)
        .then(|| Figure3::compute_on(&server, 2012, QUANTA_PER_RUN));

    if leaky {
        let classical = classical.clone().expect("computed when --leaky-pi is set");
        let leaky =
            Figure3::compute_on_with_leak(&server, 2012, QUANTA_PER_RUN, CONVEX_PROTOCOL_LEAK);
        let comparison = LeakyComparison {
            leak: CONVEX_PROTOCOL_LEAK,
            classical_mean_seec_vs_dynamic_oracle: mean_seec_ratio(&classical),
            leaky_mean_seec_vs_dynamic_oracle: mean_seec_ratio(&leaky),
            classical,
            leaky,
        };
        println!(
            "\nLeaky-PI experiment on the calibrated (convex) protocol \
             (leak {:.2}):\n  classical integral: SEEC at {:.3} of the dynamic oracle\n  \
             leaky integral:     SEEC at {:.3} of the dynamic oracle",
            comparison.leak,
            comparison.classical_mean_seec_vs_dynamic_oracle,
            comparison.leaky_mean_seec_vs_dynamic_oracle,
        );
        write_json(&comparison, "fig3_leaky.json");
    }

    if belief_aging {
        let classical = classical.expect("computed when --belief-aging is set");
        let classical_mean = mean_seec_ratio(&classical);
        println!(
            "\nBelief-aging experiment on the calibrated (convex) protocol:\n  \
             no aging (halflife ∞): SEEC at {classical_mean:.3} of the dynamic oracle"
        );
        let arms: Vec<BeliefAgingArm> = BELIEF_AGING_HALFLIVES
            .iter()
            .map(|&halflife_periods| {
                let figure = Figure3::compute_on_tuned(
                    &server,
                    2012,
                    QUANTA_PER_RUN,
                    ConvexTuning {
                        belief_halflife: halflife_periods,
                        ..ConvexTuning::default()
                    },
                );
                let mean = mean_seec_ratio(&figure);
                println!(
                    "  halflife {halflife_periods:>4.0} periods:   SEEC at {mean:.3} \
                     of the dynamic oracle"
                );
                BeliefAgingArm {
                    halflife_periods,
                    mean_seec_vs_dynamic_oracle: mean,
                    figure,
                }
            })
            .collect();
        let sweep = BeliefAgingSweep {
            classical_mean_seec_vs_dynamic_oracle: classical_mean,
            classical,
            arms,
        };
        write_json(&sweep, "fig3_belief_aging.json");
    }
}
