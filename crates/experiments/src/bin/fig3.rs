//! Regenerates Figure 3: SEEC on an existing Linux/x86 system.
//!
//! By default this reproduces the historical figure bit-for-bit
//! (`fig3.json`). Pass `--leaky-pi` to *additionally* run the calibrated
//! (convex) goal-respecting protocol twice — classical integral vs. the
//! flag-gated leaky integral (`CONVEX_PROTOCOL_LEAK`) — print the fidelity
//! delta, and write the comparison to `fig3_leaky.json`. The default
//! outputs are unchanged either way.

use experiments::fig3::{CONVEX_PROTOCOL_LEAK, QUANTA_PER_RUN};
use experiments::Figure3;
use serde::Serialize;
use xeon_sim::XeonServer;

/// The leaky-integral comparison on the calibrated server, as raw data.
#[derive(Serialize)]
struct LeakyComparison {
    leak: f64,
    classical_mean_seec_vs_dynamic_oracle: f64,
    leaky_mean_seec_vs_dynamic_oracle: f64,
    classical: Figure3,
    leaky: Figure3,
}

fn mean_seec_ratio(figure: &Figure3) -> f64 {
    let sum: f64 = figure.rows.iter().map(|row| row.normalized()[2]).sum();
    sum / figure.rows.len() as f64
}

fn main() {
    let leaky = std::env::args().any(|arg| arg == "--leaky-pi");

    let figure = Figure3::compute();
    println!("Figure 3 — SEEC on the Xeon E5530 server, perf/W normalised to the dynamic oracle\n");
    println!("{}", figure.to_table());
    match serde_json::to_string_pretty(&figure) {
        Ok(json) => {
            if let Err(err) = std::fs::write("fig3.json", json) {
                eprintln!("could not write fig3.json: {err}");
            } else {
                println!("raw data written to fig3.json");
            }
        }
        Err(err) => eprintln!("could not serialise figure 3: {err}"),
    }

    if leaky {
        let server = XeonServer::dell_r410_calibrated();
        let classical = Figure3::compute_on(&server, 2012, QUANTA_PER_RUN);
        let leaky =
            Figure3::compute_on_with_leak(&server, 2012, QUANTA_PER_RUN, CONVEX_PROTOCOL_LEAK);
        let comparison = LeakyComparison {
            leak: CONVEX_PROTOCOL_LEAK,
            classical_mean_seec_vs_dynamic_oracle: mean_seec_ratio(&classical),
            leaky_mean_seec_vs_dynamic_oracle: mean_seec_ratio(&leaky),
            classical,
            leaky,
        };
        println!(
            "\nLeaky-PI experiment on the calibrated (convex) protocol \
             (leak {:.2}):\n  classical integral: SEEC at {:.3} of the dynamic oracle\n  \
             leaky integral:     SEEC at {:.3} of the dynamic oracle",
            comparison.leak,
            comparison.classical_mean_seec_vs_dynamic_oracle,
            comparison.leaky_mean_seec_vs_dynamic_oracle,
        );
        match serde_json::to_string_pretty(&comparison) {
            Ok(json) => {
                if let Err(err) = std::fs::write("fig3_leaky.json", json) {
                    eprintln!("could not write fig3_leaky.json: {err}");
                } else {
                    println!("comparison written to fig3_leaky.json");
                }
            }
            Err(err) => eprintln!("could not serialise the leaky comparison: {err}"),
        }
    }
}
