//! Regenerates Figure 3: SEEC on an existing Linux/x86 system.

use experiments::Figure3;

fn main() {
    let figure = Figure3::compute();
    println!("Figure 3 — SEEC on the Xeon E5530 server, perf/W normalised to the dynamic oracle\n");
    println!("{}", figure.to_table());
    match serde_json::to_string_pretty(&figure) {
        Ok(json) => {
            if let Err(err) = std::fs::write("fig3.json", json) {
                eprintln!("could not write fig3.json: {err}");
            } else {
                println!("raw data written to fig3.json");
            }
        }
        Err(err) => eprintln!("could not serialise figure 3: {err}"),
    }
}
