//! Regenerates Figure 4: anticipated SEEC results on the Angstrom processor.

use experiments::{Figure3, Figure4};

fn main() {
    // The Figure-4 prediction reuses the SEEC-vs-static-oracle multiplier
    // measured on the existing system (Figure 3), exactly as the paper does.
    let fig3 = Figure3::compute();
    let multiplier = fig3.seec_vs_static_oracle();
    let figure = Figure4::compute_with_multiplier(multiplier);
    println!("Figure 4 — anticipated SEEC results on the 256-core Angstrom processor\n");
    println!("{}", figure.to_table());
    match serde_json::to_string_pretty(&figure) {
        Ok(json) => {
            if let Err(err) = std::fs::write("fig4.json", json) {
                eprintln!("could not write fig4.json: {err}");
            } else {
                println!("raw data written to fig4.json");
            }
        }
        Err(err) => eprintln!("could not serialise figure 4: {err}"),
    }
}
