//! Regenerates Figure 2: efficiency of closed adaptive systems.

use experiments::Figure2;

fn main() {
    let figure = Figure2::compute();
    println!("Figure 2 — barnes on a 64-core multicore, cores x cache sweep\n");
    println!("{}", figure.to_table());
    println!(
        "Pareto-optimal configurations: {} of {}",
        figure.frontier.len(),
        figure.points.len()
    );
    println!(
        "Closed-system (cache-only or core-only) choices off the Pareto frontier: {}",
        figure.suboptimal_closed_choices().len()
    );
    match serde_json::to_string_pretty(&figure) {
        Ok(json) => {
            if let Err(err) = std::fs::write("fig2.json", json) {
                eprintln!("could not write fig2.json: {err}");
            } else {
                println!("\nraw data written to fig2.json");
            }
        }
        Err(err) => eprintln!("could not serialise figure 2: {err}"),
    }
}
