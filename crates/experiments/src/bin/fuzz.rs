//! Coverage-guided scenario fuzzer for the coordination stack.
//!
//! Seeds the corpus with the hand-written scenario vocabulary, mutates
//! scenarios under a fixed per-run seed, executes every candidate through
//! the instrumented fig5 pipelines ([`experiments::fuzz::fuzz_probe`]),
//! keeps mutants whose behavior signature is new, and shrinks every
//! incident to a minimal reproducer. Fully deterministic: the same
//! `--seed` and `--iterations` produce byte-identical corpus and report.
//!
//! ```text
//! cargo run --release --bin fuzz -- --seed 2012 --iterations 256
//! ```
//!
//! Writes `fuzz_corpus.json` (the coverage corpus) and `fuzz_report.json`
//! (executions, per-strategy stats, shrunk incidents) to the working
//! directory; override with `--corpus PATH` / `--report PATH`. When the
//! corpus file already exists it is reloaded first — entry by entry, so a
//! partially-unreadable corpus reports exactly how many entries were
//! salvaged vs. rejected instead of degrading silently — and its scenarios
//! join the seed pool, so successive runs (and the CI corpus cache)
//! accumulate coverage instead of rediscovering it. Pass `--obs PATH` to
//! also write an [`obs::ObsReport`]: execution and corpus counters plus a
//! structured event stream (corpus loads, incidents).

use std::sync::Arc;

use obs::{Counter, Event, EventKind, Recorder};
use scenario_fuzz::{fuzz, FuzzConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|arg| arg == flag)
        .and_then(|index| args.get(index + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = flag_value(&args, "--seed")
        .map(|value| value.parse().expect("--seed takes an integer"))
        .unwrap_or(2012);
    let iterations: u64 = flag_value(&args, "--iterations")
        .map(|value| value.parse().expect("--iterations takes an integer"))
        .unwrap_or(64);
    let corpus_path = flag_value(&args, "--corpus").unwrap_or_else(|| "fuzz_corpus.json".into());
    let report_path = flag_value(&args, "--report").unwrap_or_else(|| "fuzz_report.json".into());
    let obs_path = flag_value(&args, "--obs");
    let recorder = obs_path.as_ref().map(|_| Arc::new(Recorder::in_memory()));

    let config = FuzzConfig {
        seed,
        iterations,
        ..FuzzConfig::default()
    };
    let mut seeds = workloads::scenario_mixes(seed);
    seeds.extend(workloads::vocabulary_mixes(seed));

    // Re-seed from a previous run's corpus when the file already exists
    // (the CI corpus cache hands successive runs their accumulated
    // coverage). Still deterministic: same seed + same corpus file, same
    // output.
    if let Ok(text) = std::fs::read_to_string(&corpus_path) {
        match scenario_fuzz::Corpus::from_json_lossy(&text) {
            Ok((previous, loaded, rejected)) => {
                println!(
                    "reloaded {loaded} corpus entries from {corpus_path} ({rejected} rejected)"
                );
                if rejected > 0 {
                    eprintln!(
                        "warning: {rejected} corpus entries in {corpus_path} were unreadable \
                         and dropped; coverage from those signatures must be rediscovered"
                    );
                }
                if let Some(recorder) = &recorder {
                    recorder.add(Counter::CorpusLoaded, loaded as u64);
                    recorder.add(Counter::CorpusRejected, rejected as u64);
                    recorder.emit(Event {
                        quantum: 0,
                        kind: EventKind::CorpusLoad {
                            loaded: loaded as u64,
                            rejected: rejected as u64,
                        },
                    });
                }
                seeds.extend(previous.entries.into_iter().map(|entry| entry.scenario));
            }
            Err(err) => eprintln!("ignoring unreadable corpus {corpus_path}: {err}"),
        }
    }

    println!(
        "scenario fuzz: seed {seed}, {iterations} iterations, {} seed scenarios",
        seeds.len()
    );
    let mut executor = experiments::fuzz::probe_executor_obs(seed, recorder.clone());
    let (corpus, report) = fuzz(&config, &seeds, &mut executor);

    println!(
        "executions {}  corpus {}  signatures {}  incidents {}",
        report.executions,
        report.corpus_size,
        report.signatures.len(),
        report.incidents.len()
    );
    for stat in &report.strategies {
        println!(
            "  strategy {:<13} attempts {:>5}  admitted {:>4}",
            stat.name, stat.attempts, stat.admitted
        );
    }
    for incident in &report.incidents {
        println!(
            "incident [{}]  found {} apps / {} quanta  shrunk to {} apps / {} quanta ({} shrink executions)",
            incident.classes.join(" + "),
            incident.found_apps,
            incident.found_quanta,
            incident.scenario.apps.len(),
            incident.scenario.quanta,
            incident.shrink_executions
        );
    }

    match std::fs::write(&corpus_path, corpus.to_json()) {
        Ok(()) => println!("corpus written to {corpus_path}"),
        Err(err) => eprintln!("could not write {corpus_path}: {err}"),
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match std::fs::write(&report_path, json) {
            Ok(()) => println!("report written to {report_path}"),
            Err(err) => eprintln!("could not write {report_path}: {err}"),
        },
        Err(err) => eprintln!("could not serialise {report_path}: {err}"),
    }

    if let (Some(obs_path), Some(recorder)) = (obs_path, recorder) {
        for incident in &report.incidents {
            recorder.emit(Event {
                quantum: 0,
                kind: EventKind::Incident {
                    classes: incident.classes.join(" + "),
                },
            });
        }
        let obs_report = recorder.snapshot().to_report();
        match serde_json::to_string_pretty(&obs_report) {
            Ok(json) => match std::fs::write(&obs_path, json) {
                Ok(()) => println!("telemetry written to {obs_path}"),
                Err(err) => eprintln!("could not write {obs_path}: {err}"),
            },
            Err(err) => eprintln!("could not serialise {obs_path}: {err}"),
        }
    }
}
