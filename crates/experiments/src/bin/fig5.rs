//! Regenerates Figure 5: multi-application coordination under a power budget.
//!
//! By default this reproduces the original three-mix figure bit-for-bit
//! (`fig5.json`). Pass `--extended` to *additionally* run the extended
//! scenario family — the 100-app arrival storm and the 1200-app
//! stepped-budget mix, exercising runtime registration/retirement, mid-run
//! budget steps, and the sharded coordinator — and write it to
//! `fig5_extended.json`. Pass `--hierarchy` to run the same rack-tagged
//! extended mixes through the two-level (rack → datacenter) coordination
//! stack — uncoordinated vs. one flat coordinator vs.
//! `DatacenterArbiter` over per-rack `RackCoordinator`s — and write
//! `fig5_hierarchy.json`. Pass `--chaos` to run the fault-injected chaos
//! mixes through all five robustness regimes (uncoordinated, naive and
//! degraded coordination, each behind audit-only or clamping rack
//! enforcement) and write `fig5_chaos.json`; `--enforce` writes the
//! breaker-focused projection of the same runs to `fig5_enforce.json`.
//! The default output is unchanged either way.

use experiments::{Figure5, Figure5Hierarchy, FigureChaos, FigureEnforce};
use serde::Serialize;

fn write_figure<T: Serialize>(figure: &T, path: &str) {
    match serde_json::to_string_pretty(figure) {
        Ok(json) => {
            if let Err(err) = std::fs::write(path, json) {
                eprintln!("could not write {path}: {err}");
            } else {
                println!("raw data written to {path}");
            }
        }
        Err(err) => eprintln!("could not serialise {path}: {err}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let extended = args.iter().any(|arg| arg == "--extended");
    let hierarchy = args.iter().any(|arg| arg == "--hierarchy");
    let chaos = args.iter().any(|arg| arg == "--chaos");
    let enforce = args.iter().any(|arg| arg == "--enforce");

    let figure = Figure5::compute();
    println!(
        "Figure 5 — multi-application SEEC on the calibrated R410 under a machine power budget\n"
    );
    println!("{}", figure.to_table());
    write_figure(&figure, "fig5.json");

    if extended {
        let figure = Figure5::compute_extended();
        println!(
            "\nExtended scenario family — runtime lifecycle, budget steps, sharded coordinator\n"
        );
        println!("{}", figure.to_table());
        write_figure(&figure, "fig5_extended.json");
    }

    if hierarchy {
        let figure = Figure5Hierarchy::compute();
        println!(
            "\nHierarchical coordination — the rack-tagged extended mixes, budget flowing \
             datacenter → rack → app\n"
        );
        println!("{}", figure.to_table());
        write_figure(&figure, "fig5_hierarchy.json");
    }

    if chaos || enforce {
        let figure = FigureChaos::compute();
        if chaos {
            println!(
                "\nChaos — fault-injected mixes under degradation and rack enforcement\n"
            );
            println!("{}", figure.to_table());
            write_figure(&figure, "fig5_chaos.json");
        }
        if enforce {
            let projection = FigureEnforce::from_chaos(&figure);
            println!(
                "\nEnforcement — what the rack breaker closes, and what it costs\n"
            );
            println!("{}", projection.to_table());
            write_figure(&projection, "fig5_enforce.json");
        }
    }
}
