//! Regenerates Figure 5: multi-application coordination under a power budget.

use experiments::Figure5;

fn main() {
    let figure = Figure5::compute();
    println!(
        "Figure 5 — multi-application SEEC on the calibrated R410 under a machine power budget\n"
    );
    println!("{}", figure.to_table());
    match serde_json::to_string_pretty(&figure) {
        Ok(json) => {
            if let Err(err) = std::fs::write("fig5.json", json) {
                eprintln!("could not write fig5.json: {err}");
            } else {
                println!("raw data written to fig5.json");
            }
        }
        Err(err) => eprintln!("could not serialise figure 5: {err}"),
    }
}
