//! Regenerates Figure 5: multi-application coordination under a power budget.
//!
//! By default this reproduces the original three-mix figure bit-for-bit
//! (`fig5.json`). Pass `--extended` to *additionally* run the extended
//! scenario family — the 100-app arrival storm and the 1200-app
//! stepped-budget mix, exercising runtime registration/retirement, mid-run
//! budget steps, and the sharded coordinator — and write it to
//! `fig5_extended.json`. Pass `--hierarchy` to run the same rack-tagged
//! extended mixes through the two-level (rack → datacenter) coordination
//! stack — uncoordinated vs. one flat coordinator vs.
//! `DatacenterArbiter` over per-rack `RackCoordinator`s — and write
//! `fig5_hierarchy.json`. Pass `--chaos` to run the fault-injected chaos
//! mixes through all five robustness regimes (uncoordinated, naive and
//! degraded coordination, each behind audit-only or clamping rack
//! enforcement) and write `fig5_chaos.json`; `--enforce` writes the
//! breaker-focused projection of the same runs to `fig5_enforce.json`.
//! The default output is unchanged either way.
//!
//! Pass `--fleet N` to additionally run the fleet-scaling harness
//! ([`experiments::fleet`]): N synthetic applications (up to 1,000,000)
//! driven through the coordinator's incremental arbitration engine with
//! churn, measuring µs/quantum for the full fold, the incremental fold,
//! and the wake-scheduled engine (whose rounds cost O(awake) instead of
//! O(fleet)), checking that the skipped/re-arbitrated counters reconcile
//! on both incremental arms (the scheduled arm adds `apps_slept` to the
//! ledger), and differentially verifying that tolerance 0 reproduces the
//! full fold bit-for-bit and that sleep horizon 0 reproduces the plain
//! incremental engine bit-for-bit. The report merges into
//! `BENCH_fig5.json` under the `fleet_scaling` key (all other keys and
//! rows at other fleet sizes are preserved — including rows written by
//! older builds without the scheduled-arm fields). The figure JSONs are
//! unchanged by `--fleet`.
//!
//! Pass `--obs PATH` to also write an [`obs::ObsReport`] covering every
//! figure computed in the run: phase counters, stage latency histograms,
//! executor dispatch timing, and the structured event stream, merged in
//! cell-index order so the report is deterministic up to wall-clock
//! timings. Telemetry is passive — the figure JSONs are byte-identical
//! with and without `--obs` (the determinism tests pin this).

use std::sync::Arc;

use experiments::{Figure5, Figure5Hierarchy, FigureChaos, FigureEnforce};
use obs::{ObsSnapshot, Recorder, Stage};
use serde::Serialize;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|arg| arg == flag)
        .and_then(|index| args.get(index + 1))
        .cloned()
}

fn write_figure<T: Serialize>(figure: &T, path: &str) {
    match serde_json::to_string_pretty(figure) {
        Ok(json) => {
            if let Err(err) = std::fs::write(path, json) {
                eprintln!("could not write {path}: {err}");
            } else {
                println!("raw data written to {path}");
            }
        }
        Err(err) => eprintln!("could not serialise {path}: {err}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let extended = args.iter().any(|arg| arg == "--extended");
    let hierarchy = args.iter().any(|arg| arg == "--hierarchy");
    let chaos = args.iter().any(|arg| arg == "--chaos");
    let enforce = args.iter().any(|arg| arg == "--enforce");
    let obs_path = flag_value(&args, "--obs");
    let fleet = flag_value(&args, "--fleet").map(|value| {
        value
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("--fleet takes a positive app count, got {value:?}"))
    });

    let mut merged = obs_path.as_ref().map(|_| ObsSnapshot::empty());

    // Executor dispatch timing rides on its own recorder attached to the
    // shared pool for the duration of the run; its histogram merges into
    // the report last so the deterministic sections stay in figure order.
    let dispatch = if merged.is_some() {
        let recorder = Arc::new(Recorder::in_memory());
        let timer = Arc::clone(&recorder);
        exec::global_pool().set_dispatch_observer(Some(Arc::new(move |ns| {
            timer.time(Stage::Dispatch, ns);
        })));
        Some(recorder)
    } else {
        None
    };

    let figure = match merged.as_mut() {
        Some(merged) => {
            let (figure, snapshot) = Figure5::compute_obs();
            merged.merge(&snapshot);
            figure
        }
        None => Figure5::compute(),
    };
    println!(
        "Figure 5 — multi-application SEEC on the calibrated R410 under a machine power budget\n"
    );
    println!("{}", figure.to_table());
    write_figure(&figure, "fig5.json");

    if extended {
        let figure = match merged.as_mut() {
            Some(merged) => {
                let (figure, snapshot) = Figure5::compute_extended_obs();
                merged.merge(&snapshot);
                figure
            }
            None => Figure5::compute_extended(),
        };
        println!(
            "\nExtended scenario family — runtime lifecycle, budget steps, sharded coordinator\n"
        );
        println!("{}", figure.to_table());
        write_figure(&figure, "fig5_extended.json");
    }

    if hierarchy {
        let figure = match merged.as_mut() {
            Some(merged) => {
                let (figure, snapshot) = Figure5Hierarchy::compute_obs();
                merged.merge(&snapshot);
                figure
            }
            None => Figure5Hierarchy::compute(),
        };
        println!(
            "\nHierarchical coordination — the rack-tagged extended mixes, budget flowing \
             datacenter → rack → app\n"
        );
        println!("{}", figure.to_table());
        write_figure(&figure, "fig5_hierarchy.json");
    }

    if chaos || enforce {
        let figure = match merged.as_mut() {
            Some(merged) => {
                let (figure, snapshot) = FigureChaos::compute_obs();
                merged.merge(&snapshot);
                figure
            }
            None => FigureChaos::compute(),
        };
        if chaos {
            println!(
                "\nChaos — fault-injected mixes under degradation and rack enforcement\n"
            );
            println!("{}", figure.to_table());
            write_figure(&figure, "fig5_chaos.json");
        }
        if enforce {
            let projection = FigureEnforce::from_chaos(&figure);
            println!(
                "\nEnforcement — what the rack breaker closes, and what it costs\n"
            );
            println!("{}", projection.to_table());
            write_figure(&projection, "fig5_enforce.json");
        }
    }

    if let Some(fleet) = fleet {
        println!(
            "\nFleet scaling — incremental arbitration over {fleet} synthetic applications\n"
        );
        let report = experiments::FleetScalingReport::measure(fleet);
        println!("{}", report.to_line());
        assert!(
            report.counters_reconcile,
            "skipped + re-arbitrated must cover every active app-quantum"
        );
        assert!(
            report.tolerance_zero_identical,
            "tolerance 0 must reproduce the full fold bit-for-bit"
        );
        assert!(
            report.scheduled_counters_reconcile,
            "slept + skipped + re-arbitrated must cover every active app-quantum"
        );
        assert!(
            report.horizon_zero_identical,
            "sleep horizon 0 must reproduce the plain incremental engine bit-for-bit"
        );
        match experiments::fleet::merge_fleet_scaling("BENCH_fig5.json", &[report]) {
            Ok(()) => println!("fleet row merged into BENCH_fig5.json"),
            Err(err) => eprintln!("could not update BENCH_fig5.json: {err}"),
        }
    }

    if let (Some(obs_path), Some(mut merged)) = (obs_path, merged) {
        if let Some(dispatch) = dispatch {
            exec::global_pool().set_dispatch_observer(None);
            merged.merge(&dispatch.snapshot());
        }
        write_figure(&merged.to_report(), &obs_path);
    }
}
