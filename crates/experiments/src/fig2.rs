//! Figure 2: the efficiency of closed adaptive systems.
//!
//! `barnes` runs on a 64-core Graphite-style multicore in every combination
//! of core allocation (1–64, powers of two) and per-core L2 capacity
//! (16–256 KB, powers of two). The figure plots total energy against
//! instructions per second, marks the Pareto-optimal frontier, and shows
//! that the configurations a *closed* cache-only or core-only adaptive
//! system would choose lie off that frontier (DAC 2012 §2).

use angstrom_sim::chip::AngstromChip;
use angstrom_sim::config::ChipConfig;
use serde::{Deserialize, Serialize};
use workloads::SplashBenchmark;

use crate::pareto::{pareto_frontier, EnergyPerformancePoint};
use crate::sweep::{sweep_benchmark, SweepPoint};

/// The Figure-2 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2 {
    /// Every swept configuration.
    pub points: Vec<SweepPoint>,
    /// Indices (into `points`) of the Pareto-optimal configurations.
    pub frontier: Vec<usize>,
    /// Indices a closed system adapting only the cache would consider optimal
    /// (cores pinned at the chip maximum).
    pub cache_only: Vec<usize>,
    /// Indices a closed system adapting only the core allocation would
    /// consider optimal (cache pinned at its maximum).
    pub core_only: Vec<usize>,
}

impl Figure2 {
    /// Runs the experiment with the paper's parameters (barnes, 64 cores,
    /// 16–256 KB caches).
    pub fn compute() -> Self {
        let chip = AngstromChip::new(ChipConfig::graphite_64());
        Figure2::compute_on(&chip, SplashBenchmark::Barnes, 2012)
    }

    /// Runs the experiment on an arbitrary chip/benchmark (used by tests and
    /// ablations).
    pub fn compute_on(chip: &AngstromChip, benchmark: SplashBenchmark, seed: u64) -> Self {
        let points = sweep_benchmark(chip, benchmark, seed);
        let plane: Vec<EnergyPerformancePoint> = points
            .iter()
            .map(|p| EnergyPerformancePoint::new(p.energy_joules, p.instructions_per_second))
            .collect();
        let frontier = pareto_frontier(&plane);

        let max_cores = points.iter().map(|p| p.cores).max().unwrap_or(1);
        let max_cache = points.iter().map(|p| p.cache_kb).fold(0.0, f64::max);
        let cache_only = closed_system_choices(&points, &plane, |p| p.cores == max_cores);
        let core_only = closed_system_choices(&points, &plane, |p| p.cache_kb == max_cache);

        Figure2 {
            points,
            frontier,
            cache_only,
            core_only,
        }
    }

    /// Indices of closed-system choices (cache-only or core-only) that are
    /// *not* on the global Pareto frontier — the sub-optimality the paper
    /// highlights.
    pub fn suboptimal_closed_choices(&self) -> Vec<usize> {
        self.cache_only
            .iter()
            .chain(self.core_only.iter())
            .copied()
            .filter(|i| !self.frontier.contains(i))
            .collect()
    }

    /// Renders the figure as an aligned text table (one row per point).
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "cores  cache_kb  op  energy_j      ips           pareto  cache_only  core_only\n",
        );
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "{:5}  {:8.0}  {:2}  {:12.4e}  {:12.4e}  {:6}  {:10}  {:9}\n",
                p.cores,
                p.cache_kb,
                p.operating_point,
                p.energy_joules,
                p.instructions_per_second,
                if self.frontier.contains(&i) { "yes" } else { "" },
                if self.cache_only.contains(&i) { "yes" } else { "" },
                if self.core_only.contains(&i) { "yes" } else { "" },
            ));
        }
        out
    }
}

/// The configurations a closed system restricted to `subset` would consider
/// optimal: the Pareto frontier computed *within* that subset only.
fn closed_system_choices<F: Fn(&SweepPoint) -> bool>(
    points: &[SweepPoint],
    plane: &[EnergyPerformancePoint],
    subset: F,
) -> Vec<usize> {
    let indices: Vec<usize> = (0..points.len()).filter(|&i| subset(&points[i])).collect();
    let restricted: Vec<EnergyPerformancePoint> = indices.iter().map(|&i| plane[i]).collect();
    pareto_frontier(&restricted)
        .into_iter()
        .map(|local| indices[local])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_covers_the_full_sweep() {
        let fig = Figure2::compute();
        assert_eq!(fig.points.len(), 7 * 5);
        assert!(!fig.frontier.is_empty());
        assert!(!fig.cache_only.is_empty());
        assert!(!fig.core_only.is_empty());
    }

    #[test]
    fn closed_systems_pick_suboptimal_configurations() {
        let fig = Figure2::compute();
        assert!(
            !fig.suboptimal_closed_choices().is_empty(),
            "the paper's point: closed adaptive systems land off the Pareto frontier"
        );
    }

    #[test]
    fn frontier_points_are_not_dominated() {
        let fig = Figure2::compute();
        for &i in &fig.frontier {
            for (j, other) in fig.points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dominated = other.energy_joules <= fig.points[i].energy_joules
                    && other.instructions_per_second >= fig.points[i].instructions_per_second
                    && (other.energy_joules < fig.points[i].energy_joules
                        || other.instructions_per_second > fig.points[i].instructions_per_second);
                assert!(!dominated, "frontier point {i} is dominated by {j}");
            }
        }
    }

    #[test]
    fn table_lists_every_point() {
        let fig = Figure2::compute();
        let table = fig.to_table();
        assert_eq!(table.lines().count(), fig.points.len() + 1);
        assert!(table.contains("pareto"));
    }
}
