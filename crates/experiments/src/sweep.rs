//! Exhaustive configuration sweeps on the Angstrom chip model.
//!
//! The paper's §5.3 methodology runs each benchmark in every possible
//! configuration (cache size × core count × voltage/frequency) and derives
//! the non-adaptive baseline and oracles from the sweep. [`sweep_benchmark`]
//! performs that enumeration.

use angstrom_sim::chip::{AngstromChip, ChipConfiguration};
use serde::{Deserialize, Serialize};
use workloads::{SplashBenchmark, Workload};

use crate::driver::to_chip_demand;

/// One point of a configuration sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Benchmark the point belongs to.
    pub benchmark: SplashBenchmark,
    /// Cores allocated.
    pub cores: usize,
    /// Cache capacity per core, in kilobytes.
    pub cache_kb: f64,
    /// Operating-point index (into the chip's table).
    pub operating_point: usize,
    /// Run time of the whole benchmark, in seconds.
    pub seconds: f64,
    /// Heart rate (work units per second).
    pub heart_rate: f64,
    /// Instruction throughput, in instructions per second.
    pub instructions_per_second: f64,
    /// Total energy, in joules.
    pub energy_joules: f64,
    /// Average power, in watts.
    pub average_power_watts: f64,
}

impl SweepPoint {
    /// The paper's capped efficiency metric: `min(achieved, target) / power`.
    pub fn performance_per_watt(&self, target_heart_rate: f64) -> f64 {
        if self.average_power_watts <= 0.0 {
            return 0.0;
        }
        self.heart_rate.min(target_heart_rate) / self.average_power_watts
    }

    /// Uncapped energy efficiency (work per joule); used by Figure 2 where no
    /// target is involved.
    pub fn efficiency(&self) -> f64 {
        if self.energy_joules > 0.0 {
            self.heart_rate * self.seconds / self.energy_joules
        } else {
            0.0
        }
    }
}

/// Runs `benchmark` (as a single whole-run quantum) in every configuration
/// the chip exposes and returns one [`SweepPoint`] per configuration.
pub fn sweep_benchmark(chip: &AngstromChip, benchmark: SplashBenchmark, seed: u64) -> Vec<SweepPoint> {
    let workload = Workload::new(benchmark, seed);
    let demand = to_chip_demand(&workload.average_quantum());
    let config = chip.config();
    let mut out = Vec::new();
    for &cores in &config.core_allocation_options {
        for &cache_kb in &config.cache_capacity_options_kb {
            for op in 0..config.operating_points.len() {
                let chip_cfg = ChipConfiguration {
                    cores,
                    cache_per_core_kb: cache_kb,
                    operating_point_index: op,
                    coherence: config.coherence,
                    noc_features: None,
                    decision_placement: config.decision_placement,
                };
                let report = chip.evaluate(&demand, &chip_cfg);
                out.push(SweepPoint {
                    benchmark,
                    cores,
                    cache_kb,
                    operating_point: op,
                    seconds: report.seconds,
                    heart_rate: report.work_units / report.seconds,
                    instructions_per_second: report.instructions_per_second,
                    energy_joules: report.energy_joules,
                    average_power_watts: report.average_power_watts,
                });
            }
        }
    }
    out
}

/// The highest heart rate achieved anywhere in a sweep (used to set the
/// "half of maximum" performance targets).
pub fn max_heart_rate(points: &[SweepPoint]) -> f64 {
    points.iter().map(|p| p.heart_rate).fold(0.0, f64::max)
}

/// The sweep point with the best capped performance per watt.
pub fn best_point(points: &[SweepPoint], target_heart_rate: f64) -> Option<&SweepPoint> {
    points.iter().max_by(|a, b| {
        a.performance_per_watt(target_heart_rate)
            .partial_cmp(&b.performance_per_watt(target_heart_rate))
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use angstrom_sim::config::ChipConfig;

    #[test]
    fn sweep_covers_the_full_configuration_space() {
        let chip = AngstromChip::new(ChipConfig::graphite_64());
        let points = sweep_benchmark(&chip, SplashBenchmark::Barnes, 1);
        // 7 core options × 5 cache options × 1 operating point.
        assert_eq!(points.len(), 7 * 5);
        assert!(points.iter().all(|p| p.seconds > 0.0 && p.energy_joules > 0.0));
    }

    #[test]
    fn angstrom_sweep_matches_the_papers_space() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let points = sweep_benchmark(&chip, SplashBenchmark::WaterSpatial, 1);
        // 9 core options × 3 cache options × 2 operating points.
        assert_eq!(points.len(), 9 * 3 * 2);
    }

    #[test]
    fn best_point_balances_rate_against_power() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let points = sweep_benchmark(&chip, SplashBenchmark::Barnes, 1);
        let target = max_heart_rate(&points) / 2.0;
        let best = best_point(&points, target).unwrap();
        // The capped metric must never lose to simply running the fastest
        // configuration flat out, and must not collapse onto the slowest
        // configuration either (the target cap and the chip's static power
        // floor pull it toward the middle of the trade-off).
        let slowest_rate = points
            .iter()
            .map(|p| p.heart_rate)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best.heart_rate > slowest_rate * 2.0,
            "the best configuration should not be the slowest one"
        );
        let fastest = points
            .iter()
            .max_by(|a, b| a.heart_rate.partial_cmp(&b.heart_rate).unwrap())
            .unwrap();
        assert!(
            best.performance_per_watt(target) >= fastest.performance_per_watt(target),
            "the best point must be at least as efficient as the fastest point"
        );
    }

    #[test]
    fn per_benchmark_best_configurations_differ() {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let mut bests = Vec::new();
        for benchmark in SplashBenchmark::ALL {
            let points = sweep_benchmark(&chip, benchmark, 1);
            let best = best_point(&points, max_heart_rate(&points) / 2.0).unwrap();
            bests.push((best.cores, best.cache_kb as u64, best.operating_point));
        }
        bests.sort_unstable();
        bests.dedup();
        assert!(
            bests.len() >= 2,
            "heterogeneous benchmarks should not all prefer the same configuration"
        );
    }

    #[test]
    fn efficiency_metrics_are_consistent() {
        let point = SweepPoint {
            benchmark: SplashBenchmark::Barnes,
            cores: 4,
            cache_kb: 64.0,
            operating_point: 1,
            seconds: 2.0,
            heart_rate: 50.0,
            instructions_per_second: 1.0e9,
            energy_joules: 20.0,
            average_power_watts: 10.0,
        };
        assert!((point.efficiency() - 5.0).abs() < 1e-12);
        assert!((point.performance_per_watt(25.0) - 2.5).abs() < 1e-12);
        assert!((point.performance_per_watt(100.0) - 5.0).abs() < 1e-12);
    }
}
