//! Demand conversion and run drivers.
//!
//! Workload models produce substrate-neutral [`QuantumDemand`]s; this module
//! converts them into each substrate's demand type and drives whole runs —
//! either under a fixed configuration or under closed-loop SEEC control.

use angstrom_sim::workload::WorkloadDemand;
use workloads::QuantumDemand;
use xeon_sim::{ServerConfiguration, ServerDemand, ServerReport, XeonServer};

/// Converts one workload quantum into the Angstrom simulator's demand type.
pub fn to_chip_demand(quantum: &QuantumDemand) -> WorkloadDemand {
    WorkloadDemand::builder()
        .instructions(quantum.instructions)
        .parallel_fraction(quantum.parallel_fraction)
        .memory_ops_per_instruction(quantum.memory_ops_per_instruction)
        .working_set_bytes(quantum.working_set_bytes)
        .locality_exponent(quantum.locality_exponent)
        .sharing_fraction(quantum.sharing_fraction)
        .communication_flits_per_instruction(quantum.communication_flits_per_instruction)
        .load_imbalance(quantum.load_imbalance)
        .base_cpi(quantum.base_cpi)
        .work_units(quantum.work_units)
        .build()
}

/// Converts one workload quantum into the Xeon server's demand type.
pub fn to_server_demand(quantum: &QuantumDemand) -> ServerDemand {
    ServerDemand::builder()
        .instructions(quantum.instructions)
        .parallel_fraction(quantum.parallel_fraction)
        .memory_ops_per_instruction(quantum.memory_ops_per_instruction)
        .llc_miss_rate(quantum.xeon_llc_miss_rate)
        .base_cpi(quantum.base_cpi)
        .load_imbalance(quantum.load_imbalance)
        .work_units(quantum.work_units)
        .build()
}

/// Aggregate outcome of running a sequence of quanta on the Xeon server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XeonRunOutcome {
    /// Total simulated wall-clock time, in seconds.
    pub seconds: f64,
    /// Total work units (heartbeats) completed.
    pub work_units: f64,
    /// Average heart rate over the run, in beats per second.
    pub heart_rate: f64,
    /// Average power beyond idle, in watts.
    pub power_above_idle_watts: f64,
    /// Total energy, in joules.
    pub energy_joules: f64,
}

impl XeonRunOutcome {
    /// Accumulates a sequence of per-quantum reports.
    pub fn from_reports<'a, I: IntoIterator<Item = &'a ServerReport>>(reports: I) -> Self {
        let mut seconds = 0.0;
        let mut work_units = 0.0;
        let mut energy = 0.0;
        let mut above_idle_energy = 0.0;
        for r in reports {
            seconds += r.seconds;
            work_units += r.work_units;
            energy += r.energy_joules;
            above_idle_energy += r.power_above_idle_watts * r.seconds;
        }
        XeonRunOutcome {
            seconds,
            work_units,
            heart_rate: if seconds > 0.0 { work_units / seconds } else { 0.0 },
            power_above_idle_watts: if seconds > 0.0 {
                above_idle_energy / seconds
            } else {
                0.0
            },
            energy_joules: energy,
        }
    }

    /// The paper's performance-per-watt metric on this platform:
    /// `min(achieved, target) / (power − idle)`.
    pub fn performance_per_watt(&self, target_heart_rate: f64) -> f64 {
        if self.power_above_idle_watts <= 0.0 {
            return 0.0;
        }
        self.heart_rate.min(target_heart_rate) / self.power_above_idle_watts
    }
}

/// Runs every quantum under a single fixed configuration.
pub fn run_fixed_on_xeon(
    server: &XeonServer,
    quanta: &[QuantumDemand],
    configuration: &ServerConfiguration,
) -> XeonRunOutcome {
    let reports: Vec<ServerReport> = quanta
        .iter()
        .map(|q| server.evaluate(&to_server_demand(q), configuration))
        .collect();
    XeonRunOutcome::from_reports(reports.iter())
}

/// Runs each quantum under the per-quantum best configuration chosen with
/// perfect post-hoc knowledge — the *dynamic oracle* of §5.2 (no overhead,
/// perfect knowledge of the future).
pub fn run_dynamic_oracle_on_xeon(
    server: &XeonServer,
    quanta: &[QuantumDemand],
    configurations: &[ServerConfiguration],
    target_heart_rate: f64,
) -> XeonRunOutcome {
    let reports: Vec<ServerReport> = quanta
        .iter()
        .map(|q| {
            let demand = to_server_demand(q);
            configurations
                .iter()
                .map(|cfg| server.evaluate(&demand, cfg))
                .max_by(|a, b| {
                    quantum_efficiency(a, target_heart_rate)
                        .partial_cmp(&quantum_efficiency(b, target_heart_rate))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one configuration")
        })
        .collect();
    XeonRunOutcome::from_reports(reports.iter())
}

/// Per-quantum efficiency used by the oracles: capped heart rate per watt
/// beyond idle.
pub fn quantum_efficiency(report: &ServerReport, target_heart_rate: f64) -> f64 {
    if report.power_above_idle_watts <= 0.0 || report.seconds <= 0.0 {
        return 0.0;
    }
    let rate = report.work_units / report.seconds;
    rate.min(target_heart_rate) / report.power_above_idle_watts
}

/// Every configuration the paper's x86 experiment adapts over: cores 1–8,
/// the seven P-states, and ten active-cycle fractions.
pub fn xeon_configuration_grid(server: &XeonServer) -> Vec<ServerConfiguration> {
    let mut out = Vec::new();
    for cores in 1..=server.total_cores() {
        for pstate in 0..server.pstates().len() {
            for duty_step in 1..=10 {
                out.push(ServerConfiguration::new(
                    cores,
                    pstate,
                    duty_step as f64 / 10.0,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{SplashBenchmark, Workload};

    #[test]
    fn conversions_preserve_totals_and_rates() {
        let quantum = Workload::new(SplashBenchmark::OceanNonContiguous, 1).average_quantum();
        let chip = to_chip_demand(&quantum);
        assert_eq!(chip.instructions, quantum.instructions);
        assert_eq!(chip.working_set_bytes, quantum.working_set_bytes);
        assert_eq!(chip.work_units, quantum.work_units);
        let server = to_server_demand(&quantum);
        assert_eq!(server.instructions, quantum.instructions);
        assert_eq!(server.llc_miss_rate, quantum.xeon_llc_miss_rate);
        assert_eq!(server.work_units, quantum.work_units);
    }

    #[test]
    fn fixed_run_accumulates_all_quanta() {
        let server = XeonServer::dell_r410();
        let quanta = Workload::new(SplashBenchmark::Barnes, 2).quanta(32);
        let outcome = run_fixed_on_xeon(&server, &quanta, &server.default_configuration());
        let total_work: f64 = quanta.iter().map(|q| q.work_units).sum();
        assert!((outcome.work_units - total_work).abs() < 1e-6 * total_work);
        assert!(outcome.seconds > 0.0);
        assert!(outcome.heart_rate > 0.0);
        assert!(outcome.energy_joules > 0.0);
    }

    #[test]
    fn dynamic_oracle_beats_any_fixed_configuration() {
        let server = XeonServer::dell_r410();
        let quanta = Workload::new(SplashBenchmark::Volrend, 3).quanta(24);
        let grid = xeon_configuration_grid(&server);
        let max_rate = run_fixed_on_xeon(&server, &quanta, &server.default_configuration()).heart_rate;
        let target = max_rate / 2.0;
        let oracle = run_dynamic_oracle_on_xeon(&server, &quanta, &grid, target);
        let best_fixed = grid
            .iter()
            .map(|cfg| run_fixed_on_xeon(&server, &quanta, cfg).performance_per_watt(target))
            .fold(0.0_f64, f64::max);
        assert!(
            oracle.performance_per_watt(target) >= best_fixed * 0.999,
            "dynamic oracle {} must not lose to the best fixed configuration {}",
            oracle.performance_per_watt(target),
            best_fixed
        );
    }

    #[test]
    fn configuration_grid_covers_the_papers_knobs() {
        let server = XeonServer::dell_r410();
        let grid = xeon_configuration_grid(&server);
        assert_eq!(grid.len(), 8 * 7 * 10);
        assert!(grid.iter().all(|c| c.validate(&server).is_ok()));
    }

    #[test]
    fn perf_per_watt_caps_at_the_target() {
        let outcome = XeonRunOutcome {
            seconds: 10.0,
            work_units: 1000.0,
            heart_rate: 100.0,
            power_above_idle_watts: 50.0,
            energy_joules: 1400.0,
        };
        // Achieving 100 beats/s against a 40 beats/s target counts as 40.
        assert!((outcome.performance_per_watt(40.0) - 0.8).abs() < 1e-12);
        assert!((outcome.performance_per_watt(200.0) - 2.0).abs() < 1e-12);
    }
}
