//! Demand conversion and run drivers.
//!
//! Workload models produce substrate-neutral [`QuantumDemand`]s; this module
//! converts them into each substrate's demand type and drives whole runs —
//! either under a fixed configuration or under closed-loop SEEC control.

use angstrom_sim::workload::WorkloadDemand;
use workloads::QuantumDemand;
use xeon_sim::{
    PreparedConfig, PreparedDemand, ServerConfiguration, ServerDemand, ServerReport, XeonServer,
};

/// Runs `count` independent cells, returning their results in cell order.
///
/// Cells fan out across the process-wide persistent worker pool
/// ([`exec::global_pool`]), sized once to the host's available parallelism
/// and reused by every figure, sweep, and bench in the process — the
/// per-call `std::thread::scope` spawn this replaced is paid never instead
/// of once per call. On single-hardware-thread hosts (or single-cell
/// batches) the pool runs the cells inline. Results are identical either
/// way: every cell is a pure function of its index (closed-loop cells own
/// their seeded RNGs), and [`exec::ExecPool::map_indexed`] collects by
/// index, so thread count and interleaving cannot leak into the output.
pub fn run_cells<T, F>(count: usize, cell: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    exec::global_pool().map_indexed(count, cell)
}

/// Converts one workload quantum into the Angstrom simulator's demand type.
pub fn to_chip_demand(quantum: &QuantumDemand) -> WorkloadDemand {
    WorkloadDemand::builder()
        .instructions(quantum.instructions)
        .parallel_fraction(quantum.parallel_fraction)
        .memory_ops_per_instruction(quantum.memory_ops_per_instruction)
        .working_set_bytes(quantum.working_set_bytes)
        .locality_exponent(quantum.locality_exponent)
        .sharing_fraction(quantum.sharing_fraction)
        .communication_flits_per_instruction(quantum.communication_flits_per_instruction)
        .load_imbalance(quantum.load_imbalance)
        .base_cpi(quantum.base_cpi)
        .work_units(quantum.work_units)
        .build()
}

/// Converts one workload quantum into the Xeon server's demand type.
pub fn to_server_demand(quantum: &QuantumDemand) -> ServerDemand {
    ServerDemand::builder()
        .instructions(quantum.instructions)
        .parallel_fraction(quantum.parallel_fraction)
        .memory_ops_per_instruction(quantum.memory_ops_per_instruction)
        .llc_miss_rate(quantum.xeon_llc_miss_rate)
        .base_cpi(quantum.base_cpi)
        .load_imbalance(quantum.load_imbalance)
        .work_units(quantum.work_units)
        .build()
}

/// Aggregate outcome of running a sequence of quanta on the Xeon server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XeonRunOutcome {
    /// Total simulated wall-clock time, in seconds.
    pub seconds: f64,
    /// Total work units (heartbeats) completed.
    pub work_units: f64,
    /// Average heart rate over the run, in beats per second.
    pub heart_rate: f64,
    /// Average power beyond idle, in watts.
    pub power_above_idle_watts: f64,
    /// Total energy, in joules.
    pub energy_joules: f64,
}

/// Accumulates per-quantum reports into a [`XeonRunOutcome`].
///
/// The single source of truth for the accumulation's operation order: both
/// the report-based path and the memoized-cell path push through here, so
/// their sums are bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutcomeAccumulator {
    seconds: f64,
    work_units: f64,
    energy: f64,
    above_idle_energy: f64,
}

impl OutcomeAccumulator {
    /// Folds in one quantum's observables.
    #[inline]
    pub fn push(
        &mut self,
        seconds: f64,
        work_units: f64,
        energy_joules: f64,
        power_above_idle_watts: f64,
    ) {
        self.seconds += seconds;
        self.work_units += work_units;
        self.energy += energy_joules;
        self.above_idle_energy += power_above_idle_watts * seconds;
    }

    /// Folds in one quantum's report.
    #[inline]
    pub fn push_report(&mut self, r: &ServerReport) {
        self.push(
            r.seconds,
            r.work_units,
            r.energy_joules,
            r.power_above_idle_watts,
        );
    }

    /// The aggregate outcome.
    pub fn finish(self) -> XeonRunOutcome {
        XeonRunOutcome {
            seconds: self.seconds,
            work_units: self.work_units,
            heart_rate: if self.seconds > 0.0 {
                self.work_units / self.seconds
            } else {
                0.0
            },
            power_above_idle_watts: if self.seconds > 0.0 {
                self.above_idle_energy / self.seconds
            } else {
                0.0
            },
            energy_joules: self.energy,
        }
    }
}

impl XeonRunOutcome {
    /// Accumulates a sequence of per-quantum reports.
    pub fn from_reports<'a, I: IntoIterator<Item = &'a ServerReport>>(reports: I) -> Self {
        let mut acc = OutcomeAccumulator::default();
        for r in reports {
            acc.push_report(r);
        }
        acc.finish()
    }

    /// The paper's performance-per-watt metric on this platform:
    /// `min(achieved, target) / (power − idle)`.
    pub fn performance_per_watt(&self, target_heart_rate: f64) -> f64 {
        if self.power_above_idle_watts <= 0.0 {
            return 0.0;
        }
        self.heart_rate.min(target_heart_rate) / self.power_above_idle_watts
    }
}

/// Runs every quantum under a single fixed configuration.
pub fn run_fixed_on_xeon(
    server: &XeonServer,
    quanta: &[QuantumDemand],
    configuration: &ServerConfiguration,
) -> XeonRunOutcome {
    let reports: Vec<ServerReport> = quanta
        .iter()
        .map(|q| server.evaluate(&to_server_demand(q), configuration))
        .collect();
    XeonRunOutcome::from_reports(reports.iter())
}

/// Runs each quantum under the per-quantum best configuration chosen with
/// perfect post-hoc knowledge — the *dynamic oracle* of §5.2 (no overhead,
/// perfect knowledge of the future).
pub fn run_dynamic_oracle_on_xeon(
    server: &XeonServer,
    quanta: &[QuantumDemand],
    configurations: &[ServerConfiguration],
    target_heart_rate: f64,
) -> XeonRunOutcome {
    let reports: Vec<ServerReport> = quanta
        .iter()
        .map(|q| {
            let demand = to_server_demand(q);
            configurations
                .iter()
                .map(|cfg| server.evaluate(&demand, cfg))
                .max_by(|a, b| {
                    quantum_efficiency(a, target_heart_rate)
                        .partial_cmp(&quantum_efficiency(b, target_heart_rate))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one configuration")
        })
        .collect();
    XeonRunOutcome::from_reports(reports.iter())
}

/// Per-quantum efficiency used by the oracles: capped heart rate per watt
/// beyond idle.
pub fn quantum_efficiency(report: &ServerReport, target_heart_rate: f64) -> f64 {
    if report.power_above_idle_watts <= 0.0 || report.seconds <= 0.0 {
        return 0.0;
    }
    let rate = report.work_units / report.seconds;
    rate.min(target_heart_rate) / report.power_above_idle_watts
}

/// Every configuration the paper's x86 experiment adapts over: cores 1–8,
/// the seven P-states, and ten active-cycle fractions.
pub fn xeon_configuration_grid(server: &XeonServer) -> Vec<ServerConfiguration> {
    let mut out = Vec::new();
    for cores in 1..=server.total_cores() {
        for pstate in 0..server.pstates().len() {
            for duty_step in 1..=10 {
                out.push(ServerConfiguration::new(
                    cores,
                    pstate,
                    duty_step as f64 / 10.0,
                ));
            }
        }
    }
    out
}

/// Memoized evaluations of every (quantum, grid configuration) cell for one
/// benchmark run.
///
/// The figure pipeline evaluates the same quanta under the same grid many
/// times over — the shared no-adaptation selection, the static oracle, the
/// dynamic oracle, and the closed-loop runs all revisit identical
/// (demand, configuration) pairs. The table evaluates each pair exactly
/// once (with the prepared split, so per-cell cost is a handful of flops)
/// and every later use is an indexed lookup. Reports are bit-identical to
/// calling [`XeonServer::evaluate`] directly, so outcomes derived from the
/// table match the unmemoized pipeline exactly.
#[derive(Debug, Clone)]
pub struct XeonEvalTable {
    grid: Vec<ServerConfiguration>,
    /// Quantum-major: `cells[quantum * grid.len() + config]`. Cells store
    /// only the report fields the aggregations consume; the two derivable
    /// fields (instructions, instructions/second) are rebuilt — with the
    /// identical operations — when a full report is materialised.
    cells: Vec<EvalCell>,
    /// Instructions of each quantum (demand-side, configuration invariant).
    quantum_instructions: Vec<f64>,
    quanta_len: usize,
    pstate_count: usize,
    total_cores: usize,
}

/// One memoized (quantum, configuration) evaluation, 5 of the report's 7
/// fields (the other two are derivable).
#[derive(Debug, Clone, Copy, PartialEq)]
struct EvalCell {
    seconds: f64,
    work_units: f64,
    power_above_idle_watts: f64,
    total_power_watts: f64,
    energy_joules: f64,
}

impl EvalCell {
    #[inline]
    fn from_report(r: &ServerReport) -> Self {
        EvalCell {
            seconds: r.seconds,
            work_units: r.work_units,
            power_above_idle_watts: r.power_above_idle_watts,
            total_power_watts: r.total_power_watts,
            energy_joules: r.energy_joules,
        }
    }

    /// The per-quantum efficiency of this cell — the same operations as
    /// [`quantum_efficiency`] on the materialised report.
    #[inline]
    fn efficiency(&self, target_heart_rate: f64) -> f64 {
        if self.power_above_idle_watts <= 0.0 || self.seconds <= 0.0 {
            return 0.0;
        }
        let rate = self.work_units / self.seconds;
        rate.min(target_heart_rate) / self.power_above_idle_watts
    }
}

impl XeonEvalTable {
    /// Evaluates every quantum under every grid configuration, once.
    pub fn build(server: &XeonServer, quanta: &[QuantumDemand]) -> Self {
        let grid = xeon_configuration_grid(server);
        let prepared: Vec<PreparedConfig> = grid.iter().map(|cfg| server.prepare(cfg)).collect();
        let mut cells = Vec::with_capacity(grid.len() * quanta.len());
        let mut quantum_instructions = Vec::with_capacity(quanta.len());
        for quantum in quanta {
            let demand = PreparedDemand::new(&to_server_demand(quantum));
            quantum_instructions.push(quantum.instructions);
            // The CPI model depends on the configuration only through the
            // P-state's miss penalty; grid order keeps each P-state's ten
            // duty steps adjacent, so the folded terms change 56 times per
            // quantum instead of 560.
            let mut terms = demand.at_miss_penalty(prepared[0].miss_penalty_cycles());
            for config in &prepared {
                if config.miss_penalty_cycles().to_bits() != terms.miss_penalty_cycles().to_bits()
                {
                    terms = demand.at_miss_penalty(config.miss_penalty_cycles());
                }
                cells.push(EvalCell::from_report(&server.evaluate_terms(&terms, config)));
            }
        }
        XeonEvalTable {
            grid,
            cells,
            quantum_instructions,
            quanta_len: quanta.len(),
            pstate_count: server.pstates().len(),
            total_cores: server.total_cores(),
        }
    }

    /// The configuration grid, in [`xeon_configuration_grid`] order.
    pub fn grid(&self) -> &[ServerConfiguration] {
        &self.grid
    }

    /// Number of quanta covered.
    pub fn quanta_len(&self) -> usize {
        self.quanta_len
    }

    /// The memoized report of one (quantum, configuration) cell,
    /// bit-identical to the direct evaluation.
    #[inline]
    pub fn report(&self, quantum: usize, config: usize) -> ServerReport {
        let cell = &self.cells[quantum * self.grid.len() + config];
        let instructions = self.quantum_instructions[quantum];
        ServerReport {
            seconds: cell.seconds,
            instructions,
            work_units: cell.work_units,
            // The same division `evaluate` performs, on the same operands.
            instructions_per_second: instructions / cell.seconds,
            total_power_watts: cell.total_power_watts,
            power_above_idle_watts: cell.power_above_idle_watts,
            energy_joules: cell.energy_joules,
        }
    }

    #[inline]
    fn quantum_cells(&self, quantum: usize) -> &[EvalCell] {
        let width = self.grid.len();
        &self.cells[quantum * width..(quantum + 1) * width]
    }

    /// Grid index of `config`, if it lies on the grid (cores in range, valid
    /// P-state, duty an exact tenth).
    pub fn config_index(&self, config: &ServerConfiguration) -> Option<usize> {
        if config.cores == 0
            || config.cores > self.total_cores
            || config.pstate_index >= self.pstate_count
        {
            return None;
        }
        let step = (config.active_cycle_fraction * 10.0).round();
        if !(1.0..=10.0).contains(&step)
            || (config.active_cycle_fraction - step / 10.0).abs() > 1e-12
        {
            return None;
        }
        Some(
            ((config.cores - 1) * self.pstate_count + config.pstate_index) * 10
                + (step as usize - 1),
        )
    }

    /// The aggregate outcome of running every quantum under one fixed grid
    /// configuration — [`run_fixed_on_xeon`] as a lookup.
    pub fn fixed_outcome(&self, config: usize) -> XeonRunOutcome {
        let mut acc = OutcomeAccumulator::default();
        for q in 0..self.quanta_len {
            let cell = &self.cells[q * self.grid.len() + config];
            acc.push(
                cell.seconds,
                cell.work_units,
                cell.energy_joules,
                cell.power_above_idle_watts,
            );
        }
        acc.finish()
    }

    /// The dynamic oracle over the table — [`run_dynamic_oracle_on_xeon`]
    /// as per-quantum indexed lookups. Per quantum, the best cell is chosen
    /// exactly as `Iterator::max_by` does (the last cell wins ties).
    pub fn dynamic_oracle_outcome(&self, target_heart_rate: f64) -> XeonRunOutcome {
        let mut acc = OutcomeAccumulator::default();
        for q in 0..self.quanta_len {
            let cells = self.quantum_cells(q);
            let mut best = &cells[0];
            let mut best_efficiency = best.efficiency(target_heart_rate);
            for cell in &cells[1..] {
                let efficiency = cell.efficiency(target_heart_rate);
                if efficiency >= best_efficiency {
                    best = cell;
                    best_efficiency = efficiency;
                }
            }
            acc.push(
                best.seconds,
                best.work_units,
                best.energy_joules,
                best.power_above_idle_watts,
            );
        }
        acc.finish()
    }

    /// The static oracle over the table: the best fixed configuration's
    /// capped performance per watt.
    pub fn static_oracle_performance_per_watt(&self, target_heart_rate: f64) -> f64 {
        (0..self.grid.len())
            .map(|c| self.fixed_outcome(c).performance_per_watt(target_heart_rate))
            .fold(0.0_f64, f64::max)
    }

    /// The *goal-respecting* static oracle: among fixed configurations whose
    /// run meets the target heart rate, the one with the least mean power
    /// above idle; when none meets it, the fastest. Scored as capped
    /// performance per watt.
    ///
    /// This is the §5.2 protocol ("meet the goal while minimising power")
    /// stated directly. Under the linear power model the capped-ratio
    /// maximisation encodes the same intent, but under a convex
    /// utilisation–power curve the ratio `min(rate, target) / power` grows
    /// without bound as utilisation shrinks, so a ratio-maximising oracle
    /// degenerates into deep duty-cycling that ignores the goal entirely —
    /// see EXPERIMENTS.md's recalibrated-model notes. The convex-model
    /// experiments therefore score against goal-respecting oracles; the
    /// linear default keeps the historical selection bit-for-bit.
    pub fn goal_respecting_static_oracle_performance_per_watt(
        &self,
        target_heart_rate: f64,
    ) -> f64 {
        let mut feasible: Option<(XeonRunOutcome, f64)> = None;
        let mut fastest: Option<XeonRunOutcome> = None;
        for c in 0..self.grid.len() {
            let outcome = self.fixed_outcome(c);
            if outcome.heart_rate >= target_heart_rate {
                let better = feasible
                    .as_ref()
                    .is_none_or(|(_, power)| outcome.power_above_idle_watts < *power);
                if better {
                    feasible = Some((outcome, outcome.power_above_idle_watts));
                }
            }
            let faster = fastest
                .as_ref()
                .is_none_or(|best| outcome.heart_rate > best.heart_rate);
            if faster {
                fastest = Some(outcome);
            }
        }
        feasible
            .map(|(outcome, _)| outcome)
            .or(fastest)
            .map_or(0.0, |outcome| outcome.performance_per_watt(target_heart_rate))
    }

    /// The *goal-respecting* dynamic oracle: per quantum, the cell meeting
    /// the target at least power above idle (the fastest cell when none
    /// meets it). See
    /// [`Self::goal_respecting_static_oracle_performance_per_watt`] for why
    /// the convex-model experiments use this instead of the ratio-maximising
    /// [`Self::dynamic_oracle_outcome`].
    pub fn goal_respecting_dynamic_oracle_outcome(&self, target_heart_rate: f64) -> XeonRunOutcome {
        let mut acc = OutcomeAccumulator::default();
        for q in 0..self.quanta_len {
            let cells = self.quantum_cells(q);
            let mut feasible: Option<&EvalCell> = None;
            let mut fastest = &cells[0];
            let mut fastest_rate = fastest.work_units / fastest.seconds;
            for cell in cells {
                let rate = cell.work_units / cell.seconds;
                if rate >= target_heart_rate
                    && feasible.is_none_or(|best| {
                        cell.power_above_idle_watts < best.power_above_idle_watts
                    })
                {
                    feasible = Some(cell);
                }
                if rate > fastest_rate {
                    fastest = cell;
                    fastest_rate = rate;
                }
            }
            let best = feasible.unwrap_or(fastest);
            acc.push(
                best.seconds,
                best.work_units,
                best.energy_joules,
                best.power_above_idle_watts,
            );
        }
        acc.finish()
    }
}

/// The fixed-configuration outcome of every configuration in `configs`, in
/// one streaming pass over the quanta — no per-cell storage.
///
/// Equivalent, bit-for-bit, to calling [`run_fixed_on_xeon`] once per
/// configuration (each configuration's accumulator sees its reports in
/// quantum order, through the shared [`OutcomeAccumulator`] operations),
/// at one evaluation per (quantum, configuration) pair and O(configs)
/// memory. Used where only a small slice of the grid is needed — e.g. the
/// shared no-adaptation candidates of Figure 3.
pub fn fixed_outcomes_streaming(
    server: &XeonServer,
    quanta: &[QuantumDemand],
    configs: &[ServerConfiguration],
) -> Vec<XeonRunOutcome> {
    let prepared: Vec<PreparedConfig> = configs.iter().map(|cfg| server.prepare(cfg)).collect();
    let mut accumulators = vec![OutcomeAccumulator::default(); configs.len()];
    for quantum in quanta {
        let demand = PreparedDemand::new(&to_server_demand(quantum));
        for (config, acc) in prepared.iter().zip(accumulators.iter_mut()) {
            let report =
                server.evaluate_terms(&demand.at_miss_penalty(config.miss_penalty_cycles()), config);
            acc.push_report(&report);
        }
    }
    accumulators.into_iter().map(OutcomeAccumulator::finish).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{SplashBenchmark, Workload};

    #[test]
    fn conversions_preserve_totals_and_rates() {
        let quantum = Workload::new(SplashBenchmark::OceanNonContiguous, 1).average_quantum();
        let chip = to_chip_demand(&quantum);
        assert_eq!(chip.instructions, quantum.instructions);
        assert_eq!(chip.working_set_bytes, quantum.working_set_bytes);
        assert_eq!(chip.work_units, quantum.work_units);
        let server = to_server_demand(&quantum);
        assert_eq!(server.instructions, quantum.instructions);
        assert_eq!(server.llc_miss_rate, quantum.xeon_llc_miss_rate);
        assert_eq!(server.work_units, quantum.work_units);
    }

    #[test]
    fn fixed_run_accumulates_all_quanta() {
        let server = XeonServer::dell_r410();
        let quanta = Workload::new(SplashBenchmark::Barnes, 2).quanta(32);
        let outcome = run_fixed_on_xeon(&server, &quanta, &server.default_configuration());
        let total_work: f64 = quanta.iter().map(|q| q.work_units).sum();
        assert!((outcome.work_units - total_work).abs() < 1e-6 * total_work);
        assert!(outcome.seconds > 0.0);
        assert!(outcome.heart_rate > 0.0);
        assert!(outcome.energy_joules > 0.0);
    }

    #[test]
    fn dynamic_oracle_beats_any_fixed_configuration() {
        let server = XeonServer::dell_r410();
        let quanta = Workload::new(SplashBenchmark::Volrend, 3).quanta(24);
        let grid = xeon_configuration_grid(&server);
        let max_rate = run_fixed_on_xeon(&server, &quanta, &server.default_configuration()).heart_rate;
        let target = max_rate / 2.0;
        let oracle = run_dynamic_oracle_on_xeon(&server, &quanta, &grid, target);
        let best_fixed = grid
            .iter()
            .map(|cfg| run_fixed_on_xeon(&server, &quanta, cfg).performance_per_watt(target))
            .fold(0.0_f64, f64::max);
        assert!(
            oracle.performance_per_watt(target) >= best_fixed * 0.999,
            "dynamic oracle {} must not lose to the best fixed configuration {}",
            oracle.performance_per_watt(target),
            best_fixed
        );
    }

    #[test]
    fn configuration_grid_covers_the_papers_knobs() {
        let server = XeonServer::dell_r410();
        let grid = xeon_configuration_grid(&server);
        assert_eq!(grid.len(), 8 * 7 * 10);
        assert!(grid.iter().all(|c| c.validate(&server).is_ok()));
    }

    #[test]
    fn eval_table_matches_direct_evaluation_bit_for_bit() {
        let server = XeonServer::dell_r410();
        let quanta = Workload::new(SplashBenchmark::Raytrace, 5).quanta(12);
        let table = XeonEvalTable::build(&server, &quanta);
        let grid = xeon_configuration_grid(&server);
        assert_eq!(table.grid(), &grid[..]);
        assert_eq!(table.quanta_len(), quanta.len());
        for (ci, cfg) in grid.iter().enumerate() {
            assert_eq!(table.config_index(cfg), Some(ci));
            let direct = run_fixed_on_xeon(&server, &quanta, cfg);
            let memoized = table.fixed_outcome(ci);
            assert_eq!(direct.seconds.to_bits(), memoized.seconds.to_bits());
            assert_eq!(direct.heart_rate.to_bits(), memoized.heart_rate.to_bits());
            assert_eq!(
                direct.power_above_idle_watts.to_bits(),
                memoized.power_above_idle_watts.to_bits()
            );
            assert_eq!(direct.energy_joules.to_bits(), memoized.energy_joules.to_bits());
        }
        let target = table
            .fixed_outcome(table.config_index(&server.default_configuration()).unwrap())
            .heart_rate
            / 2.0;
        let direct_oracle = run_dynamic_oracle_on_xeon(&server, &quanta, &grid, target);
        let memoized_oracle = table.dynamic_oracle_outcome(target);
        assert_eq!(direct_oracle.seconds.to_bits(), memoized_oracle.seconds.to_bits());
        assert_eq!(
            direct_oracle.energy_joules.to_bits(),
            memoized_oracle.energy_joules.to_bits()
        );
        let direct_static = grid
            .iter()
            .map(|cfg| run_fixed_on_xeon(&server, &quanta, cfg).performance_per_watt(target))
            .fold(0.0_f64, f64::max);
        assert_eq!(
            direct_static.to_bits(),
            table.static_oracle_performance_per_watt(target).to_bits()
        );
    }

    #[test]
    fn streaming_outcomes_match_per_config_runs_bit_for_bit() {
        let server = XeonServer::dell_r410();
        let quanta = Workload::new(SplashBenchmark::WaterSpatial, 11).quanta(16);
        // A mixed slice of the grid, including the default configuration
        // and duty-cycled points, in arbitrary order.
        let configs = vec![
            server.default_configuration(),
            ServerConfiguration::new(1, 6, 1.0),
            ServerConfiguration::new(4, 3, 0.5),
            ServerConfiguration::new(8, 0, 0.1),
            ServerConfiguration::new(2, 5, 0.9),
        ];
        let streamed = fixed_outcomes_streaming(&server, &quanta, &configs);
        assert_eq!(streamed.len(), configs.len());
        for (cfg, outcome) in configs.iter().zip(&streamed) {
            let direct = run_fixed_on_xeon(&server, &quanta, cfg);
            assert_eq!(direct.seconds.to_bits(), outcome.seconds.to_bits());
            assert_eq!(direct.work_units.to_bits(), outcome.work_units.to_bits());
            assert_eq!(direct.heart_rate.to_bits(), outcome.heart_rate.to_bits());
            assert_eq!(
                direct.power_above_idle_watts.to_bits(),
                outcome.power_above_idle_watts.to_bits()
            );
            assert_eq!(direct.energy_joules.to_bits(), outcome.energy_joules.to_bits());
        }
    }

    #[test]
    fn run_cells_is_order_preserving_and_exhaustive() {
        for count in [0usize, 1, 2, 5, 17] {
            let results = run_cells(count, |index| index * index);
            assert_eq!(results, (0..count).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn config_index_rejects_off_grid_configurations() {
        let server = XeonServer::dell_r410();
        let table = XeonEvalTable::build(&server, &Workload::new(SplashBenchmark::Barnes, 1).quanta(2));
        assert!(table.config_index(&ServerConfiguration::new(0, 0, 1.0)).is_none());
        assert!(table.config_index(&ServerConfiguration::new(9, 0, 1.0)).is_none());
        assert!(table.config_index(&ServerConfiguration::new(4, 9, 1.0)).is_none());
        assert!(table.config_index(&ServerConfiguration::new(4, 0, 0.55)).is_none());
        assert_eq!(
            table.config_index(&server.default_configuration()),
            Some(((8 - 1) * 7) * 10 + 9)
        );
    }

    #[test]
    fn perf_per_watt_caps_at_the_target() {
        let outcome = XeonRunOutcome {
            seconds: 10.0,
            work_units: 1000.0,
            heart_rate: 100.0,
            power_above_idle_watts: 50.0,
            energy_joules: 1400.0,
        };
        // Achieving 100 beats/s against a 40 beats/s target counts as 40.
        assert!((outcome.performance_per_watt(40.0) - 0.8).abs() < 1e-12);
        assert!((outcome.performance_per_watt(200.0) - 2.0).abs() < 1e-12);
    }
}
