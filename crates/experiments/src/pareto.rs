//! Pareto analysis over (energy, performance) points.

use serde::{Deserialize, Serialize};

/// A point in the Figure-2 plane: total energy on x, performance on y.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyPerformancePoint {
    /// Total energy of the run, in joules.
    pub energy_joules: f64,
    /// Performance (instructions per second in the paper's Figure 2).
    pub performance: f64,
}

impl EnergyPerformancePoint {
    /// Creates a point.
    pub fn new(energy_joules: f64, performance: f64) -> Self {
        EnergyPerformancePoint {
            energy_joules,
            performance,
        }
    }

    /// Whether `self` dominates `other`: no worse on both axes and strictly
    /// better on at least one (lower energy, higher performance).
    pub fn dominates(&self, other: &EnergyPerformancePoint) -> bool {
        let no_worse =
            self.energy_joules <= other.energy_joules && self.performance >= other.performance;
        let strictly_better =
            self.energy_joules < other.energy_joules || self.performance > other.performance;
        no_worse && strictly_better
    }
}

/// Indices of the Pareto-optimal points (lowest energy, highest performance)
/// within `points`, sorted by increasing energy.
pub fn pareto_frontier(points: &[EnergyPerformancePoint]) -> Vec<usize> {
    let mut frontier: Vec<usize> = (0..points.len())
        .filter(|&i| !points.iter().any(|other| other.dominates(&points[i])))
        .collect();
    frontier.sort_by(|&a, &b| {
        points[a]
            .energy_joules
            .partial_cmp(&points[b].energy_joules)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    frontier
}

/// Whether the point at `index` lies on the Pareto frontier of `points`.
pub fn is_pareto_optimal(points: &[EnergyPerformancePoint], index: usize) -> bool {
    pareto_frontier(points).contains(&index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(e: f64, p: f64) -> EnergyPerformancePoint {
        EnergyPerformancePoint::new(e, p)
    }

    #[test]
    fn domination_requires_strict_improvement() {
        assert!(pt(1.0, 10.0).dominates(&pt(2.0, 9.0)));
        assert!(pt(1.0, 10.0).dominates(&pt(1.0, 9.0)));
        assert!(!pt(1.0, 10.0).dominates(&pt(1.0, 10.0)), "equal points do not dominate");
        assert!(!pt(1.0, 10.0).dominates(&pt(0.5, 20.0)));
        assert!(!pt(1.0, 10.0).dominates(&pt(0.5, 5.0)), "trade-off points are incomparable");
    }

    #[test]
    fn frontier_excludes_dominated_points() {
        let points = vec![
            pt(1.0, 5.0),  // frontier (cheapest)
            pt(2.0, 10.0), // frontier
            pt(3.0, 9.0),  // dominated by (2.0, 10.0)
            pt(4.0, 20.0), // frontier (fastest)
            pt(2.5, 10.0), // dominated by (2.0, 10.0)
        ];
        let frontier = pareto_frontier(&points);
        assert_eq!(frontier, vec![0, 1, 3]);
        assert!(is_pareto_optimal(&points, 0));
        assert!(!is_pareto_optimal(&points, 2));
    }

    #[test]
    fn frontier_is_sorted_by_energy_and_handles_edges() {
        assert!(pareto_frontier(&[]).is_empty());
        let single = vec![pt(1.0, 1.0)];
        assert_eq!(pareto_frontier(&single), vec![0]);
        let points = vec![pt(5.0, 50.0), pt(1.0, 10.0), pt(3.0, 30.0)];
        let frontier = pareto_frontier(&points);
        let energies: Vec<f64> = frontier.iter().map(|&i| points[i].energy_joules).collect();
        assert!(energies.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(frontier.len(), 3, "a pure trade-off curve is all frontier");
    }
}
