//! The chaos experiment (`fig5 --chaos` / `--enforce`): fault-injected
//! mixes under graceful degradation and hard rack enforcement.
//!
//! [`workloads::chaos_mixes`] schedules every [`workloads::FaultKind`]
//! against otherwise-honest fleets; this module runs those scenarios
//! through five regimes and reports what each fault costs and what each
//! defence buys:
//!
//! * **uncoordinated** — every app its own uncoordinated adaptation;
//!   nobody even notices the faults.
//! * **coordinated-naive/audit** — the rack → datacenter hierarchy with
//!   every robustness knob off: the pre-degradation coordinator, which
//!   keeps paying awards to stalled, crashed, and lying applications.
//! * **coordinated-naive/clamp** — same naive coordination, but each
//!   rack's breaker ([`EnforcementMode::Clamp`]) physically throttles the
//!   rack to its awarded envelope.
//! * **coordinated-degraded/audit** — the watchdog ladder
//!   ([`Coordinator::with_watchdog`]) plus admission control: faulty apps
//!   are quarantined onto the floor envelope and readmitted when they
//!   recover; overdraw is still only audited.
//! * **coordinated-degraded/clamp** — degradation *and* the breaker: the
//!   watchdog handles what telemetry reveals (stalls, crashes, non-finite
//!   or inflated reports), the breaker contains what it cannot —
//!   an app that *under*-reports its draw looks healthy to every
//!   telemetry rule and is only stopped at the rail.
//!
//! Metrics are physical: the datacenter meter and per-app attainment see
//! the watts actually drawn and the work actually done ([the admitted
//! values under Clamp — a throttled app really is denied the energy](
//! coordinator::RackCoordinator::admit)), while coordinators see only
//! what each app reports. Per app the figure records the watchdog's
//! verdict (health state, quarantine and readmission quanta); per arm it
//! aggregates cap-violation rates, worst rack overdraw, quarantine
//! latency, false quarantines, clamp activity, and the goal attainment of
//! the *healthy* population — the fairness cost any defence must be
//! judged by.

use std::sync::Arc;
use std::time::Instant;

use coordinator::{
    AppHandle, Coordinator, DatacenterArbiter, EnforcementMode, HealthState, PerformanceMarket,
    RackCoordinator, WatchdogConfig,
};
use obs::{Counter, ObsSnapshot, Recorder};
use seec::UncoordinatedRuntime;
use serde::{Deserialize, Serialize};
use workloads::{chaos_mixes, FaultKind, HeartbeatedWorkload, Scenario};
use xeon_sim::{MachineMeter, XeonServer};

use crate::driver::{run_cells, to_server_demand};
use crate::faults::FaultRuntime;
use crate::fig3::{map_configuration, xeon_actuators};
use crate::fig5::{
    build_apps, datacenter_budget_watts, heartbeated, managed_for, tuned, AppSim, RuntimeBlock,
    QUANTUM_SECONDS,
};

/// One application's fate in one chaos cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosAppOutcome {
    /// Index into the scenario's app list.
    pub index: usize,
    /// Whether the scenario's fault plan targets this app at all.
    pub faulty: bool,
    /// Whether at least one of its faults is visible to the watchdog's
    /// telemetry rules (stalls, crashes, non-finite telemetry, power
    /// *over*-reports beyond the overdraw tolerance). Under-reports and
    /// frozen-but-plausible telemetry are not: they are the breaker's
    /// problem, not the watchdog's.
    pub detectable: bool,
    /// Final position on the degradation ladder (`"unmanaged"` in the
    /// uncoordinated arm, `"healthy"` forever when the watchdog is off).
    pub health: String,
    /// Coordinator quantum at which the app was first quarantined.
    pub quarantined_at: Option<usize>,
    /// Quanta from the app's first fault onset to quarantine.
    pub time_to_quarantine: Option<usize>,
    /// Coordinator quantum of the most recent readmission.
    pub readmitted_at: Option<usize>,
    /// `min(rate/target, 1)` over the app's residency (physical work).
    pub attainment: f64,
}

/// One regime's outcome on one chaos scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosArmOutcome {
    /// Regime name.
    pub name: String,
    /// Fraction of simulated time the datacenter's physical draw exceeded
    /// the budget.
    pub cap_violation_rate: f64,
    /// Worst per-rack fraction of time spent above the rack's awarded
    /// envelope (0.0 for the uncoordinated arm, which has no racks).
    pub max_rack_violation_rate: f64,
    /// Mean datacenter power above idle, in watts.
    pub mean_power_watts: f64,
    /// Goal-weighted throughput per watt (as in Figure 5).
    pub performance_per_watt: f64,
    /// Mean attainment over every app, faulty ones included.
    pub goal_attainment: f64,
    /// Mean attainment over the apps the fault plan leaves alone — the
    /// number a defence is not allowed to ruin.
    pub healthy_attainment: f64,
    /// Apps targeted by the fault plan.
    pub faulty_apps: usize,
    /// Apps the watchdog quarantined at least once.
    pub quarantined_apps: usize,
    /// Quarantined apps the fault plan does *not* target (watchdog
    /// false positives).
    pub false_quarantines: usize,
    /// Worst quanta-to-quarantine over detectably-faulty apps that were
    /// quarantined.
    pub max_time_to_quarantine: Option<usize>,
    /// Total breaker activations across racks ([`RackCoordinator::clamp_events`]).
    pub clamp_events: u64,
    /// Total energy the breakers refused, in joules.
    pub shed_joules: f64,
    /// Per-app verdicts.
    pub apps: Vec<ChaosAppOutcome>,
    /// Wall-clock accounting for the cell (zeroed under
    /// [`Self::canonical`]).
    pub runtime: RuntimeBlock,
}

impl ChaosArmOutcome {
    /// The outcome with wall-clock timing zeroed (see
    /// [`crate::fig5::ArmOutcome::canonical`]).
    pub fn canonical(&self) -> Self {
        ChaosArmOutcome {
            runtime: self.runtime.canonical(),
            ..self.clone()
        }
    }
}

/// One chaos scenario across every regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosScenarioResult {
    /// Scenario name (see [`workloads::chaos_mixes`]).
    pub name: String,
    /// Number of applications in the mix.
    pub apps: usize,
    /// Number of racks.
    pub racks: usize,
    /// Quanta simulated.
    pub quanta: usize,
    /// The shared datacenter power budget (above idle), in watts.
    pub budget_watts: f64,
    /// No coordination at all.
    pub uncoordinated: ChaosArmOutcome,
    /// Hierarchy with every robustness knob off.
    pub naive_audit: ChaosArmOutcome,
    /// Naive coordination behind the rack breaker.
    pub naive_clamp: ChaosArmOutcome,
    /// Watchdog + admission control, overdraw audited only.
    pub degraded_audit: ChaosArmOutcome,
    /// Watchdog + admission control + rack breaker.
    pub degraded_clamp: ChaosArmOutcome,
}

impl ChaosScenarioResult {
    /// The scenario with every arm's wall-clock timing zeroed.
    pub fn canonical(&self) -> Self {
        ChaosScenarioResult {
            name: self.name.clone(),
            apps: self.apps,
            racks: self.racks,
            quanta: self.quanta,
            budget_watts: self.budget_watts,
            uncoordinated: self.uncoordinated.canonical(),
            naive_audit: self.naive_audit.canonical(),
            naive_clamp: self.naive_clamp.canonical(),
            degraded_audit: self.degraded_audit.canonical(),
            degraded_clamp: self.degraded_clamp.canonical(),
        }
    }
}

/// The `fig5 --chaos` data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureChaos {
    /// One entry per chaos mix.
    pub scenarios: Vec<ChaosScenarioResult>,
}

/// One scenario's enforcement summary: what the breaker changes, and what
/// it costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnforceScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Worst rack overdraw with naive coordination and the breaker off —
    /// the defect the breaker exists to close.
    pub audit_overdraw_rate: f64,
    /// Worst rack overdraw with naive coordination behind the breaker
    /// (structurally 0: the meter records admitted power).
    pub clamp_overdraw_rate: f64,
    /// Worst rack overdraw with degradation on and the breaker off.
    pub degraded_audit_overdraw_rate: f64,
    /// Worst rack overdraw with degradation *and* the breaker.
    pub degraded_clamp_overdraw_rate: f64,
    /// Healthy-population attainment lost by turning the breaker on under
    /// naive coordination (audit minus clamp; positive = the breaker taxed
    /// innocent apps).
    pub clamp_fairness_cost: f64,
    /// Perf/W lost by turning the breaker on under naive coordination.
    pub clamp_perf_cost: f64,
    /// Breaker activations in the naive/clamp arm.
    pub clamp_events: u64,
    /// Energy the naive/clamp arm's breakers refused, in joules.
    pub shed_joules: f64,
}

/// The `fig5 --enforce` data set, derived from [`FigureChaos`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureEnforce {
    /// One entry per chaos mix.
    pub scenarios: Vec<EnforceScenarioResult>,
}

/// Which regime a chaos cell runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ChaosArm {
    Uncoordinated,
    Coordinated {
        degradation: bool,
        enforcement: EnforcementMode,
    },
}

impl ChaosArm {
    pub(crate) const ALL: [ChaosArm; 5] = [
        ChaosArm::Uncoordinated,
        ChaosArm::Coordinated {
            degradation: false,
            enforcement: EnforcementMode::Audit,
        },
        ChaosArm::Coordinated {
            degradation: false,
            enforcement: EnforcementMode::Clamp,
        },
        ChaosArm::Coordinated {
            degradation: true,
            enforcement: EnforcementMode::Audit,
        },
        ChaosArm::Coordinated {
            degradation: true,
            enforcement: EnforcementMode::Clamp,
        },
    ];

    pub(crate) fn name(self) -> &'static str {
        match self {
            ChaosArm::Uncoordinated => "uncoordinated",
            ChaosArm::Coordinated {
                degradation: false,
                enforcement: EnforcementMode::Audit,
            } => "coordinated-naive/audit",
            ChaosArm::Coordinated {
                degradation: false,
                enforcement: EnforcementMode::Clamp,
            } => "coordinated-naive/clamp",
            ChaosArm::Coordinated {
                degradation: true,
                enforcement: EnforcementMode::Audit,
            } => "coordinated-degraded/audit",
            ChaosArm::Coordinated {
                degradation: true,
                enforcement: EnforcementMode::Clamp,
            } => "coordinated-degraded/clamp",
        }
    }
}

/// The watchdog thresholds a chaos cell runs: the defaults, with the
/// quarantine floor raised to the fleet's most expensive cheapest
/// configuration so an honest quarantined app (whose floor-capped decide
/// lands it in its cheapest configuration) can always requalify under the
/// overdraw rule, and the overdraw tolerance opened to 1.75x. The tolerance
/// has to clear the fleet's *steady-state* calibration error — on this
/// platform an honest app squeezed under a tight rack budget can draw
/// ~1.5x its award for as long as the squeeze lasts (the model believes
/// the cheap config it was put in, the rail disagrees) — while staying
/// under the 3x a deliberate misreporter shows at fault onset (the
/// market re-converges toward a self-consistent lie within a few quanta,
/// so the threshold must catch the transient before award inflation
/// closes the gap).
pub(crate) fn chaos_watchdog(apps: &[AppSim]) -> WatchdogConfig {
    let default = WatchdogConfig::default();
    WatchdogConfig {
        quarantine_floor_watts: apps
            .iter()
            .map(|sim| sim.launch_power_watts)
            .fold(default.quarantine_floor_watts, f64::max),
        overdraw_tolerance: 0.75,
        ..default
    }
}

/// Whether `kind` is visible to the watchdog's telemetry rules under
/// `config` (see [`ChaosAppOutcome::detectable`]).
fn watchdog_visible(kind: FaultKind, config: &WatchdogConfig) -> bool {
    match kind {
        FaultKind::StallHeartbeats | FaultKind::Crash | FaultKind::NonFiniteTelemetry => true,
        FaultKind::MisreportPower { factor } => factor > 1.0 + config.overdraw_tolerance,
        FaultKind::FreezeTelemetry => false,
    }
}

fn health_label(state: HealthState) -> &'static str {
    match state {
        HealthState::Healthy => "healthy",
        HealthState::Suspect => "suspect",
        HealthState::Quarantined => "quarantined",
        HealthState::Readmitted => "readmitted",
    }
}

/// The per-app decision state of one chaos regime.
enum ChaosControl {
    Uncoordinated(Box<UncoordinatedRuntime>, HeartbeatedWorkload),
    /// Handle within the app's rack coordinator.
    Managed(Option<AppHandle>),
}

/// Runs one (scenario, regime) chaos cell.
///
/// Every coordinated regime uses the rack → datacenter hierarchy (a
/// single-rack scenario is simply a one-rack datacenter), so the same
/// runner measures machine-level storms and rack-level rogues. Physical
/// accounting follows [`crate::fig5::run_hierarchy_cell`]: racks admit
/// the rail draw first ([`RackCoordinator::admit`] — the enforcement
/// point), the datacenter meter and attainment accumulate the admitted
/// truth, and coordinators receive only what the fault plan lets each app
/// claim.
pub(crate) fn run_chaos_cell(
    server: &XeonServer,
    scenario: &Scenario,
    arm: ChaosArm,
    seed: u64,
    observer: Option<&Arc<Recorder>>,
) -> ChaosArmOutcome {
    let started = Instant::now();
    let mut peak_fleet: u64 = 0;
    let mut apps = build_apps(server, scenario);
    let racks = scenario.rack_count();
    let budget_range = (server.max_power_watts() - server.idle_power_watts()) * racks as f64;
    let budget = datacenter_budget_watts(server, scenario);
    let mut meter = MachineMeter::new(budget);
    let mut faults = FaultRuntime::for_plan(&scenario.fault_plan, apps.len());
    let watchdog = chaos_watchdog(&apps);

    let mut datacenter_state: Option<DatacenterArbiter> = match arm {
        ChaosArm::Uncoordinated => None,
        ChaosArm::Coordinated {
            degradation,
            enforcement,
        } => {
            let mut datacenter =
                DatacenterArbiter::new(budget, Box::new(PerformanceMarket::default()));
            for rack in 0..racks {
                let mut coordinator =
                    Coordinator::new(budget, Box::new(PerformanceMarket::default()))
                        .with_pool(std::sync::Arc::clone(exec::global_pool_arc()));
                if degradation {
                    coordinator = coordinator
                        .with_watchdog(watchdog)
                        .with_admission_control(true);
                }
                datacenter.add_rack(
                    RackCoordinator::new(format!("rack-{rack}"), coordinator)
                        .with_enforcement(enforcement),
                );
            }
            Some(datacenter)
        }
    };
    if let (Some(observer), Some(datacenter)) = (observer, datacenter_state.as_mut()) {
        datacenter.set_obs(Some(Arc::clone(observer)));
    }

    let mut controllers: Vec<ChaosControl> = apps
        .iter()
        .enumerate()
        .map(|(index, sim)| match arm {
            ChaosArm::Uncoordinated => {
                let driver = heartbeated(sim);
                let runtime = UncoordinatedRuntime::new_with(
                    &driver.monitor(),
                    xeon_actuators(server),
                    seed.wrapping_add(index as u64),
                    tuned,
                )
                .expect("actuators registered");
                ChaosControl::Uncoordinated(Box::new(runtime), driver)
            }
            ChaosArm::Coordinated { .. } => ChaosControl::Managed(None),
        })
        .collect();

    let mut now = 0.0;
    let mut per_app_power = vec![0.0f64; apps.len()];
    let mut rates = vec![0.0f64; apps.len()];
    let mut rack_core_duty = vec![0.0f64; racks];
    for quantum in 0..scenario.quanta {
        let start = now;
        now += QUANTUM_SECONDS;

        // ---- Lifecycle: budget steps bind the meter; arrivals register
        // with their rack, departures retire.
        let cap = scenario.budget_fraction_at(quantum) * budget_range;
        if cap != meter.cap_watts() {
            meter.set_cap(cap);
        }
        if let Some(datacenter) = datacenter_state.as_mut() {
            for (index, sim) in apps.iter().enumerate() {
                let never_active = sim.spec.departure.is_some_and(|d| d <= sim.spec.arrival);
                if sim.spec.arrival == quantum && !never_active {
                    let managed = managed_for(server, sim, seed, index);
                    controllers[index] = ChaosControl::Managed(Some(
                        datacenter.rack_mut(sim.spec.rack).register(managed),
                    ));
                }
                if sim.spec.departure == Some(quantum) {
                    if let ChaosControl::Managed(Some(handle)) = controllers[index] {
                        datacenter.rack_mut(sim.spec.rack).retire(handle);
                    }
                }
            }

            // ---- Arbitrate and decide at the start of the quantum (the
            // hierarchy discipline): envelopes bind before any watt is
            // drawn, budget steps included.
            if cap != datacenter.budget_watts() {
                datacenter.set_budget(cap);
            }
            datacenter.step(start).expect("every app declares a goal");
        }

        // ---- Evaluate every active app under its current configuration.
        rack_core_duty.fill(0.0);
        let mut active_count: u64 = 0;
        for (index, sim) in apps.iter().enumerate() {
            per_app_power[index] = 0.0;
            rates[index] = 0.0;
            if !sim.active_at(quantum) {
                continue;
            }
            active_count += 1;
            if faults.as_ref().is_some_and(|f| !f.executes(index, quantum)) {
                continue; // crashed: no cycles, no watts
            }
            let configuration = match &controllers[index] {
                ChaosControl::Uncoordinated(runtime, _) => {
                    map_configuration(server, &runtime.joint_configuration())
                }
                ChaosControl::Managed(handle) => {
                    let handle = handle.expect("active apps have registered");
                    let datacenter = datacenter_state.as_ref().expect("coordinated arm");
                    map_configuration(
                        server,
                        datacenter
                            .rack(sim.spec.rack)
                            .coordinator()
                            .app(handle)
                            .runtime()
                            .current_configuration(),
                    )
                }
            };
            let report = server.evaluate(&to_server_demand(sim.demand_at(quantum)), &configuration);
            rates[index] = report.work_units / report.seconds;
            per_app_power[index] = report.power_above_idle_watts;
            rack_core_duty[sim.spec.rack] +=
                configuration.cores as f64 * configuration.active_cycle_fraction;
        }

        // ---- Time-multiplex each rack's machine independently.
        let rack_contention: Vec<f64> = rack_core_duty
            .iter()
            .map(|&duty| {
                if duty > server.total_cores() as f64 {
                    server.total_cores() as f64 / duty
                } else {
                    1.0
                }
            })
            .collect();

        let mut machine_power = 0.0;
        for (index, sim) in apps.iter_mut().enumerate() {
            if !sim.active_at(quantum) {
                continue;
            }
            let contention = rack_contention[sim.spec.rack];
            let mut work = rates[index] * contention * QUANTUM_SECONDS;
            let mut power = per_app_power[index] * contention;
            // The rack admits the rail draw first: under Clamp the breaker
            // physically gates the app, so the admitted values *are* the
            // ground truth everything downstream meters.
            if let ChaosControl::Managed(Some(_)) = &controllers[index] {
                (work, power) = datacenter_state
                    .as_mut()
                    .expect("coordinated arm")
                    .rack_mut(sim.spec.rack)
                    .admit(start, now, work, power);
            }
            machine_power += power;
            sim.active_seconds += QUANTUM_SECONDS;
            sim.work_done += work;
            // Telemetry: whatever the fault plan lets the app claim about
            // the (possibly throttled) quantum it just ran.
            let report = match faults.as_mut() {
                None => Some((work, power)),
                Some(f) => f.report(index, quantum, work, power),
            };
            let Some((reported_work, reported_power)) = report else {
                continue; // stalled pipe or dead app: nothing arrives
            };
            match &mut controllers[index] {
                ChaosControl::Uncoordinated(_, driver) => {
                    driver.advance_metered(start, now, reported_work, reported_power);
                }
                ChaosControl::Managed(handle) => {
                    let handle = handle.expect("active apps have registered");
                    datacenter_state
                        .as_mut()
                        .expect("coordinated arm")
                        .rack_mut(sim.spec.rack)
                        .advance_report(handle, start, now, reported_work, reported_power);
                }
            }
        }
        peak_fleet = peak_fleet.max(active_count);
        let violations_before = meter.violation_intervals();
        meter.record(QUANTUM_SECONDS, machine_power);
        if let Some(observer) = observer {
            observer.observe_fleet_size(active_count);
            observer.add(
                Counter::DatacenterMeterViolations,
                meter.violation_intervals() - violations_before,
            );
        }

        // ---- Uncoordinated apps decide at end of quantum.
        for (index, sim) in apps.iter().enumerate() {
            if !sim.active_at(quantum) {
                continue;
            }
            if let ChaosControl::Uncoordinated(runtime, _) = &mut controllers[index] {
                runtime.decide(now).expect("goal declared");
            }
        }
    }

    // ---- Per-app verdicts.
    let app_outcomes: Vec<ChaosAppOutcome> = apps
        .iter()
        .enumerate()
        .map(|(index, sim)| {
            let first_fault = scenario
                .fault_plan
                .faults
                .iter()
                .filter(|fault| fault.app == index)
                .map(|fault| fault.from)
                .min();
            let detectable = scenario
                .fault_plan
                .faults
                .iter()
                .any(|fault| fault.app == index && watchdog_visible(fault.kind, &watchdog));
            let (health, quarantined_at, readmitted_at) = match &controllers[index] {
                ChaosControl::Uncoordinated(..) => ("unmanaged".to_string(), None, None),
                ChaosControl::Managed(Some(handle)) => {
                    let datacenter = datacenter_state.as_ref().expect("coordinated arm");
                    let app = datacenter.rack(sim.spec.rack).coordinator().app(*handle);
                    (
                        health_label(app.health_state()).to_string(),
                        app.quarantined_at(),
                        app.readmitted_at(),
                    )
                }
                ChaosControl::Managed(None) => ("healthy".to_string(), None, None),
            };
            ChaosAppOutcome {
                index,
                faulty: scenario.fault_plan.targets_app(index),
                detectable,
                health,
                quarantined_at,
                time_to_quarantine: quarantined_at
                    .zip(first_fault)
                    .map(|(quarantined, from)| quarantined.saturating_sub(from)),
                readmitted_at,
                attainment: sim.attainment(),
            }
        })
        .collect();

    // ---- Arm aggregates.
    let attainments: Vec<f64> = apps.iter().map(AppSim::attainment).collect();
    let goal_attainment = attainments.iter().sum::<f64>() / attainments.len().max(1) as f64;
    let healthy: Vec<f64> = app_outcomes
        .iter()
        .filter(|app| !app.faulty)
        .map(|app| app.attainment)
        .collect();
    let healthy_attainment = if healthy.is_empty() {
        goal_attainment
    } else {
        healthy.iter().sum::<f64>() / healthy.len() as f64
    };
    let mean_power = meter.mean_watts();
    let performance_per_watt = if mean_power > 0.0 {
        attainments.iter().sum::<f64>() / mean_power
    } else {
        0.0
    };
    let (max_rack_violation_rate, clamp_events, shed_joules) = datacenter_state
        .as_ref()
        .map_or((0.0, 0, 0.0), |datacenter| {
            datacenter.racks().iter().fold(
                (0.0f64, 0u64, 0.0f64),
                |(violation, events, shed), rack| {
                    (
                        violation.max(rack.meter().violation_rate()),
                        events + rack.clamp_events(),
                        shed + rack.shed_joules(),
                    )
                },
            )
        });
    ChaosArmOutcome {
        name: arm.name().to_string(),
        cap_violation_rate: meter.violation_rate(),
        max_rack_violation_rate,
        mean_power_watts: mean_power,
        performance_per_watt,
        goal_attainment,
        healthy_attainment,
        faulty_apps: app_outcomes.iter().filter(|app| app.faulty).count(),
        quarantined_apps: app_outcomes
            .iter()
            .filter(|app| app.quarantined_at.is_some())
            .count(),
        false_quarantines: app_outcomes
            .iter()
            .filter(|app| app.quarantined_at.is_some() && !app.faulty)
            .count(),
        max_time_to_quarantine: app_outcomes
            .iter()
            .filter(|app| app.detectable)
            .filter_map(|app| app.time_to_quarantine)
            .max(),
        clamp_events,
        shed_joules,
        apps: app_outcomes,
        runtime: RuntimeBlock::measure(started, scenario.quanta, peak_fleet),
    }
}

impl FigureChaos {
    /// Runs the chaos experiment with the workspace's canonical seed.
    pub fn compute() -> Self {
        FigureChaos::compute_with(2012)
    }

    /// [`Self::compute`] for an explicit seed.
    pub fn compute_with(seed: u64) -> Self {
        FigureChaos::compute_scenarios(&chaos_mixes(seed), seed)
    }

    /// [`Self::compute`] with telemetry attached (the `fig5 --chaos
    /// --obs` path).
    pub fn compute_obs() -> (Self, ObsSnapshot) {
        let (figure, snapshot) =
            FigureChaos::compute_scenarios_obs(&chaos_mixes(2012), 2012, true);
        (figure, snapshot.expect("observe=true yields a snapshot"))
    }

    /// Runs the experiment over explicit scenarios. Every
    /// (scenario, regime) pair is one worker cell with a seed derived from
    /// `(seed, scenario, regime)`, so results are identical regardless of
    /// worker count or interleaving.
    pub fn compute_scenarios(scenarios: &[Scenario], seed: u64) -> Self {
        FigureChaos::compute_scenarios_obs(scenarios, seed, false).0
    }

    /// [`Self::compute_scenarios`] with telemetry (see
    /// [`crate::fig5::Figure5::compute_scenarios_obs`] for the merge
    /// contract).
    pub fn compute_scenarios_obs(
        scenarios: &[Scenario],
        seed: u64,
        observe: bool,
    ) -> (Self, Option<ObsSnapshot>) {
        let server = XeonServer::dell_r410_calibrated();
        let arms = ChaosArm::ALL;
        let cells: Vec<(ChaosArmOutcome, Option<ObsSnapshot>)> =
            run_cells(scenarios.len() * arms.len(), |index| {
                let scenario = &scenarios[index / arms.len()];
                let arm = arms[index % arms.len()];
                let cell_seed = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(0xc4a0_5000)
                    .wrapping_add(index as u64);
                let recorder = observe.then(|| Arc::new(Recorder::in_memory()));
                let outcome = run_chaos_cell(&server, scenario, arm, cell_seed, recorder.as_ref());
                let snapshot = recorder.map(|recorder| recorder.snapshot());
                (outcome, snapshot)
            });
        let snapshot = observe.then(|| {
            let mut merged = ObsSnapshot::empty();
            for (_, cell) in &cells {
                if let Some(cell) = cell {
                    merged.merge(cell);
                }
            }
            merged
        });
        let scenarios = scenarios
            .iter()
            .zip(cells.chunks(arms.len()))
            .map(|(scenario, outcomes)| ChaosScenarioResult {
                name: scenario.name.clone(),
                apps: scenario.apps.len(),
                racks: scenario.rack_count(),
                quanta: scenario.quanta,
                budget_watts: datacenter_budget_watts(&server, scenario),
                uncoordinated: outcomes[0].0.clone(),
                naive_audit: outcomes[1].0.clone(),
                naive_clamp: outcomes[2].0.clone(),
                degraded_audit: outcomes[3].0.clone(),
                degraded_clamp: outcomes[4].0.clone(),
            })
            .collect();
        (FigureChaos { scenarios }, snapshot)
    }

    /// The figure with every arm's wall-clock timing zeroed — the form
    /// determinism tests compare.
    pub fn canonical(&self) -> Self {
        FigureChaos {
            scenarios: self
                .scenarios
                .iter()
                .map(ChaosScenarioResult::canonical)
                .collect(),
        }
    }

    /// Renders the figure as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "scenario       regime                      viol%  rack%  goal%  hlthy%  quar  falseQ  maxTTQ  clamps   shedJ\n",
        );
        for scenario in &self.scenarios {
            let rows = [
                &scenario.uncoordinated,
                &scenario.naive_audit,
                &scenario.naive_clamp,
                &scenario.degraded_audit,
                &scenario.degraded_clamp,
            ];
            for (i, arm) in rows.iter().enumerate() {
                let label = if i == 0 {
                    format!("{} ({})", scenario.name, scenario.apps)
                } else {
                    String::new()
                };
                let ttq = arm
                    .max_time_to_quarantine
                    .map_or("     -".to_string(), |q| format!("{q:6}"));
                out.push_str(&format!(
                    "{label:14} {:26} {:6.1} {:6.1} {:6.1} {:7.1} {:5} {:7} {ttq} {:7} {:7.1}\n",
                    arm.name,
                    arm.cap_violation_rate * 100.0,
                    arm.max_rack_violation_rate * 100.0,
                    arm.goal_attainment * 100.0,
                    arm.healthy_attainment * 100.0,
                    arm.quarantined_apps,
                    arm.false_quarantines,
                    arm.clamp_events,
                    arm.shed_joules,
                ));
            }
        }
        out
    }
}

impl FigureEnforce {
    /// Runs the enforcement comparison with the workspace's canonical
    /// seed.
    pub fn compute() -> Self {
        FigureEnforce::compute_with(2012)
    }

    /// [`Self::compute`] for an explicit seed.
    pub fn compute_with(seed: u64) -> Self {
        FigureEnforce::from_chaos(&FigureChaos::compute_with(seed))
    }

    /// Derives the enforcement summary from a computed [`FigureChaos`].
    pub fn from_chaos(chaos: &FigureChaos) -> Self {
        let scenarios = chaos
            .scenarios
            .iter()
            .map(|scenario| EnforceScenarioResult {
                name: scenario.name.clone(),
                audit_overdraw_rate: scenario.naive_audit.max_rack_violation_rate,
                clamp_overdraw_rate: scenario.naive_clamp.max_rack_violation_rate,
                degraded_audit_overdraw_rate: scenario.degraded_audit.max_rack_violation_rate,
                degraded_clamp_overdraw_rate: scenario.degraded_clamp.max_rack_violation_rate,
                clamp_fairness_cost: scenario.naive_audit.healthy_attainment
                    - scenario.naive_clamp.healthy_attainment,
                clamp_perf_cost: scenario.naive_audit.performance_per_watt
                    - scenario.naive_clamp.performance_per_watt,
                clamp_events: scenario.naive_clamp.clamp_events,
                shed_joules: scenario.naive_clamp.shed_joules,
            })
            .collect();
        FigureEnforce { scenarios }
    }

    /// Renders the summary as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "scenario       audit%  clamp%  degr-audit%  degr-clamp%  fairness-cost  perf-cost  clamps   shedJ\n",
        );
        for scenario in &self.scenarios {
            out.push_str(&format!(
                "{:14} {:6.1} {:7.1} {:12.1} {:12.1} {:14.4} {:10.4} {:7} {:7.1}\n",
                scenario.name,
                scenario.audit_overdraw_rate * 100.0,
                scenario.clamp_overdraw_rate * 100.0,
                scenario.degraded_audit_overdraw_rate * 100.0,
                scenario.degraded_clamp_overdraw_rate * 100.0,
                scenario.clamp_fairness_cost,
                scenario.clamp_perf_cost,
                scenario.clamp_events,
                scenario.shed_joules,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full chaos mixes at the canonical seed: degradation holds the
    /// physical datacenter cap, quarantines every watchdog-visible fault
    /// within the ladder's window, readmits the transient one, and the
    /// breaker zeroes rack overdraw wherever audit records it.
    #[test]
    fn degradation_contains_the_chaos_mixes() {
        let fig = FigureChaos::compute();
        assert_eq!(fig.scenarios.len(), 2);

        for scenario in &fig.scenarios {
            // Robustness knobs must not smuggle violations *in*: with the
            // breaker on, the rack meters record admitted power and can
            // never show overdraw.
            assert_eq!(
                scenario.naive_clamp.max_rack_violation_rate, 0.0,
                "{}: the breaker zeroes rack overdraw",
                scenario.name
            );
            assert_eq!(
                scenario.degraded_clamp.max_rack_violation_rate, 0.0,
                "{}: degradation + breaker zeroes rack overdraw",
                scenario.name
            );
            // The full degradation stack holds the physical datacenter cap.
            assert_eq!(
                scenario.degraded_clamp.cap_violation_rate, 0.0,
                "{}: degraded+clamp must hold the datacenter cap",
                scenario.name
            );
            // Every watchdog-visible faulty app lands in quarantine within
            // the ladder's window (worst rule threshold + persistence),
            // and the watchdog never quarantines a healthy app.
            let watchdog = WatchdogConfig::default();
            let window = watchdog.stale_beat_quanta.max(watchdog.overdraw_quanta) + 8;
            for arm in [&scenario.degraded_audit, &scenario.degraded_clamp] {
                for app in arm.apps.iter().filter(|app| app.detectable) {
                    assert!(
                        app.quarantined_at.is_some(),
                        "{}/{}: detectable app {} must be quarantined",
                        scenario.name,
                        arm.name,
                        app.index
                    );
                    assert!(
                        app.time_to_quarantine.unwrap() <= window,
                        "{}/{}: app {} quarantined after {:?} quanta (window {window})",
                        scenario.name,
                        arm.name,
                        app.index,
                        app.time_to_quarantine
                    );
                }
                assert_eq!(
                    arm.false_quarantines, 0,
                    "{}/{}: no healthy app may be quarantined",
                    scenario.name, arm.name
                );
            }
            // Naive coordination quarantines nothing (the knob is off).
            assert_eq!(scenario.naive_audit.quarantined_apps, 0);
        }

        // The storm's transient stall (app 6, quanta 8..16) must recover:
        // quarantined during the outage, readmitted after it clears.
        let storm = &fig.scenarios[0];
        assert_eq!(storm.name, "fault-storm");
        let transient = &storm.degraded_audit.apps[6];
        assert!(transient.quarantined_at.is_some(), "{transient:?}");
        assert!(
            transient.readmitted_at.is_some(),
            "the transient stall must be readmitted once clean: {transient:?}"
        );

        // The rogue rack's under-reporter is invisible to telemetry rules
        // (it *under*-claims) — that containment is the breaker's job, and
        // audit mode records the overdraw the breaker would have refused.
        let rogues = &fig.scenarios[1];
        assert_eq!(rogues.name, "rack-rogues");
        assert!(
            !rogues.degraded_audit.apps[0].detectable,
            "an under-reporter evades every telemetry rule"
        );
        assert!(
            rogues.naive_audit.max_rack_violation_rate > 0.0,
            "audit must record the rogue rack's overdraw, got {:.3}",
            rogues.naive_audit.max_rack_violation_rate
        );
        assert!(
            rogues.naive_clamp.clamp_events > 0 && rogues.naive_clamp.shed_joules > 0.0,
            "the breaker must actually fire on the rogue rack"
        );

        // The enforcement summary is a pure projection of the same run.
        let enforce = FigureEnforce::from_chaos(&fig);
        assert_eq!(enforce.scenarios.len(), 2);
        assert!(enforce.scenarios[1].audit_overdraw_rate > 0.0);
        assert_eq!(enforce.scenarios[1].clamp_overdraw_rate, 0.0);
        assert!(fig.to_table().contains("coordinated-degraded/clamp"));
        assert!(enforce.to_table().contains("rack-rogues"));
    }

    #[test]
    fn chaos_cells_are_deterministic() {
        let scenarios = chaos_mixes(7);
        let a = FigureChaos::compute_scenarios(&scenarios, 7);
        let b = FigureChaos::compute_scenarios(&scenarios, 7);
        assert_eq!(a.canonical(), b.canonical());
        let c = FigureChaos::compute_scenarios(&scenarios, 8);
        assert_ne!(a.canonical(), c.canonical(), "different seeds must differ");
    }

    /// The acceptance cross-check for `fig5 --chaos --obs`: the merged
    /// telemetry snapshot reconciles exactly with the arm summaries, and
    /// observing changes nothing.
    #[test]
    fn chaos_telemetry_reconciles_with_arm_summaries() {
        // The canonical seed: `degradation_contains_the_chaos_mixes` pins
        // that it quarantines apps and trips breakers.
        let scenarios = chaos_mixes(2012);
        let baseline = FigureChaos::compute_scenarios(&scenarios, 2012);
        let (observed, snapshot) = FigureChaos::compute_scenarios_obs(&scenarios, 2012, true);
        assert_eq!(baseline.canonical(), observed.canonical());
        let snapshot = snapshot.expect("observe=true returns a snapshot");

        let arms = |s: &ChaosScenarioResult| {
            [
                s.uncoordinated.clone(),
                s.naive_audit.clone(),
                s.naive_clamp.clone(),
                s.degraded_audit.clone(),
                s.degraded_clamp.clone(),
            ]
        };
        // First-time quarantines: the counter matches the figure's
        // quarantined-app totals across every cell.
        let quarantined: u64 = observed
            .scenarios
            .iter()
            .flat_map(|s| arms(s).map(|arm| arm.quarantined_apps as u64))
            .sum();
        assert_eq!(snapshot.counter(Counter::Quarantines), quarantined);
        assert!(quarantined > 0, "the chaos mixes must quarantine someone");
        // Breaker activity: clamp counter and EnvelopeClamp events both
        // match the summed per-rack clamp_events.
        let clamps: u64 = observed
            .scenarios
            .iter()
            .flat_map(|s| arms(s).map(|arm| arm.clamp_events))
            .sum();
        assert_eq!(snapshot.counter(Counter::ClampEvents), clamps);
        let clamp_event_stream = snapshot
            .events
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::EnvelopeClamp { .. }))
            .count() as u64;
        assert_eq!(clamp_event_stream, clamps);
        assert!(clamps > 0, "the rogue mixes must trip a breaker");
        // Datacenter meter violations fold back to the cap-violation
        // rates (one interval per quantum).
        let violations: u64 = observed
            .scenarios
            .iter()
            .flat_map(|s| {
                arms(s)
                    .map(|arm| (arm.cap_violation_rate * s.quanta as f64).round() as u64)
            })
            .sum();
        assert_eq!(
            snapshot.counter(Counter::DatacenterMeterViolations),
            violations
        );
        // Health transitions: at least one Suspect→Quarantined transition
        // appears in the event stream, stamped with a coordinator quantum.
        let transitions = snapshot
            .events
            .iter()
            .filter(
                |e| matches!(&e.kind, obs::EventKind::HealthTransition { to, .. } if to == "Quarantined"),
            )
            .count() as u64;
        assert!(
            transitions >= quarantined,
            "every first quarantine is a ladder transition into Quarantined \
             (re-quarantines may add more): {transitions} < {quarantined}"
        );
        // Decisions reconcile with the timed histogram.
        assert_eq!(
            snapshot.stage(obs::Stage::Decision).count,
            snapshot.counter(Counter::AppsDecided)
        );
    }
}
