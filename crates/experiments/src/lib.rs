//! # Experiment harness: baselines, oracles, sweeps, and figure generators
//!
//! This crate reproduces the evaluation of *Self-aware Computing in the
//! Angstrom Processor* (DAC 2012, §2 and §5):
//!
//! * [`fig2`] — the closed-adaptive-systems experiment (Figure 2): `barnes`
//!   on a 64-core Graphite-style multicore swept over core counts and cache
//!   sizes, with the Pareto frontier and the points a cache-only or
//!   core-only closed system would pick.
//! * [`fig3`] — SEEC on the existing Linux/x86 Xeon server (Figure 3): the
//!   five SPLASH-2 benchmarks requesting half their maximum performance,
//!   compared across no adaptation, uncoordinated adaptation, SEEC, the
//!   static oracle, and the dynamic oracle, as performance per watt beyond
//!   idle normalised to the dynamic oracle.
//! * [`fig4`] — anticipated SEEC results on the 256-core Angstrom (Figure 4):
//!   no adaptation, static oracle, and predicted SEEC (static oracle scaled
//!   by the SEEC-vs-static-oracle multiplier measured in Figure 3).
//! * [`fig5`] — reproduction-specific: many self-aware applications sharing
//!   the calibrated R410 under a machine power budget, comparing
//!   no-adaptation / uncoordinated composition / per-app SEEC / coordinated
//!   SEEC (the [`coordinator`] subsystem) on goal-weighted perf/W and
//!   cap-violation rate.
//! * [`fleet`] — reproduction-specific: the million-app fleet-scaling
//!   harness behind `fig5 --fleet N`, driving the coordinator's incremental
//!   arbitration engine directly over synthetic request arrays with a
//!   built-in full-vs-tolerance-0 differential check.
//! * [`ablation`] — design-choice ablations this reproduction calls out in
//!   DESIGN.md: partner-core decision placement, adaptive NoC features, and
//!   adaptive cache coherence.
//!
//! Lower-level pieces — demand conversion ([`driver`]), exhaustive
//! configuration sweeps ([`sweep`]), and Pareto analysis ([`pareto`]) — are
//! public so examples and benches can reuse them.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ablation;
pub mod chaos;
pub mod driver;
mod faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fleet;
pub mod fuzz;
pub mod pareto;
pub mod sweep;

pub use fig2::Figure2;
pub use fig3::{Figure3, Figure3Row};
pub use fig4::{Figure4, Figure4Row};
pub use chaos::{FigureChaos, FigureEnforce};
pub use fig5::{ArmOutcome, Figure5, Figure5Hierarchy, Figure5Scenario, HierarchyScenario, RuntimeBlock};
pub use fleet::FleetScalingReport;
