//! Harness-side interpretation of a scenario's [`FaultPlan`].
//!
//! The plan only *describes* misbehaviour; this module is where the
//! experiment harnesses act it out. Per quantum and per app, the runtime
//! answers two questions:
//!
//! * does the app **execute** this quantum? ([`FaultRuntime::executes`] —
//!   a crashed app stops running and drawing power, everything else keeps
//!   executing);
//! * what telemetry, if any, reaches the platform?
//!   ([`FaultRuntime::report`] — stalls and crashes report nothing,
//!   freezes replay the last pre-fault report, the rest corrupt the
//!   ground truth).
//!
//! The split matters for the metrics: the machine meter and the
//! goal-attainment accumulators always see *physical* truth (what was
//! actually drawn and done), while the coordinator sees only what the
//! faulty app chose to report — which is precisely the gap its watchdog
//! ladder has to detect from the outside.

use workloads::FaultPlan;

/// Interprets one scenario's [`FaultPlan`] over the run, tracking the
/// per-app frozen telemetry [`workloads::FaultKind::FreezeTelemetry`]
/// replays. Construct via [`FaultRuntime::for_plan`]; harnesses hold an
/// `Option<FaultRuntime>` so fault-free scenarios take byte-identical
/// code paths.
pub(crate) struct FaultRuntime<'a> {
    plan: &'a FaultPlan,
    /// Last pre-fault `(work, power)` report per app, captured while the
    /// app reports honestly and replayed verbatim during a freeze window.
    frozen: Vec<Option<(f64, f64)>>,
}

impl<'a> FaultRuntime<'a> {
    /// A runtime for `plan` over `apps` applications, or `None` when the
    /// plan schedules nothing (the fault-free fast path).
    pub(crate) fn for_plan(plan: &'a FaultPlan, apps: usize) -> Option<Self> {
        (!plan.is_empty()).then(|| FaultRuntime {
            plan,
            frozen: vec![None; apps],
        })
    }

    /// Whether `app` physically executes (and draws power) at `quantum`.
    pub(crate) fn executes(&self, app: usize, quantum: usize) -> bool {
        self.plan
            .active_fault(app, quantum)
            .is_none_or(|kind| !kind.halts_execution())
    }

    /// The telemetry report the platform receives for `app` at `quantum`,
    /// given the physical `(work, power)` the quantum produced. `None`
    /// means no report arrives at all (stalled pipe, dead app).
    pub(crate) fn report(
        &mut self,
        app: usize,
        quantum: usize,
        work: f64,
        power: f64,
    ) -> Option<(f64, f64)> {
        match self.plan.active_fault(app, quantum) {
            None => {
                self.frozen[app] = Some((work, power));
                Some((work, power))
            }
            Some(kind) => kind.corrupt_telemetry(work, power, self.frozen[app]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{AppFault, FaultKind};

    #[test]
    fn fault_free_plans_have_no_runtime() {
        assert!(FaultRuntime::for_plan(&FaultPlan::default(), 4).is_none());
    }

    #[test]
    fn freeze_replays_the_last_honest_report() {
        let plan = FaultPlan {
            faults: vec![AppFault {
                app: 0,
                kind: FaultKind::FreezeTelemetry,
                from: 2,
                until: Some(4),
            }],
        };
        let mut runtime = FaultRuntime::for_plan(&plan, 2).unwrap();
        assert_eq!(runtime.report(0, 0, 10.0, 5.0), Some((10.0, 5.0)));
        assert_eq!(runtime.report(0, 1, 12.0, 6.0), Some((12.0, 6.0)));
        // Frozen: the quantum-1 report replays regardless of ground truth.
        assert_eq!(runtime.report(0, 2, 99.0, 50.0), Some((12.0, 6.0)));
        assert_eq!(runtime.report(0, 3, 1.0, 1.0), Some((12.0, 6.0)));
        // Window closed: honest again, and the frozen value re-tracks.
        assert_eq!(runtime.report(0, 4, 7.0, 3.0), Some((7.0, 3.0)));
        // The untargeted app is untouched throughout.
        assert_eq!(runtime.report(1, 2, 4.0, 2.0), Some((4.0, 2.0)));
        assert!(runtime.executes(0, 2), "freezes keep executing");
    }

    #[test]
    fn crash_halts_execution_and_reports_nothing() {
        let plan = FaultPlan {
            faults: vec![AppFault {
                app: 1,
                kind: FaultKind::Crash,
                from: 1,
                until: None,
            }],
        };
        let mut runtime = FaultRuntime::for_plan(&plan, 2).unwrap();
        assert!(runtime.executes(1, 0));
        assert!(!runtime.executes(1, 1));
        assert!(!runtime.executes(1, 100), "crashes never clear");
        assert_eq!(runtime.report(1, 1, 10.0, 5.0), None);
    }
}
