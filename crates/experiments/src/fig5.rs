//! Figure 5 (reproduction-specific): many self-aware applications on one
//! machine, with and without platform arbitration.
//!
//! The paper's premise is that *many* applications each run their own
//! observe–decide–act loop while the platform arbitrates shared resources
//! (§2); §5.2's uncoordinated-composition pathology is what happens without
//! that arbitration. The original evaluation only measures one application
//! at a time, so this figure extends it: heterogeneous application mixes
//! (staggered arrivals/departures, phase-shifting workloads, priority
//! tiers — [`workloads::scenario_mixes`]) share the calibrated R410 under a
//! machine-level power budget, compared across four regimes:
//!
//! * **no adaptation** — every app runs the default (flat-out)
//!   configuration; the machine oversubscribes and blows through the cap.
//! * **uncoordinated composition** — each app runs one independent SEEC
//!   instance *per actuator* (§5.2's baseline), nobody watches the cap.
//! * **per-app SEEC** — each app runs one coordinated SEEC runtime, but
//!   there is no cross-application arbitration; apps meet their goals
//!   efficiently yet the sum still ignores the cap.
//! * **coordinated SEEC** — a [`coordinator::Coordinator`] arbitrates the
//!   budget every quantum (performance market by default; the static-share
//!   and weighted-fair policies are reported alongside) and every app
//!   decides under its awarded power envelope.
//!
//! Metrics are machine-level: goal-weighted throughput per watt above idle
//! (each app's delivered rate capped at its target and normalised by it,
//! summed, divided by mean machine power above idle) and the
//! cap-violation rate (fraction of simulated time the machine total
//! exceeded the budget, from [`xeon_sim::MachineMeter`]).
//!
//! The experiment uses [`XeonServer::dell_r410_calibrated`] and the convex
//! (goal-respecting) protocol of [`crate::fig3`]: under the linear default
//! model power is linear in utilisation, so a power cap would barely
//! distinguish the regimes.

use std::sync::Arc;
use std::time::Instant;

use coordinator::{
    AppHandle, ArbitrationPolicy, Coordinator, DatacenterArbiter, ManagedApp, PerformanceMarket,
    RackCoordinator, StaticShare, WeightedFair,
};
use obs::{Counter, ObsSnapshot, Recorder};
use seec::control::PiController;
use seec::{SeecRuntime, SeecRuntimeBuilder, UncoordinatedRuntime};
use serde::{Deserialize, Serialize};
use workloads::{
    extended_scenario_mixes, scenario_mixes, HeartbeatedWorkload, QuantumDemand, Scenario,
    Workload,
};
use xeon_sim::{MachineMeter, ServerConfiguration, XeonServer};

use crate::driver::{run_cells, to_server_demand};
use crate::faults::FaultRuntime;
use crate::fig3::{map_configuration, xeon_actuators, CONVEX_PROTOCOL_KI};

/// Length of one shared scheduling quantum, in seconds.
pub const QUANTUM_SECONDS: f64 = 1.0;

/// Beats each application should emit per quantum when exactly on target
/// (sets its work-per-beat granularity; the 64-beat window then spans eight
/// quanta).
const BEATS_PER_QUANTUM_AT_TARGET: f64 = 8.0;

/// Wall-clock accounting for one simulation cell, reported alongside the
/// simulated metrics. The timing fields are measurement-environment facts,
/// not simulation outputs: determinism checks compare
/// [`ArmOutcome::canonical`] forms, which zero them (the fleet gauge is
/// deterministic and survives).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeBlock {
    /// Wall-clock time the cell took to simulate, in seconds.
    pub wall_clock_seconds: f64,
    /// Simulated quanta per wall-clock second (0 when the clock read 0).
    pub quanta_per_second: f64,
    /// Largest number of simultaneously active applications in any
    /// quantum.
    pub peak_fleet_size: u64,
}

impl RuntimeBlock {
    pub(crate) fn measure(started: Instant, quanta: usize, peak_fleet_size: u64) -> Self {
        let wall_clock_seconds = started.elapsed().as_secs_f64();
        RuntimeBlock {
            wall_clock_seconds,
            quanta_per_second: if wall_clock_seconds > 0.0 {
                quanta as f64 / wall_clock_seconds
            } else {
                0.0
            },
            peak_fleet_size,
        }
    }

    /// The block with its wall-clock fields zeroed — the deterministic
    /// residue compared by determinism tests.
    pub fn canonical(&self) -> Self {
        RuntimeBlock {
            wall_clock_seconds: 0.0,
            quanta_per_second: 0.0,
            peak_fleet_size: self.peak_fleet_size,
        }
    }
}

/// One regime's machine-level outcome on one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmOutcome {
    /// Regime (or arbitration policy) name.
    pub name: String,
    /// Goal-weighted throughput per watt: `Σ_apps min(rate/target, 1)`
    /// divided by mean machine power above idle, in 1/W.
    pub performance_per_watt: f64,
    /// Mean over apps of `min(rate/target, 1)` — 1.0 when every app met
    /// its goal over its residency.
    pub goal_attainment: f64,
    /// Fraction of simulated time the machine total exceeded the budget.
    pub cap_violation_rate: f64,
    /// Mean machine power above idle, in watts.
    pub mean_power_watts: f64,
    /// Peak quantum machine power above idle, in watts.
    pub peak_power_watts: f64,
    /// Wall-clock accounting for the cell (zeroed under
    /// [`Self::canonical`]).
    pub runtime: RuntimeBlock,
}

impl ArmOutcome {
    /// The outcome with wall-clock timing zeroed; everything else — the
    /// simulated metrics and the peak-fleet gauge — must be bit-identical
    /// across reruns and with telemetry on or off.
    pub fn canonical(&self) -> Self {
        ArmOutcome {
            runtime: self.runtime.canonical(),
            ..self.clone()
        }
    }
}

/// One scenario's results across every regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure5Scenario {
    /// Scenario name (see [`workloads::scenario_mixes`]).
    pub name: String,
    /// Number of applications in the mix.
    pub apps: usize,
    /// Quanta simulated.
    pub quanta: usize,
    /// The arbitrated machine power budget (above idle), in watts.
    pub budget_watts: f64,
    /// No adaptation: every app flat out.
    pub no_adaptation: ArmOutcome,
    /// Uncoordinated composition: one SEEC instance per actuator per app.
    pub uncoordinated: ArmOutcome,
    /// Per-app SEEC without cross-application arbitration.
    pub per_app_seec: ArmOutcome,
    /// Coordinated SEEC under the performance-market policy (the headline
    /// regime).
    pub coordinated: ArmOutcome,
    /// The coordinated regime under every shipped arbitration policy
    /// (static-share, weighted-fair, performance-market).
    pub policies: Vec<ArmOutcome>,
}

impl Figure5Scenario {
    /// The scenario with every arm's wall-clock timing zeroed (see
    /// [`ArmOutcome::canonical`]).
    pub fn canonical(&self) -> Self {
        Figure5Scenario {
            name: self.name.clone(),
            apps: self.apps,
            quanta: self.quanta,
            budget_watts: self.budget_watts,
            no_adaptation: self.no_adaptation.canonical(),
            uncoordinated: self.uncoordinated.canonical(),
            per_app_seec: self.per_app_seec.canonical(),
            coordinated: self.coordinated.canonical(),
            policies: self.policies.iter().map(ArmOutcome::canonical).collect(),
        }
    }
}

/// The Figure-5 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure5 {
    /// One entry per scenario mix.
    pub scenarios: Vec<Figure5Scenario>,
}

/// Which regime a simulation cell runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Arm {
    NoAdaptation,
    Uncoordinated,
    PerAppSeec,
    CoordinatedMarket,
    CoordinatedStatic,
    CoordinatedWeighted,
}

impl Arm {
    pub(crate) const ALL: [Arm; 6] = [
        Arm::NoAdaptation,
        Arm::Uncoordinated,
        Arm::PerAppSeec,
        Arm::CoordinatedMarket,
        Arm::CoordinatedStatic,
        Arm::CoordinatedWeighted,
    ];

    pub(crate) fn name(self) -> &'static str {
        match self {
            Arm::NoAdaptation => "no-adaptation",
            Arm::Uncoordinated => "uncoordinated",
            Arm::PerAppSeec => "per-app-seec",
            Arm::CoordinatedMarket => "coordinated/performance-market",
            Arm::CoordinatedStatic => "coordinated/static-share",
            Arm::CoordinatedWeighted => "coordinated/weighted-fair",
        }
    }

    fn policy(self) -> Option<Box<dyn ArbitrationPolicy>> {
        match self {
            Arm::CoordinatedMarket => Some(Box::new(PerformanceMarket::default())),
            Arm::CoordinatedStatic => Some(Box::new(StaticShare)),
            Arm::CoordinatedWeighted => Some(Box::new(WeightedFair)),
            _ => None,
        }
    }
}

impl Figure5 {
    /// Runs the experiment with the workspace's canonical seed.
    pub fn compute() -> Self {
        Figure5::compute_with(2012)
    }

    /// Runs the experiment for an explicit seed. Every (scenario, regime)
    /// pair is one worker cell ([`run_cells`]) with a seed derived from
    /// `(seed, scenario, regime)`, so results are identical regardless of
    /// worker count or interleaving.
    pub fn compute_with(seed: u64) -> Self {
        Figure5::compute_scenarios(&scenario_mixes(seed), seed)
    }

    /// Runs the *extended* scenario family
    /// ([`workloads::extended_scenario_mixes`]) with the workspace's
    /// canonical seed: the 100-app arrival storm and the 1200-app
    /// stepped-budget mix, exercising runtime registration/retirement,
    /// mid-run budget steps, and the sharded coordinator. Kept separate
    /// from [`Self::compute`] so `fig5.json` stays byte-identical; the
    /// fig5 binary writes these to `fig5_extended.json` under
    /// `--extended`.
    pub fn compute_extended() -> Self {
        Figure5::compute_extended_with(2012)
    }

    /// [`Self::compute_extended`] for an explicit seed.
    pub fn compute_extended_with(seed: u64) -> Self {
        Figure5::compute_scenarios(&extended_scenario_mixes(seed), seed)
    }

    /// [`Self::compute`] with telemetry attached (the `fig5 --obs` path).
    pub fn compute_obs() -> (Self, ObsSnapshot) {
        let (figure, snapshot) = Figure5::compute_scenarios_obs(&scenario_mixes(2012), 2012, true);
        (figure, snapshot.expect("observe=true yields a snapshot"))
    }

    /// [`Self::compute_extended`] with telemetry attached.
    pub fn compute_extended_obs() -> (Self, ObsSnapshot) {
        let (figure, snapshot) =
            Figure5::compute_scenarios_obs(&extended_scenario_mixes(2012), 2012, true);
        (figure, snapshot.expect("observe=true yields a snapshot"))
    }

    /// Runs the experiment over explicit scenarios (tests use reduced
    /// mixes).
    pub fn compute_scenarios(scenarios: &[Scenario], seed: u64) -> Self {
        Figure5::compute_scenarios_obs(scenarios, seed, false).0
    }

    /// [`Self::compute_scenarios`] with telemetry: when `observe` is set,
    /// every cell runs under its own in-memory [`Recorder`] and the
    /// per-cell snapshots merge in cell-index order, so the combined
    /// stream is identical regardless of worker count. The figure itself
    /// is byte-identical either way — telemetry is read-only.
    pub fn compute_scenarios_obs(
        scenarios: &[Scenario],
        seed: u64,
        observe: bool,
    ) -> (Self, Option<ObsSnapshot>) {
        let server = XeonServer::dell_r410_calibrated();
        let arms = Arm::ALL;
        let cells: Vec<(ArmOutcome, Option<ObsSnapshot>)> =
            run_cells(scenarios.len() * arms.len(), |index| {
                let scenario = &scenarios[index / arms.len()];
                let arm = arms[index % arms.len()];
                let cell_seed = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(index as u64);
                let recorder = observe.then(|| Arc::new(Recorder::in_memory()));
                let outcome = run_arm(&server, scenario, arm, cell_seed, recorder.as_ref());
                let snapshot = recorder.map(|recorder| recorder.snapshot());
                (outcome, snapshot)
            });
        let snapshot = observe.then(|| {
            let mut merged = ObsSnapshot::empty();
            for (_, cell) in &cells {
                if let Some(cell) = cell {
                    merged.merge(cell);
                }
            }
            merged
        });
        let scenarios = scenarios
            .iter()
            .zip(cells.chunks(arms.len()))
            .map(|(scenario, outcomes)| Figure5Scenario {
                name: scenario.name.clone(),
                apps: scenario.apps.len(),
                quanta: scenario.quanta,
                budget_watts: budget_watts(&server, scenario),
                no_adaptation: outcomes[0].0.clone(),
                uncoordinated: outcomes[1].0.clone(),
                per_app_seec: outcomes[2].0.clone(),
                coordinated: outcomes[3].0.clone(),
                policies: vec![
                    outcomes[4].0.clone(),
                    outcomes[5].0.clone(),
                    outcomes[3].0.clone(),
                ],
            })
            .collect();
        (Figure5 { scenarios }, snapshot)
    }

    /// The figure with every arm's wall-clock timing zeroed — the form
    /// determinism tests compare (reruns agree bit-for-bit on everything
    /// except how long the simulation took to run).
    pub fn canonical(&self) -> Self {
        Figure5 {
            scenarios: self.scenarios.iter().map(Figure5Scenario::canonical).collect(),
        }
    }

    /// Renders the figure as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "scenario            regime                          perf/W  goal%  viol%  meanW  peakW\n",
        );
        for scenario in &self.scenarios {
            let mut rows: Vec<&ArmOutcome> = vec![
                &scenario.no_adaptation,
                &scenario.uncoordinated,
                &scenario.per_app_seec,
                &scenario.coordinated,
            ];
            rows.extend(scenario.policies.iter().take(2));
            for (i, arm) in rows.iter().enumerate() {
                let label = if i == 0 {
                    format!("{} ({} apps, {:.0} W)", scenario.name, scenario.apps, scenario.budget_watts)
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "{label:19} {:30}  {:6.4} {:6.1} {:6.1} {:6.1} {:6.1}\n",
                    arm.name,
                    arm.performance_per_watt,
                    arm.goal_attainment * 100.0,
                    arm.cap_violation_rate * 100.0,
                    arm.mean_power_watts,
                    arm.peak_power_watts,
                ));
            }
        }
        out
    }
}

/// The scenario's absolute power budget: its fraction of the machine's
/// full-load power above idle.
pub fn budget_watts(server: &XeonServer, scenario: &Scenario) -> f64 {
    scenario.power_budget_fraction * (server.max_power_watts() - server.idle_power_watts())
}

/// The scenario's absolute *datacenter* power budget: its fraction of the
/// datacenter's full-load power above idle, which is one machine's range
/// per rack. A datacenter of R racks brings R machines' worth of cores
/// *and* watts; applying the fraction to a single machine's range would
/// make large rack-tagged mixes infeasible by construction (even every app
/// parked in its cheapest configuration would exceed the cap).
pub fn datacenter_budget_watts(server: &XeonServer, scenario: &Scenario) -> f64 {
    budget_watts(server, scenario) * scenario.rack_count() as f64
}

/// Per-app simulation state shared by every regime.
pub(crate) struct AppSim {
    /// The scenario slot (activity window, weight, seed, benchmark); the
    /// single source of the half-open residency semantics
    /// ([`workloads::ScenarioApp::active_at`]).
    pub(crate) spec: workloads::ScenarioApp,
    pub(crate) phases: Vec<QuantumDemand>,
    /// Target work rate (work units per second): the app's solo maximum
    /// under the default configuration, scaled by its requested fraction.
    pub(crate) target_rate: f64,
    pub(crate) work_per_beat: f64,
    pub(crate) launch_power_watts: f64,
    // Accumulators over the app's residency.
    pub(crate) active_seconds: f64,
    pub(crate) work_done: f64,
}

impl AppSim {
    pub(crate) fn active_at(&self, quantum: usize) -> bool {
        self.spec.active_at(quantum)
    }

    pub(crate) fn demand_at(&self, quantum: usize) -> &QuantumDemand {
        &self.phases[(quantum - self.spec.arrival) % self.phases.len()]
    }

    /// `min(rate/target, 1)` over the app's residency.
    pub(crate) fn attainment(&self) -> f64 {
        if self.active_seconds <= 0.0 || self.target_rate <= 0.0 {
            return 0.0;
        }
        (self.work_done / self.active_seconds / self.target_rate).min(1.0)
    }
}

/// Builds the per-app simulation state for one scenario.
pub(crate) fn build_apps(server: &XeonServer, scenario: &Scenario) -> Vec<AppSim> {
    let launch = ServerConfiguration::new(1, server.pstates().len() - 1, 1.0);
    scenario
        .apps
        .iter()
        .map(|app| {
            let workload = Workload::new(app.benchmark, app.seed);
            let phases_len = scenario.quanta.max(8);
            let phases = workload.quanta(phases_len);
            let average = to_server_demand(&workload.average_quantum());
            let solo = server.evaluate(&average, &server.default_configuration());
            let target_rate = app.target_fraction * solo.work_units / solo.seconds;
            let launch_power = server.evaluate(&average, &launch).power_above_idle_watts;
            AppSim {
                spec: *app,
                phases,
                target_rate,
                work_per_beat: target_rate * QUANTUM_SECONDS / BEATS_PER_QUANTUM_AT_TARGET,
                launch_power_watts: launch_power,
                active_seconds: 0.0,
                work_done: 0.0,
            }
        })
        .collect()
}

/// The convex (goal-respecting) protocol tuning every closed-loop runtime
/// in this figure uses — anchored estimation plus the gentle
/// [`CONVEX_PROTOCOL_KI`] integral (see [`crate::fig3`]).
pub(crate) fn tuned(builder: SeecRuntimeBuilder) -> SeecRuntimeBuilder {
    builder
        .anchored_estimation(true)
        .controller(PiController::new(1.0, CONVEX_PROTOCOL_KI, 1.0 / 64.0, 64.0))
}

/// A heartbeat-instrumented driver for one scenario app, its goal set to
/// the scenario's target rate.
pub(crate) fn heartbeated(sim: &AppSim) -> HeartbeatedWorkload {
    let workload = Workload::new(sim.spec.benchmark, sim.spec.seed);
    let driver = HeartbeatedWorkload::with_work_per_beat(workload, sim.work_per_beat);
    driver.set_heart_rate_goal(sim.target_rate / sim.work_per_beat);
    driver
}

/// Builds the [`ManagedApp`] a coordinated arm registers for `sim` at its
/// arrival quantum.
pub(crate) fn managed_for(server: &XeonServer, sim: &AppSim, seed: u64, index: usize) -> ManagedApp {
    let driver = heartbeated(sim);
    let runtime = tuned(
        SeecRuntime::builder(driver.monitor())
            .actuators(xeon_actuators(server))
            .seed(seed.wrapping_add(index as u64)),
    )
    .build()
    .expect("actuators registered");
    ManagedApp::new(driver, runtime)
        .with_weight(sim.spec.weight)
        .with_arrival(sim.spec.arrival)
        .with_phases(sim.phases.clone())
        .with_nominal_power_hint(sim.launch_power_watts)
}

/// The per-app decision state of one regime.
enum Controller {
    Fixed,
    Uncoordinated(Box<UncoordinatedRuntime>, HeartbeatedWorkload),
    Solo(Box<SeecRuntime>, HeartbeatedWorkload),
    /// Decisions live in the shared coordinator; the app registers itself
    /// at its arrival quantum (the handle appears then) and retires at its
    /// departure — the runtime lifecycle, not an up-front fleet.
    Coordinated(Option<AppHandle>),
}

/// Runs one (scenario, regime) cell and reports machine-level outcomes.
///
/// When `observer` is attached it also records telemetry: the coordinator
/// streams its stage timings and lifecycle events through it, and the cell
/// counts machine-meter violations and the fleet gauge. Telemetry is
/// strictly read-only — the simulated outcome is bit-identical with or
/// without it.
pub(crate) fn run_arm(
    server: &XeonServer,
    scenario: &Scenario,
    arm: Arm,
    seed: u64,
    observer: Option<&Arc<Recorder>>,
) -> ArmOutcome {
    let started = Instant::now();
    let mut peak_fleet: u64 = 0;
    let mut apps = build_apps(server, scenario);
    let budget_range = server.max_power_watts() - server.idle_power_watts();
    let budget = budget_watts(server, scenario);
    let mut meter = MachineMeter::new(budget);
    // Fault-free scenarios carry no runtime and take byte-identical paths.
    let mut faults = FaultRuntime::for_plan(&scenario.fault_plan, apps.len());

    // Coordinated arms start from an *empty* coordinator: every app
    // registers at its arrival quantum and retires at its departure, so
    // churny mixes exercise the runtime lifecycle rather than a fleet
    // declared up front. The coordinator shares the process-wide
    // persistent pool (the same one this cell is running on — nested
    // dispatch degrades gracefully, and no extra threads are spawned);
    // the shard threshold (default 64 apps) decides per step whether the
    // registered fleet is big enough to fan out (bit-identical to
    // sequential, so this is invisible in the output).
    let mut coordinator_state: Option<Coordinator> = arm.policy().map(|policy| {
        Coordinator::new(budget, policy)
            .with_pool(std::sync::Arc::clone(exec::global_pool_arc()))
    });
    if let (Some(observer), Some(coordinator)) = (observer, coordinator_state.as_mut()) {
        coordinator.set_obs(Some(Arc::clone(observer)));
    }

    let mut controllers: Vec<Controller> = apps
        .iter()
        .enumerate()
        .map(|(index, sim)| match arm {
            Arm::NoAdaptation => Controller::Fixed,
            Arm::Uncoordinated => {
                let driver = heartbeated(sim);
                let runtime = UncoordinatedRuntime::new_with(
                    &driver.monitor(),
                    xeon_actuators(server),
                    seed.wrapping_add(index as u64),
                    tuned,
                )
                .expect("actuators registered");
                Controller::Uncoordinated(Box::new(runtime), driver)
            }
            Arm::PerAppSeec => {
                let driver = heartbeated(sim);
                let runtime = tuned(
                    SeecRuntime::builder(driver.monitor())
                        .actuators(xeon_actuators(server))
                        .seed(seed.wrapping_add(index as u64)),
                )
                .build()
                .expect("actuators registered");
                Controller::Solo(Box::new(runtime), driver)
            }
            _ => Controller::Coordinated(None),
        })
        .collect();

    let mut now = 0.0;
    let mut per_app_power = vec![0.0f64; apps.len()];
    let mut rates = vec![0.0f64; apps.len()];
    for quantum in 0..scenario.quanta {
        let start = now;
        now += QUANTUM_SECONDS;

        // ---- Lifecycle: arrivals register, departures retire, and the
        // meter adopts the budget fraction in force this quantum.
        let cap = scenario.budget_fraction_at(quantum) * budget_range;
        if cap != meter.cap_watts() {
            meter.set_cap(cap);
        }
        if let Some(coordinator) = coordinator_state.as_mut() {
            for (index, sim) in apps.iter().enumerate() {
                // A degenerate window (departure ≤ arrival) means the app is
                // never active; registering it would leave a phantom in the
                // coordinator with no departure ever stamped.
                let never_active = sim.spec.departure.is_some_and(|d| d <= sim.spec.arrival);
                if sim.spec.arrival == quantum && !never_active {
                    let managed = managed_for(server, sim, seed, index);
                    controllers[index] = Controller::Coordinated(Some(coordinator.register(managed)));
                }
                if sim.spec.departure == Some(quantum) {
                    if let Controller::Coordinated(Some(handle)) = controllers[index] {
                        coordinator.retire(handle);
                    }
                }
            }
        }

        // ---- Evaluate every active app under its current configuration.
        let mut core_duty_total = 0.0;
        let mut active_count: u64 = 0;
        for (index, sim) in apps.iter().enumerate() {
            per_app_power[index] = 0.0;
            rates[index] = 0.0;
            if !sim.active_at(quantum) {
                continue;
            }
            active_count += 1;
            if faults.as_ref().is_some_and(|f| !f.executes(index, quantum)) {
                continue; // crashed: no cycles, no watts
            }
            let configuration = match &controllers[index] {
                Controller::Fixed => server.default_configuration(),
                Controller::Uncoordinated(runtime, _) => {
                    map_configuration(server, &runtime.joint_configuration())
                }
                Controller::Solo(runtime, _) => {
                    map_configuration(server, runtime.current_configuration())
                }
                Controller::Coordinated(handle) => {
                    let handle = handle.expect("active apps have registered");
                    let coordinator = coordinator_state.as_ref().expect("coordinated arm");
                    map_configuration(
                        server,
                        coordinator.app(handle).runtime().current_configuration(),
                    )
                }
            };
            let report = server.evaluate(&to_server_demand(sim.demand_at(quantum)), &configuration);
            rates[index] = report.work_units / report.seconds;
            per_app_power[index] = report.power_above_idle_watts;
            core_duty_total += configuration.cores as f64 * configuration.active_cycle_fraction;
        }

        // ---- Time-multiplex an oversubscribed machine: delivered cycles
        // (work and dynamic power alike) scale down together.
        let contention = if core_duty_total > server.total_cores() as f64 {
            server.total_cores() as f64 / core_duty_total
        } else {
            1.0
        };

        let mut machine_power = 0.0;
        for (index, sim) in apps.iter_mut().enumerate() {
            if !sim.active_at(quantum) {
                continue;
            }
            let work = rates[index] * contention * QUANTUM_SECONDS;
            let power = per_app_power[index] * contention;
            machine_power += power;
            sim.active_seconds += QUANTUM_SECONDS;
            sim.work_done += work;
            // The meter and attainment saw physical truth above; the
            // platform sees only what the (possibly faulty) app reports.
            let report = match faults.as_mut() {
                None => Some((work, power)),
                Some(f) => f.report(index, quantum, work, power),
            };
            let Some((reported_work, reported_power)) = report else {
                continue; // stalled pipe or dead app: nothing arrives
            };
            match &mut controllers[index] {
                Controller::Fixed => {}
                Controller::Uncoordinated(_, driver) | Controller::Solo(_, driver) => {
                    driver.advance_metered(start, now, reported_work, reported_power);
                }
                Controller::Coordinated(handle) => {
                    let handle = handle.expect("active apps have registered");
                    let coordinator = coordinator_state.as_mut().expect("coordinated arm");
                    coordinator.advance(handle, start, now, reported_work, reported_power);
                }
            }
        }
        peak_fleet = peak_fleet.max(active_count);
        let violations_before = meter.violation_intervals();
        meter.record(QUANTUM_SECONDS, machine_power);
        if let Some(observer) = observer {
            observer.observe_fleet_size(active_count);
            observer.add(
                Counter::MachineMeterViolations,
                meter.violation_intervals() - violations_before,
            );
        }

        // ---- Decide for the next quantum.
        if let Some(coordinator) = coordinator_state.as_mut() {
            // The envelopes decided now govern the *next* interval, so the
            // coordinator adopts the budget in force there — a mid-run
            // budget step binds with no violation lag.
            let next_budget = scenario.budget_fraction_at(quantum + 1) * budget_range;
            if next_budget != coordinator.budget_watts() {
                coordinator.set_budget(next_budget);
            }
            coordinator.step(now).expect("every app declares a goal");
        } else {
            for (index, sim) in apps.iter().enumerate() {
                if !sim.active_at(quantum) {
                    continue;
                }
                match &mut controllers[index] {
                    Controller::Fixed | Controller::Coordinated(_) => {}
                    Controller::Uncoordinated(runtime, _) => {
                        runtime.decide(now).expect("goal declared");
                    }
                    Controller::Solo(runtime, _) => {
                        runtime.decide(now).expect("goal declared");
                    }
                }
            }
        }
    }

    let attainments: Vec<f64> = apps.iter().map(AppSim::attainment).collect();
    let goal_attainment = attainments.iter().sum::<f64>() / attainments.len().max(1) as f64;
    let mean_power = meter.mean_watts();
    let performance_per_watt = if mean_power > 0.0 {
        attainments.iter().sum::<f64>() / mean_power
    } else {
        0.0
    };
    ArmOutcome {
        name: arm.name().to_string(),
        performance_per_watt,
        goal_attainment,
        cap_violation_rate: meter.violation_rate(),
        mean_power_watts: mean_power,
        peak_power_watts: meter.peak_watts(),
        runtime: RuntimeBlock::measure(started, scenario.quanta, peak_fleet),
    }
}

// ---------------------------------------------------------------------
// The hierarchical (rack → datacenter) arm: `fig5 --hierarchy`.
// ---------------------------------------------------------------------

/// One scenario's results in the hierarchy experiment: the same
/// rack-partitioned datacenter (each rack is its own machine, so contention
/// is per rack; the watt budget is shared datacenter-wide) under three
/// coordination topologies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyScenario {
    /// Scenario name (see [`workloads::extended_scenario_mixes`]).
    pub name: String,
    /// Number of applications in the mix.
    pub apps: usize,
    /// Number of racks the mix is partitioned into
    /// ([`workloads::ScenarioApp::rack`]).
    pub racks: usize,
    /// Quanta simulated.
    pub quanta: usize,
    /// The shared datacenter power budget (above idle), in watts.
    pub budget_watts: f64,
    /// No arbitration anywhere: every app its own uncoordinated
    /// (one-instance-per-actuator) adaptation.
    pub uncoordinated: ArmOutcome,
    /// One flat [`Coordinator`] arbitrating every app across all racks.
    pub flat: ArmOutcome,
    /// A [`DatacenterArbiter`] over per-rack [`RackCoordinator`]s:
    /// budget flows datacenter → rack → app.
    pub rack_coordinated: ArmOutcome,
    /// Worst per-rack audit in the rack-coordinated arm: the highest
    /// fraction of time any rack spent above the envelope the datacenter
    /// awarded it ([`RackCoordinator::meter`]).
    pub max_rack_violation_rate: f64,
}

impl HierarchyScenario {
    /// The scenario with every arm's wall-clock timing zeroed (see
    /// [`ArmOutcome::canonical`]).
    pub fn canonical(&self) -> Self {
        HierarchyScenario {
            name: self.name.clone(),
            apps: self.apps,
            racks: self.racks,
            quanta: self.quanta,
            budget_watts: self.budget_watts,
            uncoordinated: self.uncoordinated.canonical(),
            flat: self.flat.canonical(),
            rack_coordinated: self.rack_coordinated.canonical(),
            max_rack_violation_rate: self.max_rack_violation_rate,
        }
    }
}

/// The `fig5 --hierarchy` data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure5Hierarchy {
    /// One entry per rack-tagged scenario mix.
    pub scenarios: Vec<HierarchyScenario>,
}

/// Which coordination topology a hierarchy cell runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum HierarchyArm {
    Uncoordinated,
    Flat,
    RackCoordinated,
}

impl HierarchyArm {
    const ALL: [HierarchyArm; 3] = [
        HierarchyArm::Uncoordinated,
        HierarchyArm::Flat,
        HierarchyArm::RackCoordinated,
    ];

    pub(crate) fn name(self) -> &'static str {
        match self {
            HierarchyArm::Uncoordinated => "uncoordinated",
            HierarchyArm::Flat => "flat-coordinated",
            HierarchyArm::RackCoordinated => "rack-coordinated",
        }
    }
}

impl Figure5Hierarchy {
    /// Runs the hierarchy experiment on the rack-tagged extended mixes
    /// with the workspace's canonical seed.
    pub fn compute() -> Self {
        Figure5Hierarchy::compute_with(2012)
    }

    /// [`Self::compute`] for an explicit seed.
    pub fn compute_with(seed: u64) -> Self {
        Figure5Hierarchy::compute_scenarios(&extended_scenario_mixes(seed), seed)
    }

    /// [`Self::compute`] with telemetry attached (the `fig5 --obs` path).
    pub fn compute_obs() -> (Self, ObsSnapshot) {
        let (figure, snapshot) =
            Figure5Hierarchy::compute_scenarios_obs(&extended_scenario_mixes(2012), 2012, true);
        (figure, snapshot.expect("observe=true yields a snapshot"))
    }

    /// Runs the experiment over explicit scenarios (tests use reduced
    /// mixes). Every (scenario, topology) pair is one worker cell with a
    /// seed derived from `(seed, scenario, topology)`, so results are
    /// identical regardless of worker count or interleaving.
    pub fn compute_scenarios(scenarios: &[Scenario], seed: u64) -> Self {
        Figure5Hierarchy::compute_scenarios_obs(scenarios, seed, false).0
    }

    /// [`Self::compute_scenarios`] with telemetry (see
    /// [`Figure5::compute_scenarios_obs`] for the merge contract).
    pub fn compute_scenarios_obs(
        scenarios: &[Scenario],
        seed: u64,
        observe: bool,
    ) -> (Self, Option<ObsSnapshot>) {
        let server = XeonServer::dell_r410_calibrated();
        let arms = HierarchyArm::ALL;
        let cells: Vec<(ArmOutcome, f64, Option<ObsSnapshot>)> =
            run_cells(scenarios.len() * arms.len(), |index| {
                let scenario = &scenarios[index / arms.len()];
                let arm = arms[index % arms.len()];
                let cell_seed = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(0x5ace_0000)
                    .wrapping_add(index as u64);
                let recorder = observe.then(|| Arc::new(Recorder::in_memory()));
                let (outcome, worst_rack) =
                    run_hierarchy_cell(&server, scenario, arm, cell_seed, recorder.as_ref());
                let snapshot = recorder.map(|recorder| recorder.snapshot());
                (outcome, worst_rack, snapshot)
            });
        let snapshot = observe.then(|| {
            let mut merged = ObsSnapshot::empty();
            for (_, _, cell) in &cells {
                if let Some(cell) = cell {
                    merged.merge(cell);
                }
            }
            merged
        });
        let scenarios = scenarios
            .iter()
            .zip(cells.chunks(arms.len()))
            .map(|(scenario, outcomes)| HierarchyScenario {
                name: scenario.name.clone(),
                apps: scenario.apps.len(),
                racks: scenario.rack_count(),
                quanta: scenario.quanta,
                budget_watts: datacenter_budget_watts(&server, scenario),
                uncoordinated: outcomes[0].0.clone(),
                flat: outcomes[1].0.clone(),
                rack_coordinated: outcomes[2].0.clone(),
                max_rack_violation_rate: outcomes[2].1,
            })
            .collect();
        (Figure5Hierarchy { scenarios }, snapshot)
    }

    /// The figure with every arm's wall-clock timing zeroed (see
    /// [`Figure5::canonical`]).
    pub fn canonical(&self) -> Self {
        Figure5Hierarchy {
            scenarios: self.scenarios.iter().map(HierarchyScenario::canonical).collect(),
        }
    }

    /// Renders the figure as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "scenario            topology          perf/W  goal%  viol%  rack-viol%  meanW  peakW\n",
        );
        for scenario in &self.scenarios {
            let rows = [
                (&scenario.uncoordinated, None),
                (&scenario.flat, None),
                (&scenario.rack_coordinated, Some(scenario.max_rack_violation_rate)),
            ];
            for (i, (arm, rack_violation)) in rows.iter().enumerate() {
                let label = if i == 0 {
                    format!(
                        "{} ({} apps, {} racks)",
                        scenario.name, scenario.apps, scenario.racks
                    )
                } else {
                    String::new()
                };
                let rack_violation = rack_violation
                    .map_or("     -".to_string(), |rate| format!("{:6.1}", rate * 100.0));
                out.push_str(&format!(
                    "{label:19} {:16}  {:6.4} {:6.1} {:6.1} {rack_violation:>10} {:6.1} {:6.1}\n",
                    arm.name,
                    arm.performance_per_watt,
                    arm.goal_attainment * 100.0,
                    arm.cap_violation_rate * 100.0,
                    arm.mean_power_watts,
                    arm.peak_power_watts,
                ));
            }
        }
        out
    }
}

/// The per-app decision state of one hierarchy topology.
enum HierarchyControl {
    Uncoordinated(Box<UncoordinatedRuntime>, HeartbeatedWorkload),
    /// Handle within the single flat coordinator.
    Flat(Option<AppHandle>),
    /// Handle within the app's rack coordinator.
    RackCoordinated(Option<AppHandle>),
}

/// Runs one (scenario, topology) hierarchy cell.
///
/// The physical layout is identical across topologies, so the comparison
/// isolates the *coordination structure*: the scenario's apps are placed on
/// their tagged racks, each rack is one machine (core oversubscription
/// contends per rack), and one datacenter-wide watt budget — stepping
/// mid-run where the scenario says so — is audited by a datacenter-level
/// [`MachineMeter`]. Only who arbitrates differs: nobody (uncoordinated),
/// one flat [`Coordinator`] spanning every rack, or a
/// [`DatacenterArbiter`] re-running the performance market over rack
/// aggregates so budget flows datacenter → rack → app.
///
/// Returns the arm outcome plus the worst per-rack envelope-violation rate
/// (0.0 for the arms without rack meters).
pub(crate) fn run_hierarchy_cell(
    server: &XeonServer,
    scenario: &Scenario,
    arm: HierarchyArm,
    seed: u64,
    observer: Option<&Arc<Recorder>>,
) -> (ArmOutcome, f64) {
    let started = Instant::now();
    let mut peak_fleet: u64 = 0;
    let mut apps = build_apps(server, scenario);
    let racks = scenario.rack_count();
    let budget_range =
        (server.max_power_watts() - server.idle_power_watts()) * racks as f64;
    let budget = datacenter_budget_watts(server, scenario);
    let mut meter = MachineMeter::new(budget);
    // Fault-free scenarios carry no runtime and take byte-identical paths.
    let mut faults = FaultRuntime::for_plan(&scenario.fault_plan, apps.len());

    // Every coordinator in this arm shares the process-wide pool the cell
    // itself already runs on (nested dispatch degrades gracefully, and
    // Coordinator::with_pool exists precisely so racks share a host's
    // workers instead of spawning one idle private pool each); the shard
    // threshold then decides per step whether any fleet is big enough to
    // fan out.
    let mut flat_state: Option<Coordinator> = (arm == HierarchyArm::Flat).then(|| {
        Coordinator::new(budget, Box::new(PerformanceMarket::default()))
            .with_pool(std::sync::Arc::clone(exec::global_pool_arc()))
    });
    let mut datacenter_state: Option<DatacenterArbiter> =
        (arm == HierarchyArm::RackCoordinated).then(|| {
            let mut datacenter =
                DatacenterArbiter::new(budget, Box::new(PerformanceMarket::default()));
            for rack in 0..racks {
                datacenter.add_rack(RackCoordinator::new(
                    format!("rack-{rack}"),
                    Coordinator::new(budget, Box::new(PerformanceMarket::default()))
                        .with_pool(std::sync::Arc::clone(exec::global_pool_arc())),
                ));
            }
            datacenter
        });
    if let Some(observer) = observer {
        if let Some(coordinator) = flat_state.as_mut() {
            coordinator.set_obs(Some(Arc::clone(observer)));
        }
        if let Some(datacenter) = datacenter_state.as_mut() {
            datacenter.set_obs(Some(Arc::clone(observer)));
        }
    }

    let mut controllers: Vec<HierarchyControl> = apps
        .iter()
        .enumerate()
        .map(|(index, sim)| match arm {
            HierarchyArm::Uncoordinated => {
                let driver = heartbeated(sim);
                let runtime = UncoordinatedRuntime::new_with(
                    &driver.monitor(),
                    xeon_actuators(server),
                    seed.wrapping_add(index as u64),
                    tuned,
                )
                .expect("actuators registered");
                HierarchyControl::Uncoordinated(Box::new(runtime), driver)
            }
            HierarchyArm::Flat => HierarchyControl::Flat(None),
            HierarchyArm::RackCoordinated => HierarchyControl::RackCoordinated(None),
        })
        .collect();

    let mut now = 0.0;
    let mut per_app_power = vec![0.0f64; apps.len()];
    let mut rates = vec![0.0f64; apps.len()];
    let mut rack_core_duty = vec![0.0f64; racks];
    for quantum in 0..scenario.quanta {
        let start = now;
        now += QUANTUM_SECONDS;

        // ---- Lifecycle: budget steps bind the meter; arrivals register
        // with their topology's coordinator, departures retire.
        let cap = scenario.budget_fraction_at(quantum) * budget_range;
        if cap != meter.cap_watts() {
            meter.set_cap(cap);
        }
        for (index, sim) in apps.iter().enumerate() {
            let never_active = sim.spec.departure.is_some_and(|d| d <= sim.spec.arrival);
            if sim.spec.arrival == quantum && !never_active {
                if let Some(coordinator) = flat_state.as_mut() {
                    let managed = managed_for(server, sim, seed, index);
                    controllers[index] = HierarchyControl::Flat(Some(coordinator.register(managed)));
                } else if let Some(datacenter) = datacenter_state.as_mut() {
                    let managed = managed_for(server, sim, seed, index);
                    controllers[index] = HierarchyControl::RackCoordinated(Some(
                        datacenter.rack_mut(sim.spec.rack).register(managed),
                    ));
                }
            }
            if sim.spec.departure == Some(quantum) {
                match &controllers[index] {
                    HierarchyControl::Flat(Some(handle)) => {
                        flat_state.as_mut().expect("flat arm").retire(*handle);
                    }
                    HierarchyControl::RackCoordinated(Some(handle)) => {
                        datacenter_state
                            .as_mut()
                            .expect("rack arm")
                            .rack_mut(sim.spec.rack)
                            .retire(*handle);
                    }
                    _ => {}
                }
            }
        }

        // ---- Coordinated arms arbitrate and decide at the *start* of
        // the quantum, after registration: a just-arrived app decides
        // under an envelope before drawing its first watt (an envelope
        // below its launch power admits it into the cheapest
        // configuration), so arrival bursts cannot blow the cap during
        // their own landing quantum. Mid-run budget steps bind the same
        // way, with no violation lag.
        if let Some(coordinator) = flat_state.as_mut() {
            if cap != coordinator.budget_watts() {
                coordinator.set_budget(cap);
            }
            coordinator.step(start).expect("every app declares a goal");
        } else if let Some(datacenter) = datacenter_state.as_mut() {
            if cap != datacenter.budget_watts() {
                datacenter.set_budget(cap);
            }
            datacenter.step(start).expect("every app declares a goal");
        }

        // ---- Evaluate every active app under its current configuration.
        rack_core_duty.fill(0.0);
        let mut active_count: u64 = 0;
        for (index, sim) in apps.iter().enumerate() {
            per_app_power[index] = 0.0;
            rates[index] = 0.0;
            if !sim.active_at(quantum) {
                continue;
            }
            active_count += 1;
            if faults.as_ref().is_some_and(|f| !f.executes(index, quantum)) {
                continue; // crashed: no cycles, no watts
            }
            let configuration = match &controllers[index] {
                HierarchyControl::Uncoordinated(runtime, _) => {
                    map_configuration(server, &runtime.joint_configuration())
                }
                HierarchyControl::Flat(handle) => {
                    let handle = handle.expect("active apps have registered");
                    let coordinator = flat_state.as_ref().expect("flat arm");
                    map_configuration(
                        server,
                        coordinator.app(handle).runtime().current_configuration(),
                    )
                }
                HierarchyControl::RackCoordinated(handle) => {
                    let handle = handle.expect("active apps have registered");
                    let datacenter = datacenter_state.as_ref().expect("rack arm");
                    map_configuration(
                        server,
                        datacenter
                            .rack(sim.spec.rack)
                            .coordinator()
                            .app(handle)
                            .runtime()
                            .current_configuration(),
                    )
                }
            };
            let report = server.evaluate(&to_server_demand(sim.demand_at(quantum)), &configuration);
            rates[index] = report.work_units / report.seconds;
            per_app_power[index] = report.power_above_idle_watts;
            rack_core_duty[sim.spec.rack] +=
                configuration.cores as f64 * configuration.active_cycle_fraction;
        }

        // ---- Time-multiplex each rack's machine independently: cores
        // contend within a rack, never across racks.
        let rack_contention: Vec<f64> = rack_core_duty
            .iter()
            .map(|&duty| {
                if duty > server.total_cores() as f64 {
                    server.total_cores() as f64 / duty
                } else {
                    1.0
                }
            })
            .collect();

        let mut machine_power = 0.0;
        for (index, sim) in apps.iter_mut().enumerate() {
            if !sim.active_at(quantum) {
                continue;
            }
            let contention = rack_contention[sim.spec.rack];
            let mut work = rates[index] * contention * QUANTUM_SECONDS;
            let mut power = per_app_power[index] * contention;
            // The rack boundary is the physical metering (and, under
            // Clamp, enforcement) point: it sees the rail, not the app's
            // claim, so it admits the draw before anything else does.
            if let HierarchyControl::RackCoordinated(Some(_)) = &controllers[index] {
                (work, power) = datacenter_state
                    .as_mut()
                    .expect("rack arm")
                    .rack_mut(sim.spec.rack)
                    .admit(start, now, work, power);
            }
            machine_power += power;
            sim.active_seconds += QUANTUM_SECONDS;
            sim.work_done += work;
            // The meter and attainment saw physical truth above; the
            // platform sees only what the (possibly faulty) app reports.
            let report = match faults.as_mut() {
                None => Some((work, power)),
                Some(f) => f.report(index, quantum, work, power),
            };
            let Some((reported_work, reported_power)) = report else {
                continue; // stalled pipe or dead app: nothing arrives
            };
            match &mut controllers[index] {
                HierarchyControl::Uncoordinated(_, driver) => {
                    driver.advance_metered(start, now, reported_work, reported_power);
                }
                HierarchyControl::Flat(handle) => {
                    let handle = handle.expect("active apps have registered");
                    flat_state
                        .as_mut()
                        .expect("flat arm")
                        .advance(handle, start, now, reported_work, reported_power);
                }
                HierarchyControl::RackCoordinated(handle) => {
                    let handle = handle.expect("active apps have registered");
                    datacenter_state
                        .as_mut()
                        .expect("rack arm")
                        .rack_mut(sim.spec.rack)
                        .advance_report(handle, start, now, reported_work, reported_power);
                }
            }
        }
        peak_fleet = peak_fleet.max(active_count);
        let violations_before = meter.violation_intervals();
        meter.record(QUANTUM_SECONDS, machine_power);
        if let Some(observer) = observer {
            observer.observe_fleet_size(active_count);
            observer.add(
                Counter::DatacenterMeterViolations,
                meter.violation_intervals() - violations_before,
            );
        }

        // ---- Uncoordinated apps decide at end of quantum (their
        // decisions govern the next one; nothing budgets them anyway).
        for (index, sim) in apps.iter().enumerate() {
            if !sim.active_at(quantum) {
                continue;
            }
            if let HierarchyControl::Uncoordinated(runtime, _) = &mut controllers[index] {
                runtime.decide(now).expect("goal declared");
            }
        }
    }

    let attainments: Vec<f64> = apps.iter().map(AppSim::attainment).collect();
    let goal_attainment = attainments.iter().sum::<f64>() / attainments.len().max(1) as f64;
    let mean_power = meter.mean_watts();
    let performance_per_watt = if mean_power > 0.0 {
        attainments.iter().sum::<f64>() / mean_power
    } else {
        0.0
    };
    let max_rack_violation_rate = datacenter_state
        .as_ref()
        .map_or(0.0, |datacenter| {
            datacenter
                .racks()
                .iter()
                .map(|rack| rack.meter().violation_rate())
                .fold(0.0, f64::max)
        });
    (
        ArmOutcome {
            name: arm.name().to_string(),
            performance_per_watt,
            goal_attainment,
            cap_violation_rate: meter.violation_rate(),
            mean_power_watts: mean_power,
            peak_power_watts: meter.peak_watts(),
            runtime: RuntimeBlock::measure(started, scenario.quanta, peak_fleet),
        },
        max_rack_violation_rate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduced_scenarios(seed: u64) -> Vec<Scenario> {
        let mut scenarios = scenario_mixes(seed);
        for scenario in &mut scenarios {
            scenario.quanta = 40;
            for app in &mut scenario.apps {
                app.arrival = app.arrival.min(20);
                if let Some(departure) = &mut app.departure {
                    *departure = (*departure).clamp(app.arrival + 5, 40);
                }
            }
        }
        scenarios
    }

    #[test]
    fn coordinated_beats_uncoordinated_and_holds_the_cap() {
        let fig = Figure5::compute_scenarios(&reduced_scenarios(2012), 2012);
        assert_eq!(fig.scenarios.len(), 3);
        for scenario in &fig.scenarios {
            assert!(
                scenario.coordinated.performance_per_watt
                    > scenario.uncoordinated.performance_per_watt,
                "{}: coordinated ({:.4}) must beat uncoordinated ({:.4}) on perf/W",
                scenario.name,
                scenario.coordinated.performance_per_watt,
                scenario.uncoordinated.performance_per_watt
            );
            assert_eq!(
                scenario.coordinated.cap_violation_rate, 0.0,
                "{}: coordinated SEEC must hold the cap",
                scenario.name
            );
            assert!(
                scenario.no_adaptation.cap_violation_rate > 0.5,
                "{}: flat-out no-adaptation must blow the budget",
                scenario.name
            );
            assert!(scenario.coordinated.goal_attainment > 0.0);
            assert!(scenario.budget_watts > 0.0);
            assert_eq!(scenario.policies.len(), 3);
        }
        assert!(fig.to_table().contains("coordinated/performance-market"));
    }

    #[test]
    fn fig5_is_deterministic_across_runs_including_the_threaded_path() {
        let scenarios = reduced_scenarios(7);
        let a = Figure5::compute_scenarios(&scenarios, 7);
        let b = Figure5::compute_scenarios(&scenarios, 7);
        assert_eq!(a.canonical(), b.canonical());
        let c = Figure5::compute_scenarios(&scenarios, 8);
        assert_ne!(a.canonical(), c.canonical(), "different seeds must differ");
        // The runtime block carries real measurements alongside the
        // deterministic gauge.
        let first = &a.scenarios[0].coordinated.runtime;
        assert!(first.wall_clock_seconds > 0.0);
        assert!(first.quanta_per_second > 0.0);
        assert!(first.peak_fleet_size > 0);
        assert_eq!(first.canonical().wall_clock_seconds, 0.0);
    }

    #[test]
    fn telemetry_is_passive_and_reconciles_with_the_arm_summaries() {
        let scenarios = reduced_scenarios(11);
        let baseline = Figure5::compute_scenarios(&scenarios, 11);
        let (observed, snapshot) = Figure5::compute_scenarios_obs(&scenarios, 11, true);
        // Telemetry must never perturb the figure.
        assert_eq!(baseline.canonical(), observed.canonical());
        let snapshot = snapshot.expect("observe=true returns a snapshot");

        // Each of the three coordinated arms per scenario steps once per
        // quantum; the uncoordinated arms never touch a coordinator.
        let expected_steps: u64 =
            scenarios.iter().map(|s| 3 * s.quanta as u64).sum();
        assert_eq!(snapshot.counter(Counter::QuantaStepped), expected_steps);
        assert_eq!(snapshot.stage(obs::Stage::Step).count, expected_steps);
        // Every decided app ran exactly one timed decision, and every
        // arbitration either moved or held its award.
        let decided = snapshot.counter(Counter::AppsDecided);
        assert!(decided > 0);
        assert_eq!(snapshot.stage(obs::Stage::Decision).count, decided);
        assert_eq!(
            snapshot.counter(Counter::AwardsChanged) + snapshot.counter(Counter::AwardsHeld),
            decided
        );
        // Machine-meter violation counts fold back to the per-arm
        // violation rates (one recorded interval per quantum).
        let expected_violations: u64 = observed
            .scenarios
            .iter()
            .flat_map(|s| {
                let policies = s.policies[..2].iter();
                [&s.no_adaptation, &s.uncoordinated, &s.per_app_seec, &s.coordinated]
                    .into_iter()
                    .chain(policies)
                    .map(|arm| (arm.cap_violation_rate * s.quanta as f64).round() as u64)
                    .collect::<Vec<_>>()
            })
            .sum();
        assert_eq!(
            snapshot.counter(Counter::MachineMeterViolations),
            expected_violations
        );
        // The fleet gauge saw the largest mix.
        let largest = observed
            .scenarios
            .iter()
            .map(|s| s.no_adaptation.runtime.peak_fleet_size)
            .max()
            .unwrap();
        assert_eq!(snapshot.peak_fleet_size, largest);
        // Lifecycle events reconcile with the registration counters.
        let registers = snapshot
            .events
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::Register { .. }))
            .count() as u64;
        assert_eq!(snapshot.counter(Counter::Registrations), registers);
        assert!(registers > 0);
    }

    /// The extended mixes, shrunk for a debug-profile test: fewer apps,
    /// fewer quanta, lifecycle events and budget steps clamped inside the
    /// shortened run.
    fn reduced_extended_scenarios(seed: u64) -> Vec<Scenario> {
        let mut scenarios = workloads::extended_scenario_mixes(seed);
        for scenario in &mut scenarios {
            scenario.quanta = 30;
            scenario.apps.truncate(40);
            scenario.apps.retain(|app| app.arrival < 24);
            for app in &mut scenario.apps {
                if let Some(departure) = &mut app.departure {
                    *departure = (*departure).clamp(app.arrival + 4, 30);
                }
            }
            scenario.budget_steps.retain(|step| step.quantum < 28);
        }
        scenarios
    }

    /// [`reduced_extended_scenarios`] further adapted for the hierarchy
    /// test: rack tags folded down to two racks (40 remaining apps cannot
    /// load 8 racks' worth of budget), and the stepped mix's budget
    /// fractions quartered so the truncated fleet still makes the
    /// datacenter budget *bind* — the regime the full mixes are in.
    fn reduced_hierarchy_scenarios(seed: u64) -> Vec<Scenario> {
        let mut scenarios = reduced_extended_scenarios(seed);
        for scenario in &mut scenarios {
            for app in &mut scenario.apps {
                app.rack %= 2;
            }
        }
        let stepped = &mut scenarios[1];
        stepped.power_budget_fraction /= 4.0;
        for step in &mut stepped.budget_steps {
            step.fraction /= 4.0;
        }
        scenarios
    }

    #[test]
    fn extended_mixes_hold_stepped_budgets_with_the_runtime_lifecycle() {
        let scenarios = reduced_extended_scenarios(2012);
        assert!(
            scenarios[1].budget_steps.iter().any(|s| s.quantum < 28),
            "the reduced stepped mix must still step its budget"
        );
        let fig = Figure5::compute_scenarios(&scenarios, 2012);
        for scenario in &fig.scenarios {
            assert_eq!(
                scenario.coordinated.cap_violation_rate, 0.0,
                "{}: coordinated SEEC must hold the (stepping) cap",
                scenario.name
            );
            assert!(
                scenario.coordinated.performance_per_watt
                    > scenario.uncoordinated.performance_per_watt,
                "{}: coordinated ({:.4}) must beat uncoordinated ({:.4}) on perf/W",
                scenario.name,
                scenario.coordinated.performance_per_watt,
                scenario.uncoordinated.performance_per_watt
            );
            assert!(scenario.no_adaptation.cap_violation_rate > 0.5, "{}", scenario.name);
        }
        // Deterministic, including runtime registration/retirement order
        // and the sharded coordinator path.
        assert_eq!(
            fig.canonical(),
            Figure5::compute_scenarios(&scenarios, 2012).canonical()
        );
    }

    #[test]
    fn hierarchy_holds_the_datacenter_budget_across_rack_partitions() {
        let scenarios = reduced_hierarchy_scenarios(2012);
        let fig = Figure5Hierarchy::compute_scenarios(&scenarios, 2012);
        assert_eq!(fig.scenarios.len(), scenarios.len());
        for scenario in &fig.scenarios {
            assert!(
                scenario.racks > 1,
                "{}: the extended mixes are rack-tagged",
                scenario.name
            );
            assert_eq!(
                scenario.rack_coordinated.cap_violation_rate, 0.0,
                "{}: rack-coordinated SEEC must hold the datacenter cap",
                scenario.name
            );
            assert_eq!(
                scenario.flat.cap_violation_rate, 0.0,
                "{}: the flat coordinator must hold the datacenter cap",
                scenario.name
            );
            // The hierarchy's whole point: decentralising into per-rack
            // coordinators costs (almost) nothing against the flat
            // arbiter over the same fleet.
            let ratio = scenario.rack_coordinated.performance_per_watt
                / scenario.flat.performance_per_watt;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "{}: rack-coordinated perf/W must track flat, ratio {ratio:.4}",
                scenario.name
            );
            assert!(scenario.rack_coordinated.goal_attainment > 0.0);
            assert!(scenario.budget_watts > 0.0);
        }
        // Where the budget binds (the stepped mix), coordination is what
        // keeps the cap: uncoordinated adaptation violates it massively
        // and pays for the overdraw in perf/W.
        let stepped = &fig.scenarios[1];
        assert!(
            stepped.uncoordinated.cap_violation_rate > 0.2,
            "budget-steps: uncoordinated must blow the stepping cap, got {:.3}",
            stepped.uncoordinated.cap_violation_rate
        );
        assert!(
            stepped.rack_coordinated.performance_per_watt
                > stepped.uncoordinated.performance_per_watt,
            "budget-steps: rack-coordinated ({:.4}) must beat uncoordinated ({:.4}) on perf/W",
            stepped.rack_coordinated.performance_per_watt,
            stepped.uncoordinated.performance_per_watt
        );
        assert!(fig.to_table().contains("rack-coordinated"));
        // Deterministic across runs, including the pooled coordinator and
        // datacenter paths — and passive under telemetry.
        let (observed, snapshot) =
            Figure5Hierarchy::compute_scenarios_obs(&scenarios, 2012, true);
        assert_eq!(fig.canonical(), observed.canonical());
        let snapshot = snapshot.expect("observe=true returns a snapshot");
        // Flat arm: one coordinator step per quantum. Rack arm: one step
        // per rack per quantum, plus one datacenter step per quantum.
        let expected_steps: u64 = scenarios
            .iter()
            .map(|s| (1 + s.rack_count() as u64) * s.quanta as u64)
            .sum();
        assert_eq!(snapshot.counter(Counter::QuantaStepped), expected_steps);
        let expected_datacenter_steps: u64 =
            scenarios.iter().map(|s| s.quanta as u64).sum();
        assert_eq!(
            snapshot.stage(obs::Stage::DatacenterStep).count,
            expected_datacenter_steps
        );
    }
}
