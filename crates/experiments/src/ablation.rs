//! Ablations of the Angstrom design choices called out in DESIGN.md:
//! partner-core decision placement, the adaptive NoC features, and adaptive
//! cache coherence.

use angstrom_sim::chip::{AngstromChip, ChipConfiguration};
use angstrom_sim::coherence::CoherenceProtocol;
use angstrom_sim::config::ChipConfig;
use angstrom_sim::noc::NocFeatures;
use angstrom_sim::partner::DecisionPlacement;
use serde::{Deserialize, Serialize};
use workloads::{SplashBenchmark, Workload};

use crate::driver::to_chip_demand;

/// One ablation comparison: a named variant and its measured figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Study this row belongs to (e.g. "noc-features").
    pub study: String,
    /// Benchmark used.
    pub benchmark: SplashBenchmark,
    /// Variant label (e.g. "EVC+BAN+AOR", "baseline network").
    pub variant: String,
    /// Run time in seconds.
    pub seconds: f64,
    /// Total energy in joules.
    pub energy_joules: f64,
    /// Instructions per joule (uncapped efficiency).
    pub instructions_per_joule: f64,
}

/// The full set of ablation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablations {
    /// Every measured row.
    pub rows: Vec<AblationRow>,
    /// Application time lost per decision on the main core vs partner core,
    /// in seconds (partner-core decisions cost the application nothing).
    pub main_core_decision_overhead_seconds: f64,
    /// Energy per decision on the partner core, in joules.
    pub partner_decision_energy_joules: f64,
    /// Energy per decision on the main core, in joules.
    pub main_core_decision_energy_joules: f64,
}

impl Ablations {
    /// Runs every ablation on the 256-core Angstrom configuration.
    pub fn compute() -> Self {
        Ablations::compute_on(&AngstromChip::new(ChipConfig::angstrom_256()), 2012)
    }

    /// Runs every ablation on an explicit chip.
    pub fn compute_on(chip: &AngstromChip, seed: u64) -> Self {
        let mut rows = Vec::new();

        // --- Adaptive network features on/off (ocean is communication heavy).
        for (label, features) in [
            ("EVC+BAN+AOR", NocFeatures::default()),
            ("baseline network", NocFeatures::baseline()),
        ] {
            rows.push(run_variant(
                chip,
                "noc-features",
                SplashBenchmark::OceanNonContiguous,
                label,
                |cfg| cfg.noc_features = Some(features),
                seed,
            ));
        }

        // --- Coherence protocol choice for a small- and a large-working-set app.
        for benchmark in [SplashBenchmark::WaterSpatial, SplashBenchmark::OceanNonContiguous] {
            for (label, protocol) in [
                ("directory", CoherenceProtocol::Directory),
                ("shared-NUCA", CoherenceProtocol::SharedNuca),
                ("adaptive (ARCc)", CoherenceProtocol::Adaptive),
            ] {
                rows.push(run_variant(
                    chip,
                    "coherence",
                    benchmark,
                    label,
                    |cfg| cfg.coherence = protocol,
                    seed,
                ));
            }
        }

        // --- Decision placement: partner core vs main core.
        let cfg = ChipConfiguration::default_for(chip.config());
        let decision_instructions = 1.0e6;
        let mut main_cfg = cfg.clone();
        main_cfg.decision_placement = DecisionPlacement::MainCore;
        let mut partner_cfg = cfg;
        partner_cfg.decision_placement = DecisionPlacement::PartnerCore;
        let main = chip.decision_cost(decision_instructions, &main_cfg);
        let partner = chip.decision_cost(decision_instructions, &partner_cfg);

        Ablations {
            rows,
            main_core_decision_overhead_seconds: main.application_seconds,
            partner_decision_energy_joules: partner.energy_joules,
            main_core_decision_energy_joules: main.energy_joules,
        }
    }

    /// Rows belonging to one study.
    pub fn study(&self, name: &str) -> Vec<&AblationRow> {
        self.rows.iter().filter(|r| r.study == name).collect()
    }

    /// Renders the ablations as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("study         benchmark  variant            seconds    energy_j   instr/J\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:12}  {:9}  {:17}  {:9.4}  {:9.3}  {:9.3e}\n",
                row.study,
                row.benchmark.name(),
                row.variant,
                row.seconds,
                row.energy_joules,
                row.instructions_per_joule,
            ));
        }
        out.push_str(&format!(
            "\ndecision placement: main-core overhead {:.2e} s/decision vs 0 on the partner core; \
             energy {:.2e} J (main) vs {:.2e} J (partner)\n",
            self.main_core_decision_overhead_seconds,
            self.main_core_decision_energy_joules,
            self.partner_decision_energy_joules,
        ));
        out
    }
}

fn run_variant<F: FnOnce(&mut ChipConfiguration)>(
    chip: &AngstromChip,
    study: &str,
    benchmark: SplashBenchmark,
    variant: &str,
    mutate: F,
    seed: u64,
) -> AblationRow {
    let demand = to_chip_demand(&Workload::new(benchmark, seed).average_quantum());
    let mut cfg = ChipConfiguration::default_for(chip.config());
    cfg.cores = 64;
    mutate(&mut cfg);
    let report = chip.evaluate(&demand, &cfg);
    AblationRow {
        study: study.to_string(),
        benchmark,
        variant: variant.to_string(),
        seconds: report.seconds,
        energy_joules: report.energy_joules,
        instructions_per_joule: report.performance_per_watt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_network_features_help_a_communication_heavy_workload() {
        let ablations = Ablations::compute();
        let noc = ablations.study("noc-features");
        assert_eq!(noc.len(), 2);
        let adaptive = noc.iter().find(|r| r.variant.contains("EVC")).unwrap();
        let baseline = noc.iter().find(|r| r.variant.contains("baseline")).unwrap();
        assert!(adaptive.seconds <= baseline.seconds);
        assert!(adaptive.energy_joules <= baseline.energy_joules);
    }

    #[test]
    fn adaptive_coherence_never_loses_to_either_fixed_protocol() {
        let ablations = Ablations::compute();
        for benchmark in [SplashBenchmark::WaterSpatial, SplashBenchmark::OceanNonContiguous] {
            let rows: Vec<_> = ablations
                .study("coherence")
                .into_iter()
                .filter(|r| r.benchmark == benchmark)
                .cloned()
                .collect();
            assert_eq!(rows.len(), 3);
            let adaptive = rows.iter().find(|r| r.variant.contains("ARCc")).unwrap();
            for fixed in rows.iter().filter(|r| !r.variant.contains("ARCc")) {
                assert!(
                    adaptive.seconds <= fixed.seconds * 1.001,
                    "{benchmark}: adaptive coherence should match the better protocol"
                );
            }
        }
    }

    #[test]
    fn partner_core_decisions_are_free_for_the_application_and_cheaper() {
        let ablations = Ablations::compute();
        assert!(ablations.main_core_decision_overhead_seconds > 0.0);
        assert!(
            ablations.partner_decision_energy_joules < ablations.main_core_decision_energy_joules
        );
        assert!(ablations.to_table().contains("decision placement"));
    }
}
