//! Figure 4: anticipated SEEC results on the 256-core Angstrom processor.
//!
//! Each benchmark is swept over every Angstrom configuration (cache 32–128 KB,
//! cores 1–256, two voltage/frequency points). From the sweep the experiment
//! derives the *no adaptation* system (the single configuration that is best
//! on average across all benchmarks), the *static oracle* (the per-benchmark
//! best configuration), and *predicted SEEC* — the static oracle multiplied by
//! the SEEC-vs-static-oracle multiplier measured on the x86 system in
//! Figure 3 (DAC 2012 §5.3).

use angstrom_sim::chip::AngstromChip;
use angstrom_sim::config::ChipConfig;
use serde::{Deserialize, Serialize};
use workloads::SplashBenchmark;

use crate::fig3::Figure3;
use crate::sweep::{max_heart_rate, sweep_benchmark, SweepPoint};

/// Per-benchmark Figure-4 results, as raw performance per watt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4Row {
    /// Benchmark.
    pub benchmark: SplashBenchmark,
    /// Target heart rate (half the maximum achievable on Angstrom).
    pub target_heart_rate: f64,
    /// The shared best-on-average configuration.
    pub no_adaptation: f64,
    /// Per-benchmark best fixed configuration.
    pub static_oracle: f64,
    /// Static oracle scaled by the Figure-3 SEEC multiplier.
    pub predicted_seec: f64,
    /// Cores chosen by the static oracle (the paper calls out 256 for barnes).
    pub static_oracle_cores: usize,
    /// Cores used by the no-adaptation configuration.
    pub no_adaptation_cores: usize,
}

/// The Figure-4 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4 {
    /// One row per benchmark, in the paper's order.
    pub rows: Vec<Figure4Row>,
    /// The SEEC-vs-static-oracle multiplier applied (from Figure 3).
    pub seec_multiplier: f64,
}

impl Figure4 {
    /// Runs the experiment using a freshly computed Figure 3 for the SEEC
    /// multiplier.
    pub fn compute() -> Self {
        let fig3 = Figure3::compute_with(2012, 40);
        Figure4::compute_with_multiplier(fig3.seec_vs_static_oracle())
    }

    /// Runs the experiment with an explicit SEEC-vs-static-oracle multiplier
    /// (the paper assumes 1.15, i.e. SEEC beats the static oracle by 15 %).
    pub fn compute_with_multiplier(seec_multiplier: f64) -> Self {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        Figure4::compute_on(&chip, seec_multiplier, 2012)
    }

    /// Runs the experiment on an arbitrary chip (used by tests and ablations).
    pub fn compute_on(chip: &AngstromChip, seec_multiplier: f64, seed: u64) -> Self {
        // Sweep every benchmark and record its target (half max rate); each
        // sweep is independent, so they fan out across worker cells.
        let sweeps: Vec<(SplashBenchmark, Vec<SweepPoint>, f64)> =
            crate::driver::run_cells(SplashBenchmark::ALL.len(), |index| {
                let b = SplashBenchmark::ALL[index];
                let points = sweep_benchmark(chip, b, seed);
                let target = max_heart_rate(&points) / 2.0;
                (b, points, target)
            });

        // No adaptation: the configuration (cores, cache, V/f) with the best
        // *average* perf/W across benchmarks. Configurations are identified
        // by their index in each sweep (all sweeps enumerate identically).
        let config_count = sweeps[0].1.len();
        let no_adapt_index = (0..config_count)
            .max_by(|&a, &b| {
                let mean = |idx: usize| {
                    sweeps
                        .iter()
                        .map(|(_, points, target)| points[idx].performance_per_watt(*target))
                        .sum::<f64>()
                };
                mean(a).partial_cmp(&mean(b)).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("sweep is non-empty");

        let rows = sweeps
            .iter()
            .map(|(benchmark, points, target)| {
                let no_adapt_point = &points[no_adapt_index];
                let static_point = points
                    .iter()
                    .max_by(|a, b| {
                        a.performance_per_watt(*target)
                            .partial_cmp(&b.performance_per_watt(*target))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("sweep is non-empty");
                let static_oracle = static_point.performance_per_watt(*target);
                Figure4Row {
                    benchmark: *benchmark,
                    target_heart_rate: *target,
                    no_adaptation: no_adapt_point.performance_per_watt(*target),
                    static_oracle,
                    predicted_seec: static_oracle * seec_multiplier,
                    static_oracle_cores: static_point.cores,
                    no_adaptation_cores: no_adapt_point.cores,
                }
            })
            .collect();
        Figure4 {
            rows,
            seec_multiplier,
        }
    }

    /// Average improvement of the static oracle over no adaptation (the paper
    /// reports 72 %).
    pub fn static_oracle_improvement(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.static_oracle / r.no_adaptation.max(1e-12))) - 1.0
    }

    /// Average improvement of predicted SEEC over no adaptation — the
    /// headline ">100 % performance per watt" claim of the abstract.
    pub fn headline_improvement(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.predicted_seec / r.no_adaptation.max(1e-12))) - 1.0
    }

    /// Renders the figure as an aligned text table, normalised to predicted
    /// SEEC (the paper's y-axis).
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "benchmark  no_adapt  static  pred_seec  static_cores  no_adapt_cores (normalised to predicted SEEC)\n",
        );
        for row in &self.rows {
            let denom = row.predicted_seec.max(1e-12);
            out.push_str(&format!(
                "{:9}  {:8.3}  {:6.3}  {:9.3}  {:12}  {:14}\n",
                row.benchmark.name(),
                row.no_adaptation / denom,
                row.static_oracle / denom,
                1.0,
                row.static_oracle_cores,
                row.no_adaptation_cores,
            ));
        }
        out.push_str(&format!(
            "\nstatic oracle vs no adaptation: {:+.0}%   predicted SEEC vs no adaptation: {:+.0}%   (SEEC multiplier {:.2})\n",
            self.static_oracle_improvement() * 100.0,
            self.headline_improvement() * 100.0,
            self.seec_multiplier,
        ));
        out
    }
}

fn mean<I: Iterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_has_one_row_per_benchmark_with_sane_ordering() {
        let fig = Figure4::compute_with_multiplier(1.15);
        assert_eq!(fig.rows.len(), 5);
        for row in &fig.rows {
            assert!(
                row.static_oracle >= row.no_adaptation * 0.999,
                "{}: the static oracle cannot lose to the shared configuration",
                row.benchmark
            );
            assert!(row.predicted_seec >= row.static_oracle * 0.999);
            assert!(row.target_heart_rate > 0.0);
        }
        assert!(fig.to_table().contains("volrend"));
    }

    #[test]
    fn adaptation_provides_a_large_average_benefit() {
        let fig = Figure4::compute_with_multiplier(1.15);
        assert!(
            fig.static_oracle_improvement() > 0.0,
            "static oracle must improve over no adaptation on average, got {:.2}",
            fig.static_oracle_improvement()
        );
        assert!(
            fig.headline_improvement() > fig.static_oracle_improvement(),
            "predicted SEEC adds the Figure-3 multiplier on top of the static oracle"
        );
    }

    #[test]
    fn barnes_static_oracle_uses_many_more_cores_than_the_shared_configuration() {
        let fig = Figure4::compute_with_multiplier(1.15);
        let barnes = fig
            .rows
            .iter()
            .find(|r| r.benchmark == SplashBenchmark::Barnes)
            .unwrap();
        assert!(
            barnes.static_oracle_cores > barnes.no_adaptation_cores,
            "barnes scales, so its oracle allocates more cores ({}) than the shared choice ({})",
            barnes.static_oracle_cores,
            barnes.no_adaptation_cores
        );
    }

    #[test]
    fn multiplier_scales_predicted_seec_linearly() {
        let low = Figure4::compute_with_multiplier(1.0);
        let high = Figure4::compute_with_multiplier(1.3);
        for (a, b) in low.rows.iter().zip(high.rows.iter()) {
            assert!((b.predicted_seec / a.predicted_seec - 1.3).abs() < 1e-9);
            assert_eq!(a.static_oracle, b.static_oracle);
        }
    }
}
