//! Fleet-scale incremental arbitration: the `fig5 --fleet N` arm.
//!
//! The coordinated-SEEC figure runs full [`coordinator::Coordinator`] stacks
//! — heartbeat windows, SEEC runtimes, a 560-configuration action table per
//! application — which is the right fidelity at hundreds of apps and the
//! wrong tool at a million. This harness measures the piece that actually
//! has to scale: the arbitration fold itself. It drives a
//! [`coordinator::IncrementalArbiter`] directly over synthetic
//! [`AppRequest`] arrays with realistic churn (a small fraction of requests
//! move per quantum, plus arrivals and departures), and reports:
//!
//! * measured **µs/quantum** for the full re-arbitration fold, for the
//!   incremental engine at [`FLEET_TOLERANCE`], and for the **wake-scheduled
//!   engine** (same tolerance plus [`WakeConfig::default`]) whose rounds
//!   cost O(awake) instead of O(fleet);
//! * the skipped / re-arbitrated counters and whether they **reconcile**
//!   (`skipped + rearbitrated == active app-quanta` — the same identity the
//!   coordinator's obs counters satisfy), and the scheduled arm's four-way
//!   twin (`slept + skipped + rearbitrated == active app-quanta`);
//! * two differential checks: an incremental engine pinned at tolerance
//!   **0** (wake explicitly [`WakeConfig::OFF`]) runs the same trace and its
//!   award vector is compared *bit-for-bit* against the full fold every
//!   quantum ([`FleetScalingReport::tolerance_zero_identical`]), and a
//!   horizon-**0** engine at [`FLEET_TOLERANCE`] is compared bit-for-bit
//!   against the plain incremental arm
//!   ([`FleetScalingReport::horizon_zero_identical`]) — the degenerate
//!   scheduler must vanish without a trace.
//!
//! The scheduled arm treats each churned request as a **wake event** for its
//! slot (the raw-engine twin of the coordinator's wake calendar and
//! force-wake rules): the wake calls sit inside the timed region, so the
//! measured cost is the whole event-driven round, not just the fold.
//!
//! Every run is deterministic: the request trace comes from a splitmix64
//! stream seeded only by the fleet size, so two invocations at the same size
//! produce identical counters and identical differential verdicts (only the
//! wall-clock timings vary). Reports merge into `BENCH_fig5.json` under the
//! `fleet_scaling` key via [`merge_fleet_scaling`], replacing any previous
//! row at the same fleet size and leaving the rest of the file untouched —
//! including rows written by older builds that lack the scheduled-arm
//! fields, which survive a merge verbatim.

use std::time::Instant;

use coordinator::{
    AppRequest, ArbitrationPolicy, IncrementalArbiter, PerformanceMarket, WakeConfig,
};
use serde::ser::Value;
use serde::{Deserialize, Serialize};

/// Quanta simulated per fleet measurement. Enough rounds for the steady
/// state after the first (always-full) round to dominate the averages,
/// small enough that a million-app run completes in seconds.
pub const FLEET_QUANTA: usize = 24;

/// The tolerance the measured incremental engine runs at: requests whose
/// largest relative field movement stays under 5 % hold their award.
pub const FLEET_TOLERANCE: f64 = 0.05;

/// Fraction of the fleet whose request moves past the tolerance each
/// quantum (at least one app). 1 % per quantum is aggressive for a steady
/// datacenter fleet; it keeps the dirty set visibly non-empty at every size.
pub const FLEET_CHURN_FRACTION: f64 = 0.01;

/// One measured fleet size: timings, counters, and differential verdicts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetScalingReport {
    /// Request slots in the synthetic fleet (`fig5 --fleet N`).
    pub fleet: usize,
    /// Quanta simulated ([`FLEET_QUANTA`]).
    pub quanta: usize,
    /// Tolerance of the measured incremental engine ([`FLEET_TOLERANCE`]).
    pub tolerance: f64,
    /// Per-quantum request churn fraction ([`FLEET_CHURN_FRACTION`]).
    pub churn_fraction: f64,
    /// The arbitration policy under the fold.
    pub policy: String,
    /// Machine budget the fold splits (watts; scales with the fleet).
    pub budget_watts: f64,
    /// Measured mean µs/quantum of the full re-arbitration fold.
    pub us_per_quantum_full: f64,
    /// Measured mean µs/quantum of the incremental engine at
    /// [`Self::tolerance`].
    pub us_per_quantum_incremental: f64,
    /// `us_per_quantum_full / us_per_quantum_incremental`.
    pub incremental_speedup: f64,
    /// Active apps that held their award without entering the fold, summed
    /// over the run (the engine-level twin of the coordinator's
    /// `apps_skipped` counter).
    pub apps_skipped: u64,
    /// Active apps re-arbitrated, summed over the run (twin of
    /// `apps_rearbitrated`).
    pub apps_rearbitrated: u64,
    /// Active app-quanta in the trace: `Σ_quantum (active apps)`.
    pub active_app_quanta: u64,
    /// Whether `apps_skipped + apps_rearbitrated == active_app_quanta` —
    /// the counter-reconciliation identity.
    pub counters_reconcile: bool,
    /// Whether a tolerance-0 incremental engine produced awards
    /// **bit-identical** to the full fold on every quantum of the trace.
    pub tolerance_zero_identical: bool,
    /// Measured mean µs/quantum of the wake-scheduled engine
    /// ([`Self::tolerance`] plus the default [`WakeConfig`]).
    pub us_per_quantum_scheduled: f64,
    /// `us_per_quantum_full / us_per_quantum_scheduled`.
    pub scheduled_speedup: f64,
    /// Sleep horizon of the scheduled arm ([`WakeConfig::horizon`]).
    pub sleep_horizon: usize,
    /// Steady-streak threshold of the scheduled arm
    /// ([`WakeConfig::steady_quanta`]).
    pub steady_quanta: u32,
    /// Active apps that slept through whole quanta on the scheduled arm,
    /// summed over the run (twin of the coordinator's `apps_slept`).
    pub apps_slept: u64,
    /// Awake active apps that held their award on the scheduled arm.
    pub apps_skipped_scheduled: u64,
    /// Active apps re-arbitrated on the scheduled arm.
    pub apps_rearbitrated_scheduled: u64,
    /// Whether `apps_slept + apps_skipped_scheduled +
    /// apps_rearbitrated_scheduled == active_app_quanta` — the scheduled
    /// arm's four-way ledger identity.
    pub scheduled_counters_reconcile: bool,
    /// Whether a horizon-0 engine at [`Self::tolerance`] produced awards
    /// **bit-identical** to the plain incremental arm on every quantum —
    /// the degenerate scheduler leaves no trace.
    pub horizon_zero_identical: bool,
}

/// Deterministic splitmix64 stream: the only randomness in the harness, so
/// a fleet size fully determines its request trace.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_index(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

fn synthetic_request(rng: &mut SplitMix64) -> AppRequest {
    AppRequest {
        active: rng.next_f64() < 0.9,
        weight: 0.5 + 3.5 * rng.next_f64(),
        urgency: 0.5 + 1.5 * rng.next_f64(),
        max_power_watts: 5.0 + 45.0 * rng.next_f64(),
    }
}

/// Mutates the trace for one quantum: `churn` requests move far past the
/// tolerance, and a couple of slots flip presence (arrival / departure).
/// The touched indices land in `changed` (cleared first; duplicates
/// possible) — the wake events the scheduled arm delivers to its engine.
fn churn_quantum(
    rng: &mut SplitMix64,
    requests: &mut [AppRequest],
    churn: usize,
    changed: &mut Vec<u32>,
) {
    changed.clear();
    for _ in 0..churn {
        let index = rng.next_index(requests.len());
        let request = &mut requests[index];
        request.weight = 0.5 + 3.5 * rng.next_f64();
        request.urgency = 0.5 + 1.5 * rng.next_f64();
        changed.push(index as u32);
    }
    for _ in 0..2 {
        let index = rng.next_index(requests.len());
        let request = &mut requests[index];
        request.active = !request.active;
        changed.push(index as u32);
    }
}

impl FleetScalingReport {
    /// Runs the fleet harness at `fleet` request slots (see the module
    /// docs) and returns the measured report.
    ///
    /// # Panics
    ///
    /// Panics when `fleet` is zero.
    pub fn measure(fleet: usize) -> FleetScalingReport {
        assert!(fleet > 0, "fleet size must be positive");
        let mut rng = SplitMix64(0xf1ee_7000 ^ fleet as u64);
        let mut requests: Vec<AppRequest> = (0..fleet)
            .map(|_| synthetic_request(&mut rng))
            .collect();
        let budget_watts = 10.0 * fleet as f64;
        let churn = ((fleet as f64 * FLEET_CHURN_FRACTION) as usize).max(1);

        // Five engines in lockstep over the identical request trace. Each
        // gets its own policy instance so any internal policy state evolves
        // under exactly the calls that path would make on its own.
        let wake = WakeConfig::default();
        let mut full_policy = PerformanceMarket::default();
        let mut incremental_policy = PerformanceMarket::default();
        let mut scheduled_policy = PerformanceMarket::default();
        let mut gate_policy = PerformanceMarket::default();
        let mut zero_policy = PerformanceMarket::default();
        let mut incremental = IncrementalArbiter::new(FLEET_TOLERANCE);
        let mut scheduled = IncrementalArbiter::new(FLEET_TOLERANCE).with_wake(wake);
        // The two differential arms take the *configured* path with the
        // degenerate knob value, so the comparisons pin the knob itself.
        let mut gate = IncrementalArbiter::new(FLEET_TOLERANCE).with_wake(WakeConfig {
            steady_quanta: wake.steady_quanta,
            horizon: 0,
        });
        let mut zero = IncrementalArbiter::new(0.0).with_wake(WakeConfig::OFF);
        let mut full_awards = Vec::new();
        let mut incremental_awards = Vec::new();
        let mut scheduled_awards = Vec::new();
        let mut gate_awards = Vec::new();
        let mut zero_awards = Vec::new();
        let mut changed: Vec<u32> = Vec::new();

        let mut full_nanos = 0u128;
        let mut incremental_nanos = 0u128;
        let mut scheduled_nanos = 0u128;
        let mut apps_skipped = 0u64;
        let mut apps_rearbitrated = 0u64;
        let mut apps_slept = 0u64;
        let mut apps_skipped_scheduled = 0u64;
        let mut apps_rearbitrated_scheduled = 0u64;
        let mut active_app_quanta = 0u64;
        let mut tolerance_zero_identical = true;
        let mut horizon_zero_identical = true;

        let bits_equal = |left: &[f64], right: &[f64]| {
            left.len() == right.len()
                && left
                    .iter()
                    .zip(right)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        };

        for quantum in 0..FLEET_QUANTA {
            changed.clear();
            if quantum > 0 {
                churn_quantum(&mut rng, &mut requests, churn, &mut changed);
            }
            active_app_quanta += requests.iter().filter(|request| request.active).count() as u64;

            let start = Instant::now();
            full_policy.arbitrate(budget_watts, &requests, &mut full_awards);
            full_nanos += start.elapsed().as_nanos();

            let start = Instant::now();
            let outcome = incremental.arbitrate(
                &mut incremental_policy,
                budget_watts,
                &requests,
                &mut incremental_awards,
            );
            incremental_nanos += start.elapsed().as_nanos();
            apps_skipped += outcome.skipped as u64;
            apps_rearbitrated += outcome.rearbitrated as u64;

            // The wake-scheduled arm: every churned slot is a wake event —
            // the raw-engine stand-in for the coordinator's calendar and
            // force-wake plumbing (a sleeping request must not move
            // silently) — and the events are part of the measured cost.
            let start = Instant::now();
            for &index in &changed {
                scheduled.wake(index as usize);
            }
            let outcome = scheduled.arbitrate(
                &mut scheduled_policy,
                budget_watts,
                &requests,
                &mut scheduled_awards,
            );
            scheduled_nanos += start.elapsed().as_nanos();
            apps_slept += outcome.slept as u64;
            apps_skipped_scheduled += outcome.skipped as u64;
            apps_rearbitrated_scheduled += outcome.rearbitrated as u64;

            // Differential check one: horizon 0 must reproduce the plain
            // incremental engine bit-for-bit, every quantum.
            gate.arbitrate(&mut gate_policy, budget_watts, &requests, &mut gate_awards);
            horizon_zero_identical &= bits_equal(&incremental_awards, &gate_awards);

            // Differential check two: tolerance 0 must reproduce the full
            // fold bit-for-bit, every quantum, at every fleet size.
            zero.arbitrate(&mut zero_policy, budget_watts, &requests, &mut zero_awards);
            tolerance_zero_identical &= bits_equal(&full_awards, &zero_awards);
        }

        let us_per_quantum_full = full_nanos as f64 / FLEET_QUANTA as f64 / 1.0e3;
        let us_per_quantum_incremental =
            incremental_nanos as f64 / FLEET_QUANTA as f64 / 1.0e3;
        let us_per_quantum_scheduled = scheduled_nanos as f64 / FLEET_QUANTA as f64 / 1.0e3;
        FleetScalingReport {
            fleet,
            quanta: FLEET_QUANTA,
            tolerance: FLEET_TOLERANCE,
            churn_fraction: FLEET_CHURN_FRACTION,
            policy: "performance-market".to_string(),
            budget_watts,
            us_per_quantum_full,
            us_per_quantum_incremental,
            incremental_speedup: us_per_quantum_full
                / us_per_quantum_incremental.max(f64::MIN_POSITIVE),
            apps_skipped,
            apps_rearbitrated,
            active_app_quanta,
            counters_reconcile: apps_skipped + apps_rearbitrated == active_app_quanta,
            tolerance_zero_identical,
            us_per_quantum_scheduled,
            scheduled_speedup: us_per_quantum_full
                / us_per_quantum_scheduled.max(f64::MIN_POSITIVE),
            sleep_horizon: wake.horizon,
            steady_quanta: wake.steady_quanta,
            apps_slept,
            apps_skipped_scheduled,
            apps_rearbitrated_scheduled,
            scheduled_counters_reconcile: apps_slept
                + apps_skipped_scheduled
                + apps_rearbitrated_scheduled
                == active_app_quanta,
            horizon_zero_identical,
        }
    }

    /// One human-readable summary line for the console.
    pub fn to_line(&self) -> String {
        format!(
            "fleet {:>9}: full {:>12.1} µs/quantum, incremental {:>11.1} µs/quantum \
             ({:.1}x), scheduled {:>11.1} µs/quantum ({:.1}x), \
             slept {} / skipped {} / re-arbitrated {} of {} app-quanta \
             [reconcile: {}/{}, tolerance-0: {}, horizon-0: {}]",
            self.fleet,
            self.us_per_quantum_full,
            self.us_per_quantum_incremental,
            self.incremental_speedup,
            self.us_per_quantum_scheduled,
            self.scheduled_speedup,
            self.apps_slept,
            self.apps_skipped_scheduled,
            self.apps_rearbitrated_scheduled,
            self.active_app_quanta,
            if self.counters_reconcile { "ok" } else { "FAIL" },
            if self.scheduled_counters_reconcile { "ok" } else { "FAIL" },
            if self.tolerance_zero_identical { "ok" } else { "FAIL" },
            if self.horizon_zero_identical { "ok" } else { "FAIL" },
        )
    }
}

/// Merges `reports` into the JSON file at `path` under the `fleet_scaling`
/// key: rows replace any existing row at the same fleet size, other rows
/// and every other top-level key survive untouched, and rows come out
/// sorted by fleet size. The file is created (as a bare
/// `{"fleet_scaling": [...]}` object) when missing, so `fig5 --fleet` works
/// before the perf harness has ever run.
///
/// Existing rows are handled as **raw JSON values**, never re-parsed into
/// [`FleetScalingReport`]: rows written by older builds lack the
/// scheduled-arm fields, and a merge that does not re-measure their size
/// must carry them through verbatim rather than reject the file.
///
/// # Errors
///
/// Returns the underlying message when the existing file cannot be parsed
/// or the merged file cannot be written.
pub fn merge_fleet_scaling(path: &str, reports: &[FleetScalingReport]) -> Result<(), String> {
    let mut root = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str::<Value>(&text)
            .map_err(|err| format!("could not parse {path}: {err:?}"))?
        {
            Value::Object(entries) => entries,
            other => return Err(format!("{path} holds {other:?}, not a JSON object")),
        },
        Err(_) => Vec::new(),
    };
    let mut rows: Vec<Value> = match root.iter().find(|(key, _)| key == "fleet_scaling") {
        Some((_, Value::Array(rows))) => rows.clone(),
        Some((_, other)) => {
            return Err(format!(
                "fleet_scaling in {path} holds {other:?}, not a JSON array"
            ))
        }
        None => Vec::new(),
    };
    // The fleet size of a raw row, for replacement and ordering; rows
    // without one sort last and are never replaced.
    let fleet_of = |row: &Value| -> Option<u64> {
        let Value::Object(entries) = row else {
            return None;
        };
        entries
            .iter()
            .find(|(key, _)| key == "fleet")
            .and_then(|(_, value)| match value {
                Value::UInt(fleet) => Some(*fleet),
                Value::Int(fleet) => u64::try_from(*fleet).ok(),
                _ => None,
            })
    };
    rows.retain(|row| {
        fleet_of(row).is_none_or(|fleet| {
            !reports.iter().any(|report| report.fleet as u64 == fleet)
        })
    });
    rows.extend(reports.iter().map(|report| report.to_value()));
    rows.sort_by_key(|row| fleet_of(row).unwrap_or(u64::MAX));
    let rows = Value::Array(rows);
    match root.iter_mut().find(|(key, _)| key == "fleet_scaling") {
        Some((_, value)) => *value = rows,
        None => root.push(("fleet_scaling".to_string(), rows)),
    }
    let json = serde_json::to_string_pretty(&Value::Object(root))
        .map_err(|err| format!("could not serialise {path}: {err:?}"))?;
    std::fs::write(path, json).map_err(|err| format!("could not write {path}: {err}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_reconciles_and_matches_the_full_fold_bitwise() {
        let report = FleetScalingReport::measure(500);
        assert_eq!(report.fleet, 500);
        assert!(report.counters_reconcile, "{report:?}");
        assert!(report.tolerance_zero_identical, "{report:?}");
        assert!(report.apps_skipped > 0, "steady apps skip: {report:?}");
        assert!(report.apps_rearbitrated > 0, "churn re-enters: {report:?}");
        assert!(report.scheduled_counters_reconcile, "{report:?}");
        assert!(report.horizon_zero_identical, "{report:?}");
        assert!(report.apps_slept > 0, "steady apps sleep: {report:?}");
        assert!(
            report.apps_slept + report.apps_skipped_scheduled >= report.apps_skipped,
            "sleep must cover at least the quanta skipping covered: {report:?}"
        );
    }

    #[test]
    fn the_trace_is_deterministic_up_to_wall_clock() {
        let first = FleetScalingReport::measure(300);
        let second = FleetScalingReport::measure(300);
        assert_eq!(first.apps_skipped, second.apps_skipped);
        assert_eq!(first.apps_rearbitrated, second.apps_rearbitrated);
        assert_eq!(first.active_app_quanta, second.active_app_quanta);
        assert_eq!(first.apps_slept, second.apps_slept);
        assert_eq!(first.apps_skipped_scheduled, second.apps_skipped_scheduled);
        assert_eq!(
            first.apps_rearbitrated_scheduled,
            second.apps_rearbitrated_scheduled
        );
        assert_eq!(
            first.tolerance_zero_identical,
            second.tolerance_zero_identical
        );
        assert_eq!(first.horizon_zero_identical, second.horizon_zero_identical);
    }

    #[test]
    fn merge_replaces_same_size_rows_and_preserves_other_keys() {
        let dir = std::env::temp_dir().join("fleet_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, "{\n  \"mode\": \"full\",\n  \"existing\": 7\n}").unwrap();

        let mut report = FleetScalingReport::measure(100);
        merge_fleet_scaling(path, std::slice::from_ref(&report)).unwrap();
        report.us_per_quantum_full = 123.0;
        merge_fleet_scaling(path, std::slice::from_ref(&report)).unwrap();

        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"mode\""), "other keys survive: {text}");
        assert!(text.contains("\"existing\""), "other keys survive: {text}");
        assert_eq!(
            text.matches("\"fleet\":").count(),
            1,
            "same-size row replaced, not appended: {text}"
        );
        assert!(text.contains("123"), "replacement row wins: {text}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn merge_carries_old_schema_rows_through_verbatim() {
        // A row written before the scheduled-arm fields existed must
        // survive a merge at a *different* fleet size untouched — the merge
        // treats foreign rows as raw JSON, never re-parses them.
        let dir = std::env::temp_dir().join("fleet_merge_old_schema_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        std::fs::write(
            path,
            "{\n  \"fleet_scaling\": [\n    {\"fleet\": 42, \"us_per_quantum_full\": 9.5}\n  ]\n}",
        )
        .unwrap();

        let report = FleetScalingReport::measure(100);
        merge_fleet_scaling(path, std::slice::from_ref(&report)).unwrap();

        let text = std::fs::read_to_string(path).unwrap();
        assert!(
            text.contains("\"fleet\": 42"),
            "old-schema row survives: {text}"
        );
        assert_eq!(
            text.matches("\"fleet\":").count(),
            2,
            "old row kept alongside the new one: {text}"
        );
        let old_pos = text.find("\"fleet\": 42").unwrap();
        let new_pos = text.find("\"fleet\": 100").unwrap();
        assert!(old_pos < new_pos, "rows sorted by fleet size: {text}");
        std::fs::remove_file(path).unwrap();
    }
}
