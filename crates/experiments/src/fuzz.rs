//! The scenario fuzzer's execution probe: one [`Scenario`] in, one
//! [`ScenarioOutcome`] out.
//!
//! The probe runs the fig5 pipelines *hardened by the fixes earlier fuzz
//! campaigns forced* — the structure is `run_arm` / `run_hierarchy_cell`'s,
//! plus the two robustness knobs that closed pinned incident classes:
//!
//! * single-rack scenarios run the flat coordinated arm (performance
//!   market, runtime app lifecycle, arbitration at the *end* of each
//!   quantum) with **admission control** on — registration decides a
//!   mid-run arrival under a zero envelope, closing the landing-quantum
//!   cap hole of `tests/corpus/cap_violation_machine.json`;
//! * multi-rack scenarios run the rack → datacenter arm (arbitration at
//!   the *start* of each quantum, rack envelopes audited but not
//!   enforced) with **award hysteresis** at both levels, closing the
//!   award limit cycle of `tests/corpus/oscillation.json`;
//! * both apply the scenario's [`workloads::FaultPlan`] — crashed apps
//!   stop executing, stalled/corrupted telemetry stops or lies to the
//!   platform while the meter keeps seeing physical truth — and both also
//!   run the matching uncoordinated baseline, which anchors the
//!   perf/W-cliff oracle.
//!
//! On top of the simulation, the probe asserts the shared
//! [`coordinator::invariants`] oracles every quantum (award sanity, budget
//! conservation, summary consistency, hierarchy conservation) and at the
//! end of the run (cap violations, starvation, award oscillation, the
//! perf/W cliff). Violations are deduplicated by label — the fuzzer cares
//! about incident *classes*, not how many quanta exhibited one.

use coordinator::invariants::{
    active_total, check_award_vector, check_budget_conservation, check_cap_violation,
    check_hierarchy_conservation, check_perf_per_watt_cliff, check_starvation,
    check_summary_total, AwardedApp, HierarchyTotals, InvariantViolation, OscillationTracker,
};
use coordinator::{
    AppHandle, AwardHysteresis, Coordinator, DatacenterArbiter, PerformanceMarket,
    RackCoordinator,
};
use obs::{Counter, Recorder};
use scenario_fuzz::{violation_label, PolicyPathCounters, ScenarioOutcome};
use workloads::Scenario;
use xeon_sim::{MachineMeter, XeonServer};

use crate::driver::to_server_demand;
use crate::faults::FaultRuntime;
use crate::fig3::map_configuration;
use crate::fig5::{
    budget_watts, build_apps, datacenter_budget_watts, managed_for, run_arm, run_hierarchy_cell,
    AppSim, Arm, HierarchyArm, QUANTUM_SECONDS,
};

/// Seed-mixing constant shared with the experiment cells.
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Coordinated runs must hold the machine cap outright (the fig5 tests pin
/// exactly this for the hand-written mixes).
const MACHINE_CAP_LIMIT: f64 = 0.0;

/// Rack envelopes are audited, not enforced; any overdraw is an incident
/// class worth a fixture (the known defect of the hierarchy design).
const RACK_CAP_LIMIT: f64 = 0.0;

/// An app resident at least this many quanta …
const STARVATION_MIN_RESIDENCY: usize = 8;

/// … that attains less than this fraction of its goal is starved.
const STARVATION_FLOOR: f64 = 0.05;

/// Coordinated perf/W below this fraction of the uncoordinated baseline is
/// a cliff: coordination actively hurt.
const CLIFF_FLOOR_RATIO: f64 = 0.9;

/// Award moves below this fraction of the budget are dither, not
/// oscillation.
const OSCILLATION_THRESHOLD_FRACTION: f64 = 0.02;

/// The award-hysteresis dead band — and slew limit — the hierarchy probe
/// arbitrates under, deliberately equal to the oscillation oracle's
/// material-move threshold: any proposal the dead band holds is by
/// definition dither, and any move the slew limit emits is at most one
/// threshold per quantum, so a real redistribution arrives as a ramp the
/// oracle reads as a single direction, never as a flip. (The rack-level
/// coordinators arbitrate under their envelope, a fraction of the
/// datacenter budget, so their per-quantum steps are strictly inside the
/// oracle's band.)
const HYSTERESIS_DEAD_BAND: f64 = OSCILLATION_THRESHOLD_FRACTION;

/// Tolerated direction-flip rate in an app's award series.
const OSCILLATION_FLIP_LIMIT: f64 = 0.6;

/// Violations deduplicated by [`violation_label`]: the first instance of
/// each label is kept, later ones (more quanta, more apps) are dropped.
#[derive(Default)]
struct ViolationLog {
    violations: Vec<InvariantViolation>,
}

impl ViolationLog {
    fn push(&mut self, violation: InvariantViolation) {
        let label = violation_label(&violation);
        if !self
            .violations
            .iter()
            .any(|seen| violation_label(seen) == label)
        {
            self.violations.push(violation);
        }
    }

    fn extend(&mut self, violations: Vec<InvariantViolation>) {
        for violation in violations {
            self.push(violation);
        }
    }

    fn push_opt(&mut self, violation: Option<InvariantViolation>) {
        if let Some(violation) = violation {
            self.push(violation);
        }
    }
}

/// What the instrumented coordinated run reports before baseline
/// comparison.
struct ProbeMetrics {
    log: ViolationLog,
    counters: PolicyPathCounters,
    cap_violation_fraction: f64,
    mean_attainment: f64,
    perf_per_watt: f64,
}

/// Counts the quanta at which the budget staircase changes the cap.
fn budget_step_count(scenario: &Scenario) -> u64 {
    (1..scenario.quanta)
        .filter(|&q| scenario.budget_fraction_at(q) != scenario.budget_fraction_at(q - 1))
        .count() as u64
}

/// Tallies one app's post-step decision into the policy-path counters.
fn count_decision(counters: &mut PolicyPathCounters, decision: Option<seec::CapDecision>) {
    let Some(decision) = decision else { return };
    counters.decisions += 1;
    match decision.goal_met {
        Some(true) => counters.goal_met += 1,
        Some(false) => counters.goal_missed += 1,
        None => counters.goal_unknown += 1,
    }
}

/// End-of-run oracles shared by both probe shapes: machine cap, per-app
/// starvation, award oscillation.
fn finish_run_checks(
    log: &mut ViolationLog,
    meter: &MachineMeter,
    scenario: &Scenario,
    apps: &[AppSim],
    attainments: &[f64],
    oscillations: &[OscillationTracker],
) {
    let quanta = scenario.quanta;
    log.push_opt(check_cap_violation(
        "machine",
        meter.violation_rate(),
        MACHINE_CAP_LIMIT,
    ));
    for (index, sim) in apps.iter().enumerate() {
        let residency = sim
            .spec
            .departure
            .unwrap_or(quanta)
            .min(quanta)
            .saturating_sub(sim.spec.arrival);
        // A fault-targeted app is *supposed* to underperform (a crashed
        // app attains nothing by construction); starving it is the
        // injected fault's doing, not an arbitration defect.
        if residency >= STARVATION_MIN_RESIDENCY && !scenario.fault_plan.targets_app(index) {
            log.push_opt(check_starvation(
                &format!("app-{index}"),
                attainments[index],
                STARVATION_FLOOR,
            ));
        }
        log.push_opt(oscillations[index].check(&format!("app-{index}"), OSCILLATION_FLIP_LIMIT));
    }
}

/// The flat coordinated arm (performance market), instrumented. Mirrors
/// `run_arm`'s `CoordinatedMarket` path step for step — including the
/// end-of-quantum arbitration discipline, which is precisely what makes
/// arrival bursts interesting to the fuzzer.
fn run_flat_probe(server: &XeonServer, scenario: &Scenario, seed: u64) -> ProbeMetrics {
    let mut apps = build_apps(server, scenario);
    let budget_range = server.max_power_watts() - server.idle_power_watts();
    let budget = budget_watts(server, scenario);
    let mut meter = MachineMeter::new(budget);
    let mut faults = FaultRuntime::for_plan(&scenario.fault_plan, apps.len());
    // Admission control closes the fuzzer-found arrival hole pinned by
    // `tests/corpus/cap_violation_machine.json`: under end-of-quantum
    // arbitration a mid-run arrival used to execute its landing quantum in
    // launch configuration under pre-arrival awards, transiently blowing
    // the cap. Registration now decides the newcomer under a zero
    // envelope, landing it in its cheapest configuration.
    //
    // The admission *feasibility* pre-check closes the residual hole that
    // admission control cannot — `tests/corpus/cap_violation_launch_storm.json`
    // pinned a fleet whose cheapest-configuration floors already exceed the
    // cap, an infeasibility no arbitration can decide away. Registrants
    // that would push the committed floor past the cap are refused
    // outright and never execute.
    let mut coordinator = Coordinator::new(budget, Box::new(PerformanceMarket::default()))
        .with_pool(std::sync::Arc::clone(exec::global_pool_arc()))
        .with_admission_control(true)
        .with_admission_feasibility(true);
    if scenario.arbitration_tolerance > 0.0 {
        coordinator.set_arbitration_tolerance(Some(scenario.arbitration_tolerance));
    }
    if scenario.wake_horizon > 0 {
        coordinator.set_wake_schedule(Some(coordinator::WakeConfig {
            steady_quanta: scenario.wake_steady_quanta,
            horizon: scenario.wake_horizon,
        }));
    }
    let mut handles: Vec<Option<AppHandle>> = vec![None; apps.len()];
    let mut oscillations =
        vec![OscillationTracker::new(budget * OSCILLATION_THRESHOLD_FRACTION); apps.len()];
    let mut log = ViolationLog::default();
    let mut counters = PolicyPathCounters {
        budget_steps: budget_step_count(scenario),
        ..PolicyPathCounters::default()
    };

    let mut now = 0.0;
    let mut per_app_power = vec![0.0f64; apps.len()];
    let mut rates = vec![0.0f64; apps.len()];
    for quantum in 0..scenario.quanta {
        let start = now;
        now += QUANTUM_SECONDS;

        // ---- Lifecycle (identical to run_arm).
        let cap = scenario.budget_fraction_at(quantum) * budget_range;
        if cap != meter.cap_watts() {
            meter.set_cap(cap);
        }
        for (index, sim) in apps.iter().enumerate() {
            let never_active = sim.spec.departure.is_some_and(|d| d <= sim.spec.arrival);
            if sim.spec.arrival == quantum && !never_active {
                let managed = managed_for(server, sim, seed, index);
                // A feasibility rejection leaves the slot handle-less: the
                // refused app never launches, draws nothing, and is skipped
                // by every later loop.
                if let Ok(handle) = coordinator.try_register(managed) {
                    handles[index] = Some(handle);
                    counters.arrivals += 1;
                }
            }
            if sim.spec.departure == Some(quantum) {
                if let Some(handle) = handles[index] {
                    coordinator.retire(handle);
                    counters.departures += 1;
                }
            }
        }

        // ---- Evaluate active apps under their current configurations.
        let mut core_duty_total = 0.0;
        for (index, sim) in apps.iter().enumerate() {
            per_app_power[index] = 0.0;
            rates[index] = 0.0;
            if !sim.active_at(quantum) {
                continue;
            }
            if faults.as_ref().is_some_and(|f| !f.executes(index, quantum)) {
                continue; // crashed: no cycles, no watts
            }
            let Some(handle) = handles[index] else {
                continue; // refused admission: never launched
            };
            let configuration = map_configuration(
                server,
                coordinator.app(handle).runtime().current_configuration(),
            );
            let report =
                server.evaluate(&to_server_demand(sim.demand_at(quantum)), &configuration);
            rates[index] = report.work_units / report.seconds;
            per_app_power[index] = report.power_above_idle_watts;
            core_duty_total += configuration.cores as f64 * configuration.active_cycle_fraction;
        }
        let contention = if core_duty_total > server.total_cores() as f64 {
            server.total_cores() as f64 / core_duty_total
        } else {
            1.0
        };
        let mut machine_power = 0.0;
        for (index, sim) in apps.iter_mut().enumerate() {
            if !sim.active_at(quantum) {
                continue;
            }
            let Some(handle) = handles[index] else {
                continue; // refused admission: never launched
            };
            let work = rates[index] * contention * QUANTUM_SECONDS;
            let power = per_app_power[index] * contention;
            machine_power += power;
            sim.active_seconds += QUANTUM_SECONDS;
            sim.work_done += work;
            let report = match faults.as_mut() {
                None => Some((work, power)),
                Some(f) => f.report(index, quantum, work, power),
            };
            let Some((reported_work, reported_power)) = report else {
                continue; // stalled pipe or dead app: nothing arrives
            };
            coordinator.advance(handle, start, now, reported_work, reported_power);
        }
        meter.record(QUANTUM_SECONDS, machine_power);

        // ---- Arbitrate for the next quantum (end-of-quantum discipline).
        let next_budget = scenario.budget_fraction_at(quantum + 1) * budget_range;
        if next_budget != coordinator.budget_watts() {
            coordinator.set_budget(next_budget);
        }
        let stepped_at = coordinator.quantum();
        let summary = coordinator.step(now).expect("every app declares a goal");

        // ---- Per-step oracles: the same checks the proptests pin.
        let slots: Vec<AwardedApp> = (0..coordinator.len())
            .map(|position| AwardedApp {
                active: coordinator
                    .app(AppHandle::from_index(position))
                    .active_at(stepped_at),
                ceiling: None,
            })
            .collect();
        log.extend(check_award_vector(coordinator.awards(), &slots));
        let total = active_total(coordinator.awards(), &slots);
        log.push_opt(check_budget_conservation(
            total,
            coordinator.budget_watts() * 0.95,
        ));
        log.push_opt(check_summary_total(summary.awarded_watts_total, total));
        for (index, sim) in apps.iter().enumerate() {
            if let Some(handle) = handles[index] {
                count_decision(&mut counters, coordinator.app(handle).last_decision());
                if sim.active_at(quantum) {
                    oscillations[index].observe(coordinator.app(handle).awarded_watts());
                }
            }
        }
    }

    let attainments: Vec<f64> = apps.iter().map(AppSim::attainment).collect();
    let mean_attainment = attainments.iter().sum::<f64>() / attainments.len().max(1) as f64;
    let mean_power = meter.mean_watts();
    let perf_per_watt = if mean_power > 0.0 {
        attainments.iter().sum::<f64>() / mean_power
    } else {
        0.0
    };
    finish_run_checks(&mut log, &meter, scenario, &apps, &attainments, &oscillations);
    ProbeMetrics {
        log,
        counters,
        cap_violation_fraction: meter.violation_rate(),
        mean_attainment,
        perf_per_watt,
    }
}

/// The rack → datacenter coordinated arm, instrumented. Mirrors
/// `run_hierarchy_cell`'s `RackCoordinated` path (start-of-quantum
/// arbitration, per-rack contention, audited rack envelopes).
fn run_hierarchy_probe(server: &XeonServer, scenario: &Scenario, seed: u64) -> ProbeMetrics {
    let mut apps = build_apps(server, scenario);
    let racks = scenario.rack_count();
    let budget_range = (server.max_power_watts() - server.idle_power_watts()) * racks as f64;
    let budget = datacenter_budget_watts(server, scenario);
    let mut meter = MachineMeter::new(budget);
    let mut faults = FaultRuntime::for_plan(&scenario.fault_plan, apps.len());
    // Award hysteresis at both levels closes the fuzzer-found limit cycle
    // pinned by `tests/corpus/oscillation.json`: re-dividing many-rack
    // envelopes every quantum made an app's award direction flip nearly
    // every step. Sub-dead-band proposals are held, so dither never
    // reaches the apps; larger proposals are approached under the slew
    // limit, so the market's launch-transient swings (a third of an
    // envelope per quantum in the pinned fixture) decay into sub-band
    // dither instead of being adopted flip after flip. Real
    // redistributions still pass through — as ramps.
    let market = || {
        Box::new(
            AwardHysteresis::new(
                Box::new(PerformanceMarket::default()),
                HYSTERESIS_DEAD_BAND,
            )
            .with_max_step_fraction(HYSTERESIS_DEAD_BAND),
        )
    };
    let mut datacenter = DatacenterArbiter::new(budget, market());
    for rack in 0..racks {
        let mut rack_coordinator = Coordinator::new(budget, market())
            .with_pool(std::sync::Arc::clone(exec::global_pool_arc()));
        if scenario.arbitration_tolerance > 0.0 {
            rack_coordinator.set_arbitration_tolerance(Some(scenario.arbitration_tolerance));
        }
        if scenario.wake_horizon > 0 {
            rack_coordinator.set_wake_schedule(Some(coordinator::WakeConfig {
                steady_quanta: scenario.wake_steady_quanta,
                horizon: scenario.wake_horizon,
            }));
        }
        datacenter.add_rack(RackCoordinator::new(
            format!("rack-{rack}"),
            rack_coordinator,
        ));
    }
    let mut handles: Vec<Option<AppHandle>> = vec![None; apps.len()];
    let mut oscillations =
        vec![OscillationTracker::new(budget * OSCILLATION_THRESHOLD_FRACTION); apps.len()];
    let mut log = ViolationLog::default();
    let mut counters = PolicyPathCounters {
        budget_steps: budget_step_count(scenario),
        hierarchical: true,
        ..PolicyPathCounters::default()
    };

    let mut now = 0.0;
    let mut per_app_power = vec![0.0f64; apps.len()];
    let mut rates = vec![0.0f64; apps.len()];
    let mut rack_core_duty = vec![0.0f64; racks];
    for quantum in 0..scenario.quanta {
        let start = now;
        now += QUANTUM_SECONDS;

        // ---- Lifecycle (identical to run_hierarchy_cell).
        let cap = scenario.budget_fraction_at(quantum) * budget_range;
        if cap != meter.cap_watts() {
            meter.set_cap(cap);
        }
        for (index, sim) in apps.iter().enumerate() {
            let never_active = sim.spec.departure.is_some_and(|d| d <= sim.spec.arrival);
            if sim.spec.arrival == quantum && !never_active {
                let managed = managed_for(server, sim, seed, index);
                handles[index] = Some(datacenter.rack_mut(sim.spec.rack).register(managed));
                counters.arrivals += 1;
            }
            if sim.spec.departure == Some(quantum) {
                if let Some(handle) = handles[index] {
                    datacenter.rack_mut(sim.spec.rack).retire(handle);
                    counters.departures += 1;
                }
            }
        }

        // ---- Arbitrate at the start of the quantum.
        if cap != datacenter.budget_watts() {
            datacenter.set_budget(cap);
        }
        let summary = datacenter.step(start).expect("every app declares a goal");

        // ---- Per-step oracles: rack envelopes judged as an award vector,
        // conservation datacenter → rack → app, summary consistency.
        let rack_slots: Vec<AwardedApp> = datacenter
            .racks()
            .iter()
            .map(|rack| {
                let any_active = (0..rack.coordinator().len()).any(|position| {
                    rack.coordinator()
                        .app(AppHandle::from_index(position))
                        .active_at(quantum)
                });
                AwardedApp {
                    active: any_active,
                    ceiling: None,
                }
            })
            .collect();
        log.extend(check_award_vector(datacenter.rack_awards(), &rack_slots));
        let totals = HierarchyTotals {
            budget: datacenter.budget_watts(),
            rack_envelopes: datacenter.rack_awards().to_vec(),
            rack_fleet_totals: datacenter
                .racks()
                .iter()
                .map(|rack| rack.coordinator().awards().iter().sum())
                .collect(),
            headroom: 0.95,
        };
        log.extend(check_hierarchy_conservation(&totals));
        let rack_total: f64 = totals.rack_envelopes.iter().sum();
        log.push_opt(check_summary_total(
            summary.rack_awarded_watts_total,
            rack_total,
        ));
        for (index, sim) in apps.iter().enumerate() {
            if let Some(handle) = handles[index] {
                let app = datacenter.rack(sim.spec.rack).coordinator().app(handle);
                count_decision(&mut counters, app.last_decision());
                if sim.active_at(quantum) {
                    oscillations[index].observe(app.awarded_watts());
                }
            }
        }

        // ---- Evaluate active apps; contention is per rack.
        rack_core_duty.fill(0.0);
        for (index, sim) in apps.iter().enumerate() {
            per_app_power[index] = 0.0;
            rates[index] = 0.0;
            if !sim.active_at(quantum) {
                continue;
            }
            if faults.as_ref().is_some_and(|f| !f.executes(index, quantum)) {
                continue; // crashed: no cycles, no watts
            }
            let handle = handles[index].expect("active apps have registered");
            let configuration = map_configuration(
                server,
                datacenter
                    .rack(sim.spec.rack)
                    .coordinator()
                    .app(handle)
                    .runtime()
                    .current_configuration(),
            );
            let report =
                server.evaluate(&to_server_demand(sim.demand_at(quantum)), &configuration);
            rates[index] = report.work_units / report.seconds;
            per_app_power[index] = report.power_above_idle_watts;
            rack_core_duty[sim.spec.rack] +=
                configuration.cores as f64 * configuration.active_cycle_fraction;
        }
        let rack_contention: Vec<f64> = rack_core_duty
            .iter()
            .map(|&duty| {
                if duty > server.total_cores() as f64 {
                    server.total_cores() as f64 / duty
                } else {
                    1.0
                }
            })
            .collect();
        let mut machine_power = 0.0;
        for (index, sim) in apps.iter_mut().enumerate() {
            if !sim.active_at(quantum) {
                continue;
            }
            let contention = rack_contention[sim.spec.rack];
            let work = rates[index] * contention * QUANTUM_SECONDS;
            let power = per_app_power[index] * contention;
            // The rack meters the rail (physical truth), then receives
            // whatever the possibly-faulty app claims as telemetry.
            let (work, power) = datacenter
                .rack_mut(sim.spec.rack)
                .admit(start, now, work, power);
            machine_power += power;
            sim.active_seconds += QUANTUM_SECONDS;
            sim.work_done += work;
            let report = match faults.as_mut() {
                None => Some((work, power)),
                Some(f) => f.report(index, quantum, work, power),
            };
            let Some((reported_work, reported_power)) = report else {
                continue; // stalled pipe or dead app: nothing arrives
            };
            let handle = handles[index].expect("active apps have registered");
            datacenter
                .rack_mut(sim.spec.rack)
                .advance_report(handle, start, now, reported_work, reported_power);
        }
        meter.record(QUANTUM_SECONDS, machine_power);
    }

    // The audited-but-not-enforced rack envelopes: worst overdraw across
    // racks.
    let worst_rack_violation = datacenter
        .racks()
        .iter()
        .map(|rack| rack.meter().violation_rate())
        .fold(0.0, f64::max);
    log.push_opt(check_cap_violation("rack", worst_rack_violation, RACK_CAP_LIMIT));

    let attainments: Vec<f64> = apps.iter().map(AppSim::attainment).collect();
    let mean_attainment = attainments.iter().sum::<f64>() / attainments.len().max(1) as f64;
    let mean_power = meter.mean_watts();
    let perf_per_watt = if mean_power > 0.0 {
        attainments.iter().sum::<f64>() / mean_power
    } else {
        0.0
    };
    finish_run_checks(&mut log, &meter, scenario, &apps, &attainments, &oscillations);
    ProbeMetrics {
        log,
        counters,
        cap_violation_fraction: meter.violation_rate(),
        mean_attainment,
        perf_per_watt,
    }
}

/// Executes one scenario through the coordinated arm its rack tagging
/// selects (flat for one rack, rack → datacenter otherwise) plus the
/// matching uncoordinated baseline, and reports the invariant verdicts.
pub fn fuzz_probe(server: &XeonServer, scenario: &Scenario, seed: u64) -> ScenarioOutcome {
    let baseline_seed = seed.wrapping_mul(SEED_MIX).wrapping_add(0xba5e);
    let (mut metrics, baseline_perf_per_watt) = if scenario.rack_count() > 1 {
        let metrics = run_hierarchy_probe(server, scenario, seed);
        let baseline =
            run_hierarchy_cell(server, scenario, HierarchyArm::Uncoordinated, baseline_seed, None).0;
        (metrics, baseline.performance_per_watt)
    } else {
        let metrics = run_flat_probe(server, scenario, seed);
        let baseline = run_arm(server, scenario, Arm::Uncoordinated, baseline_seed, None);
        (metrics, baseline.performance_per_watt)
    };
    metrics.log.push_opt(check_perf_per_watt_cliff(
        metrics.perf_per_watt,
        baseline_perf_per_watt,
        CLIFF_FLOOR_RATIO,
    ));
    ScenarioOutcome {
        violations: metrics.log.violations,
        counters: metrics.counters,
        apps: scenario.apps.len(),
        racks: scenario.rack_count(),
        cap_violation_fraction: metrics.cap_violation_fraction,
        mean_attainment: metrics.mean_attainment,
        perf_per_watt: metrics.perf_per_watt,
        baseline_perf_per_watt,
    }
}

/// A ready-made executor closure for [`scenario_fuzz::fuzz`]: one
/// calibrated R410 shared across all executions, every run derived from
/// `seed` alone.
pub fn probe_executor(seed: u64) -> impl FnMut(&Scenario) -> ScenarioOutcome {
    probe_executor_obs(seed, None)
}

/// [`probe_executor`] with telemetry: every execution (candidate, replay,
/// or shrink step) ticks [`Counter::FuzzExecutions`] on the recorder. The
/// probe outcomes themselves are unchanged — counting is read-only.
pub fn probe_executor_obs(
    seed: u64,
    observer: Option<std::sync::Arc<Recorder>>,
) -> impl FnMut(&Scenario) -> ScenarioOutcome {
    let server = XeonServer::dell_r410_calibrated();
    move |scenario: &Scenario| {
        if let Some(observer) = &observer {
            observer.count(Counter::FuzzExecutions);
        }
        fuzz_probe(&server, scenario, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small clean mix: the probe must agree with the fig5 pins (the
    /// coordinated arm holds the cap on the hand-written mixes).
    fn small_flat_scenario() -> Scenario {
        let mut scenario = workloads::scenario_mixes(2012).swap_remove(0);
        scenario.quanta = 24;
        for app in &mut scenario.apps {
            app.arrival = app.arrival.min(12);
            if let Some(departure) = &mut app.departure {
                *departure = (*departure).clamp(app.arrival + 4, 24);
            }
        }
        scenario.sanitize();
        scenario
    }

    #[test]
    fn probe_is_deterministic_and_clean_on_a_tame_mix() {
        let server = XeonServer::dell_r410_calibrated();
        let scenario = small_flat_scenario();
        let a = fuzz_probe(&server, &scenario, 7);
        let b = fuzz_probe(&server, &scenario, 7);
        assert_eq!(a, b);
        assert!(
            !a.violations
                .iter()
                .any(|v| violation_label(v) == "cap_violation:machine"),
            "a tame resident mix must hold the cap: {:?}",
            a.violations
        );
        assert!(a.counters.decisions > 0);
        assert!(a.mean_attainment > 0.0);
        assert!(!a.counters.hierarchical);
    }

    #[test]
    fn probe_takes_the_hierarchy_path_for_rack_tagged_scenarios() {
        let server = XeonServer::dell_r410_calibrated();
        let mut scenario = workloads::vocabulary_mixes(2012).swap_remove(2);
        assert!(scenario.rack_count() > 1);
        scenario.quanta = 16;
        scenario.sanitize();
        let outcome = fuzz_probe(&server, &scenario, 7);
        assert!(outcome.counters.hierarchical);
        assert_eq!(outcome.racks, scenario.rack_count());
    }
}
