//! Figure 3: SEEC on an existing Linux/x86 system.
//!
//! Each of the five SPLASH-2 benchmarks is launched on a single core at the
//! minimum clock speed and requests a performance equal to half the maximum
//! achievable. SEEC must meet that goal while minimising power using three
//! actions: the number of cores assigned, the clock speed of those cores, and
//! the number of non-idle cycles. Performance per watt —
//! `min(achieved, target) / (power − idle)` — is reported for *no
//! adaptation*, *uncoordinated adaptation*, *SEEC*, the *static oracle*, and
//! the *dynamic oracle*, normalised to the dynamic oracle (DAC 2012 §5.2).

use actuation::{Actuator, ActuatorSpec, Axis, Configuration, SettingSpec, TableActuator};
use serde::{Deserialize, Serialize};
use workloads::{HeartbeatedWorkload, QuantumDemand, SplashBenchmark, Workload};
use xeon_sim::{ServerConfiguration, ServerReport, XeonServer};

use crate::driver::{
    quantum_efficiency, run_cells, to_server_demand, XeonEvalTable, XeonRunOutcome,
};
use seec::control::PiController;
use seec::{SeecRuntime, UncoordinatedRuntime};

/// Number of quanta each benchmark is divided into (the paper expands inputs
/// so every run lasts much longer than the 1 s power-sampling interval).
pub const QUANTA_PER_RUN: usize = 120;

/// Wall-clock overhead charged per SEEC decision on this platform, in
/// seconds (decisions share the main cores with the application).
pub const DECISION_OVERHEAD_SECONDS: f64 = 1.0e-3;

/// The integral gain the convex-model (goal-respecting) protocol uses for
/// SEEC's PI controller. With anchored estimation the feed-forward term is
/// already calibrated, so the integral only sweeps up modelling residue;
/// the historical gain (0.2), tuned to also compensate the drifting
/// baseline, winds up badly over the ramp's window-lagged errors and then
/// cannot unwind (overshoot is nearly free under the linear model but
/// costs `utilisation^1.15` under the convex one).
pub const CONVEX_PROTOCOL_KI: f64 = 0.01;

/// The belief-aging halflives (in decision periods) the
/// `fig3 --belief-aging` experiment sweeps through the calibrated
/// (convex, goal-respecting) protocol — the ROADMAP's probe at the
/// *phase-stale beliefs* residue: SEEC settles one duty notch above the
/// optimum because the cheaper notch's belief was learned in an earlier
/// phase and is never revisited. Aging decays beliefs toward their
/// declared priors ([`seec::SeecRuntimeBuilder::belief_halflife`]), so the
/// stale notch is re-tried once per halflife-ish. Default-off: the
/// historical pipeline never ages (halflife ∞, bit-for-bit identical);
/// measured results live in EXPERIMENTS.md.
pub const BELIEF_AGING_HALFLIVES: [f64; 4] = [8.0, 16.0, 32.0, 64.0];

/// The integral retention factor the *leaky-integral experiment* applies to
/// the convex protocol's PI controller
/// ([`seec::control::PiController::with_leak`]): error mass absorbed over a
/// transient decays with a ~100-period time constant instead of having to
/// be unwound by opposite-sign errors. Default-off — [`Figure3::compute_on`]
/// runs leak 1.0 (bit-for-bit the historical controller); opt in with
/// [`Figure3::compute_on_with_leak`] or `fig3 --leaky-pi`. The measured
/// fidelity delta — the ROADMAP's "easy experiment", run and found *not* to
/// recover the residue (leaks 0.8–0.995 all land at or slightly below the
/// classical 0.839 of the dynamic oracle) — is recorded in EXPERIMENTS.md.
pub const CONVEX_PROTOCOL_LEAK: f64 = 0.99;

/// Controller/model knobs of the convex (goal-respecting) protocol that
/// individual experiments flip, bundled so each new experiment does not
/// grow every closed-loop runner's signature. The default is bit-for-bit
/// the historical protocol: classical integral, no belief aging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvexTuning {
    /// PI integral retention ([`seec::control::PiController::with_leak`];
    /// 1.0 = classical).
    pub leak: f64,
    /// Belief-aging halflife in decision periods
    /// ([`seec::SeecRuntimeBuilder::belief_halflife`]; ∞ = no aging).
    pub belief_halflife: f64,
}

impl Default for ConvexTuning {
    fn default() -> Self {
        ConvexTuning {
            leak: 1.0,
            belief_halflife: f64::INFINITY,
        }
    }
}

/// Per-benchmark results, as raw performance per watt beyond idle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure3Row {
    /// Benchmark.
    pub benchmark: SplashBenchmark,
    /// Target heart rate (half the maximum achievable), in beats per second.
    pub target_heart_rate: f64,
    /// No adaptation: the single configuration best on average across all
    /// benchmarks.
    pub no_adaptation: f64,
    /// Uncoordinated adaptation: one closed SEEC instance per actuator.
    pub uncoordinated: f64,
    /// Coordinated SEEC.
    pub seec: f64,
    /// Static oracle: best per-benchmark fixed configuration.
    pub static_oracle: f64,
    /// Dynamic oracle: best per-quantum configuration, no overhead.
    pub dynamic_oracle: f64,
}

impl Figure3Row {
    /// The row normalised to the dynamic oracle (the paper's y-axis).
    pub fn normalized(&self) -> [f64; 4] {
        let d = if self.dynamic_oracle > 0.0 {
            self.dynamic_oracle
        } else {
            1.0
        };
        [
            self.no_adaptation / d,
            self.uncoordinated / d,
            self.seec / d,
            1.0,
        ]
    }
}

/// The Figure-3 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3 {
    /// One row per benchmark, in the paper's order.
    pub rows: Vec<Figure3Row>,
}

impl Figure3 {
    /// Runs the full experiment on the modelled Dell R410.
    pub fn compute() -> Self {
        Figure3::compute_with(2012, QUANTA_PER_RUN)
    }

    /// Runs the experiment with an explicit seed and quantum count (smaller
    /// counts are useful in tests and benches).
    pub fn compute_with(seed: u64, quanta_per_run: usize) -> Self {
        Figure3::compute_on(&XeonServer::dell_r410(), seed, quanta_per_run)
    }

    /// Runs the experiment on an explicit server model (used by the
    /// calibrated-power-model study in EXPERIMENTS.md).
    ///
    /// The pipeline evaluates every (quantum, configuration) pair at most
    /// once: the shared no-adaptation baseline comes from one streaming pass
    /// over the duty-1.0 candidates, and each benchmark then memoizes its
    /// full grid in an [`XeonEvalTable`] from which the oracles and
    /// closed-loop runs are indexed lookups. The five benchmarks, and the
    /// policy cells within each benchmark, fan out across the persistent
    /// worker pool (via [`crate::driver::run_cells`], which degrades to
    /// inline execution on single-core hosts). Every closed-loop
    /// cell owns its own seeded runtime, so results are bit-for-bit
    /// identical to the sequential pipeline regardless of worker
    /// interleaving.
    pub fn compute_on(server: &XeonServer, seed: u64, quanta_per_run: usize) -> Self {
        Figure3::compute_on_with_leak(server, seed, quanta_per_run, 1.0)
    }

    /// [`Self::compute_on`] with the convex protocol's PI integral made
    /// leaky ([`CONVEX_PROTOCOL_LEAK`]; `leak = 1.0` is bit-for-bit
    /// [`Self::compute_on`]). The leak applies to the closed-loop SEEC and
    /// uncoordinated cells of the goal-respecting protocol only — it is a
    /// controller experiment, so oracles and fixed runs are untouched, and
    /// under a linear server model (where the historical pipeline runs) it
    /// is ignored entirely.
    pub fn compute_on_with_leak(
        server: &XeonServer,
        seed: u64,
        quanta_per_run: usize,
        leak: f64,
    ) -> Self {
        Figure3::compute_on_tuned(
            server,
            seed,
            quanta_per_run,
            ConvexTuning {
                leak,
                ..ConvexTuning::default()
            },
        )
    }

    /// [`Self::compute_on`] with explicit [`ConvexTuning`] knobs (the
    /// default tuning is bit-for-bit [`Self::compute_on`]). Like the leak,
    /// the knobs touch only the closed-loop SEEC and uncoordinated cells
    /// of the goal-respecting protocol — oracles and fixed runs are
    /// untouched, and the linear historical pipeline ignores them.
    pub fn compute_on_tuned(
        server: &XeonServer,
        seed: u64,
        quanta_per_run: usize,
        tuning: ConvexTuning,
    ) -> Self {
        // Under the convex power model the capped efficiency ratio is
        // gameable by deep under-utilisation, so selections (oracles and
        // the shared no-adaptation candidate) must respect the goal and the
        // closed loops run the anchored/interpolated protocol; the linear
        // default keeps the historical pipeline bit-for-bit. See the
        // goal-respecting oracle docs in [`crate::driver::XeonEvalTable`].
        let convex = server.utilization_power_exponent() != 1.0;
        // The shared no-adaptation candidates: the same (cores, clock) for
        // every application, duty fixed at 1.0, in grid order. The default
        // (fastest) configuration that defines the performance targets is
        // one of them.
        let grid = crate::driver::xeon_configuration_grid(server);
        let candidates: Vec<xeon_sim::ServerConfiguration> = grid
            .iter()
            .copied()
            .filter(|c| (c.active_cycle_fraction - 1.0).abs() < 1e-9)
            .collect();
        let default_candidate = candidates
            .iter()
            .position(|c| *c == server.default_configuration())
            .expect("the default configuration runs at full duty");

        // Phase 1 — per-benchmark quanta, the candidates' fixed outcomes
        // (one streaming pass, no table), and targets (half the maximum
        // achievable rate); one worker cell per benchmark.
        struct BenchmarkCell {
            benchmark: SplashBenchmark,
            quanta: Vec<QuantumDemand>,
            candidate_ppw: Vec<f64>,
            /// Whether each candidate's fixed run meets this benchmark's
            /// target (used only by the convex goal-respecting selection).
            candidate_feasible: Vec<bool>,
            target: f64,
        }
        let cells: Vec<BenchmarkCell> = run_cells(SplashBenchmark::ALL.len(), |index| {
            let benchmark = SplashBenchmark::ALL[index];
            let quanta = Workload::new(benchmark, seed).quanta(quanta_per_run);
            let outcomes = crate::driver::fixed_outcomes_streaming(server, &quanta, &candidates);
            let target = outcomes[default_candidate].heart_rate / 2.0;
            BenchmarkCell {
                benchmark,
                quanta,
                candidate_ppw: outcomes
                    .iter()
                    .map(|outcome| outcome.performance_per_watt(target))
                    .collect(),
                candidate_feasible: outcomes
                    .iter()
                    .map(|outcome| outcome.heart_rate >= target)
                    .collect(),
                target,
            }
        });

        // Phase 2 — pick the candidate maximising mean perf/W across
        // benchmarks (ties resolve like `Iterator::max_by`: the last
        // maximal candidate wins, as the unmemoized pipeline did). The
        // convex protocol restricts the choice to candidates feasible for
        // *every* benchmark (the default candidate always is — the targets
        // are defined as half its rate), so "best on average" cannot
        // degenerate into a goal-ignoring under-utilised configuration.
        let mean_ppw = |candidate: usize| -> f64 {
            let sum: f64 = cells.iter().map(|cell| cell.candidate_ppw[candidate]).sum();
            sum / cells.len() as f64
        };
        let no_adapt_candidate = (0..candidates.len())
            .filter(|&candidate| {
                !convex || cells.iter().all(|cell| cell.candidate_feasible[candidate])
            })
            .max_by(|&a, &b| {
                mean_ppw(a)
                    .partial_cmp(&mean_ppw(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("the default candidate is always feasible");

        // Phase 3 — the remaining policy cells of every benchmark. Each
        // benchmark memoizes its full (quantum × grid) evaluation table
        // once; the oracles are table scans and the closed-loop runs are
        // per-quantum lookups, each cell with its own seeded runtime.
        let rows: Vec<Figure3Row> = run_cells(cells.len(), |row| {
            let cell = &cells[row];
            let table = XeonEvalTable::build(server, &cell.quanta);
            let policies = run_cells(4, |policy| match (policy, convex) {
                (0, false) => table.static_oracle_performance_per_watt(cell.target),
                (0, true) => table.goal_respecting_static_oracle_performance_per_watt(cell.target),
                (1, false) => table
                    .dynamic_oracle_outcome(cell.target)
                    .performance_per_watt(cell.target),
                (1, true) => table
                    .goal_respecting_dynamic_oracle_outcome(cell.target)
                    .performance_per_watt(cell.target),
                (2, false) => run_seec_on_table(
                    server,
                    cell.benchmark,
                    &cell.quanta,
                    &table,
                    cell.target,
                    seed,
                )
                .performance_per_watt(cell.target),
                (2, true) => run_seec_convex_on_table_tuned(
                    server,
                    cell.benchmark,
                    &cell.quanta,
                    &table,
                    cell.target,
                    seed,
                    tuning,
                )
                .performance_per_watt(cell.target),
                (_, false) => run_uncoordinated_on_table(
                    server,
                    cell.benchmark,
                    &cell.quanta,
                    &table,
                    cell.target,
                    seed,
                )
                .performance_per_watt(cell.target),
                (_, true) => run_uncoordinated_convex_on_table_tuned(
                    server,
                    cell.benchmark,
                    &cell.quanta,
                    &table,
                    cell.target,
                    seed,
                    tuning,
                )
                .performance_per_watt(cell.target),
            });
            Figure3Row {
                benchmark: cell.benchmark,
                target_heart_rate: cell.target,
                no_adaptation: cell.candidate_ppw[no_adapt_candidate],
                uncoordinated: policies[3],
                seec: policies[2],
                static_oracle: policies[0],
                dynamic_oracle: policies[1],
            }
        });
        Figure3 { rows }
    }

    /// Geometric-mean ratio of SEEC to the static oracle across benchmarks —
    /// the multiplier Figure 4 applies to the Angstrom static oracle.
    pub fn seec_vs_static_oracle(&self) -> f64 {
        geometric_mean(self.rows.iter().map(|r| safe_ratio(r.seec, r.static_oracle)))
    }

    /// Geometric-mean ratio of SEEC to uncoordinated adaptation.
    pub fn seec_vs_uncoordinated(&self) -> f64 {
        geometric_mean(self.rows.iter().map(|r| safe_ratio(r.seec, r.uncoordinated)))
    }

    /// Geometric-mean fraction of the dynamic oracle that SEEC achieves.
    pub fn seec_fraction_of_dynamic_oracle(&self) -> f64 {
        geometric_mean(self.rows.iter().map(|r| safe_ratio(r.seec, r.dynamic_oracle)))
    }

    /// Per-benchmark SEEC / static-oracle multipliers (Figure 4 input).
    pub fn per_benchmark_multipliers(&self) -> Vec<(SplashBenchmark, f64)> {
        self.rows
            .iter()
            .map(|r| (r.benchmark, safe_ratio(r.seec, r.static_oracle)))
            .collect()
    }

    /// Renders the figure as an aligned text table of normalised values.
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "benchmark  no_adapt  uncoord   seec    static  dynamic (all normalised to dynamic oracle)\n",
        );
        for row in &self.rows {
            let [na, un, se, dy] = row.normalized();
            let st = if row.dynamic_oracle > 0.0 {
                row.static_oracle / row.dynamic_oracle
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:9}  {:8.3}  {:7.3}  {:6.3}  {:6.3}  {:7.3}\n",
                row.benchmark.name(),
                na,
                un,
                se,
                st,
                dy
            ));
        }
        out.push_str(&format!(
            "\nSEEC vs uncoordinated: {:+.1}%   SEEC vs static oracle: {:+.1}%   SEEC / dynamic oracle: {:.1}%\n",
            (self.seec_vs_uncoordinated() - 1.0) * 100.0,
            (self.seec_vs_static_oracle() - 1.0) * 100.0,
            self.seec_fraction_of_dynamic_oracle() * 100.0,
        ));
        out
    }
}

fn safe_ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator > 0.0 {
        numerator / denominator
    } else {
        1.0
    }
}

fn geometric_mean<I: Iterator<Item = f64>>(values: I) -> f64 {
    let mut product = 1.0;
    let mut count = 0usize;
    for v in values {
        if v > 0.0 {
            product *= v;
            count += 1;
        }
    }
    if count == 0 {
        1.0
    } else {
        product.powf(1.0 / count as f64)
    }
}

/// The three actuators of §5.2, described through the SEEC action interface.
/// The nominal setting is the launch configuration: one core at the minimum
/// clock with no forced idling.
///
/// The cores and active-cycles actuators declare the *server's*
/// utilisation-power exponent as a convex power prior
/// ([`ActuatorSpec::builder`]'s `axis_exponent`): on the calibrated R410
/// (`power_above_idle ∝ utilisation^1.15`) the declared joint powerup
/// `(cores · duty)^1.15 · clock_ratio^2.2` matches the platform exactly, so
/// SEEC's initial power beliefs are no longer systematically optimistic
/// under the convex model. The default server's exponent is 1.0, where the
/// prior is skipped entirely and the declared effects are bit-for-bit the
/// historical linear ones.
pub fn xeon_actuators(server: &XeonServer) -> Vec<Box<dyn Actuator>> {
    let min_freq = server.pstates().min_frequency();
    let utilization_exponent = server.utilization_power_exponent();
    let cores_spec = {
        let mut builder = ActuatorSpec::builder("cores")
            .scope(actuation::Scope::Global)
            .axis_exponent(Axis::Power, utilization_exponent);
        for n in 1..=server.total_cores() {
            builder = builder.setting(
                SettingSpec::new(format!("{n} cores"))
                    .effect(Axis::Performance, n as f64)
                    .effect(Axis::Power, n as f64),
            );
        }
        builder.nominal(0).delay(0.001).build().expect("valid spec")
    };
    let clock_spec = {
        // Settings ordered slowest-first so that the nominal (launch) setting
        // is index 0; setting index i maps to P-state (len - 1 - i).
        let mut builder = ActuatorSpec::builder("clock").scope(actuation::Scope::Global);
        let count = server.pstates().len();
        for i in 0..count {
            let freq = server
                .pstates()
                .frequency(count - 1 - i)
                .expect("index in range");
            let ratio = freq / min_freq;
            builder = builder.setting(
                SettingSpec::new(format!("{:.2} GHz", freq / 1.0e9))
                    .effect(Axis::Performance, ratio)
                    .effect(Axis::Power, ratio.powf(2.2)),
            );
        }
        builder.nominal(0).delay(0.01).build().expect("valid spec")
    };
    let idle_spec = {
        let mut builder = ActuatorSpec::builder("active-cycles")
            .scope(actuation::Scope::Application)
            .axis_exponent(Axis::Power, utilization_exponent);
        for step in 1..=10 {
            let duty = step as f64 / 10.0;
            builder = builder.setting(
                SettingSpec::new(format!("{:.0}%", duty * 100.0))
                    .effect(Axis::Performance, duty)
                    .effect(Axis::Power, duty),
            );
        }
        builder.nominal(9).delay(0.0).build().expect("valid spec")
    };
    vec![
        Box::new(TableActuator::new(cores_spec)),
        Box::new(TableActuator::new(clock_spec)),
        Box::new(TableActuator::new(idle_spec)),
    ]
}

/// Maps a SEEC joint configuration (cores, clock, active-cycles) onto the
/// server's configuration type.
pub fn map_configuration(server: &XeonServer, config: &Configuration) -> ServerConfiguration {
    let cores = config.setting(0).unwrap_or(0) + 1;
    let clock_setting = config.setting(1).unwrap_or(0);
    let pstate = server.pstates().len() - 1 - clock_setting.min(server.pstates().len() - 1);
    let duty = (config.setting(2).unwrap_or(9) + 1) as f64 / 10.0;
    ServerConfiguration::new(cores, pstate, duty)
}

/// Runs the benchmark under coordinated SEEC control, fetching each
/// quantum's report from `evaluate` (a direct evaluation or a memoized
/// lookup — both yield bit-identical reports).
fn run_seec_with(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    target_heart_rate: f64,
    seed: u64,
    mut evaluate: impl FnMut(usize, &QuantumDemand, &ServerConfiguration) -> ServerReport,
) -> XeonRunOutcome {
    let app = HeartbeatedWorkload::new(Workload::new(benchmark, seed));
    app.set_heart_rate_goal(target_heart_rate);
    let mut runtime = SeecRuntime::builder(app.monitor())
        .actuators(xeon_actuators(server))
        .seed(seed)
        .build()
        .expect("actuators registered");
    let mut app = app;
    let monitor = app.monitor();

    let mut now = 0.0;
    let mut reports: Vec<ServerReport> = Vec::with_capacity(quanta.len());
    for (index, quantum) in quanta.iter().enumerate() {
        let configuration = map_configuration(server, runtime.current_configuration());
        let mut report = evaluate(index, quantum, &configuration);
        // Decision overhead: the decision shares the main cores with the
        // application on this platform.
        report.seconds += DECISION_OVERHEAD_SECONDS;
        report.energy_joules += DECISION_OVERHEAD_SECONDS * report.total_power_watts;
        now += report.seconds;
        app.advance(now, report.work_units);
        monitor.record_power_sample(now, report.power_above_idle_watts);
        let _ = runtime.decide(now);
        reports.push(report);
    }
    XeonRunOutcome::from_reports(reports.iter())
}

/// Runs the benchmark under coordinated SEEC control.
pub fn run_seec_on_xeon(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    target_heart_rate: f64,
    seed: u64,
) -> XeonRunOutcome {
    run_seec_with(server, benchmark, quanta, target_heart_rate, seed, |_, quantum, cfg| {
        server.evaluate(&to_server_demand(quantum), cfg)
    })
}

/// [`run_seec_on_xeon`] against memoized evaluations: every configuration
/// SEEC can reach lies on the grid, so each quantum is an indexed lookup.
pub fn run_seec_on_table(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    table: &XeonEvalTable,
    target_heart_rate: f64,
    seed: u64,
) -> XeonRunOutcome {
    run_seec_with(server, benchmark, quanta, target_heart_rate, seed, |index, _, cfg| {
        let config = table.config_index(cfg).expect("SEEC configurations lie on the grid");
        table.report(index, config)
    })
}

/// Runs the benchmark under uncoordinated adaptation (one independent SEEC
/// instance per actuator), fetching reports from `evaluate`.
fn run_uncoordinated_with(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    target_heart_rate: f64,
    seed: u64,
    mut evaluate: impl FnMut(usize, &QuantumDemand, &ServerConfiguration) -> ServerReport,
) -> XeonRunOutcome {
    let app = HeartbeatedWorkload::new(Workload::new(benchmark, seed));
    app.set_heart_rate_goal(target_heart_rate);
    let mut uncoordinated =
        UncoordinatedRuntime::new(&app.monitor(), xeon_actuators(server), seed).expect("actuators");
    let mut app = app;
    let monitor = app.monitor();

    let mut now = 0.0;
    let mut reports: Vec<ServerReport> = Vec::with_capacity(quanta.len());
    for (index, quantum) in quanta.iter().enumerate() {
        let configuration = map_configuration(server, &uncoordinated.joint_configuration());
        let mut report = evaluate(index, quantum, &configuration);
        // Each independent instance pays its own decision overhead.
        let overhead = DECISION_OVERHEAD_SECONDS * uncoordinated.instances() as f64;
        report.seconds += overhead;
        report.energy_joules += overhead * report.total_power_watts;
        now += report.seconds;
        app.advance(now, report.work_units);
        monitor.record_power_sample(now, report.power_above_idle_watts);
        let _ = uncoordinated.decide(now);
        reports.push(report);
    }
    XeonRunOutcome::from_reports(reports.iter())
}

/// Runs the benchmark under uncoordinated adaptation: one independent SEEC
/// instance per actuator.
pub fn run_uncoordinated_on_xeon(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    target_heart_rate: f64,
    seed: u64,
) -> XeonRunOutcome {
    run_uncoordinated_with(server, benchmark, quanta, target_heart_rate, seed, |_, quantum, cfg| {
        server.evaluate(&to_server_demand(quantum), cfg)
    })
}

/// The convex-model (goal-respecting) protocol's closed-loop SEEC run:
/// anchored estimation, the gentler [`CONVEX_PROTOCOL_KI`] integral, and
/// interpolated beat/power stamping
/// ([`HeartbeatedWorkload::advance_metered`]). Under the linear default the
/// historical [`run_seec_on_table`] protocol is used instead — its batched
/// end-of-quantum stamping and drifting baseline are kept bit-for-bit.
pub fn run_seec_convex_on_table(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    table: &XeonEvalTable,
    target_heart_rate: f64,
    seed: u64,
) -> XeonRunOutcome {
    run_seec_convex_on_table_with_leak(server, benchmark, quanta, table, target_heart_rate, seed, 1.0)
}

/// [`run_seec_convex_on_table`] with a leaky PI integral (`leak = 1.0` is
/// bit-for-bit the classical integral; see [`CONVEX_PROTOCOL_LEAK`]).
#[allow(clippy::too_many_arguments)]
pub fn run_seec_convex_on_table_with_leak(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    table: &XeonEvalTable,
    target_heart_rate: f64,
    seed: u64,
    leak: f64,
) -> XeonRunOutcome {
    run_seec_convex_on_table_tuned(
        server,
        benchmark,
        quanta,
        table,
        target_heart_rate,
        seed,
        ConvexTuning {
            leak,
            ..ConvexTuning::default()
        },
    )
}

/// [`run_seec_convex_on_table`] with explicit [`ConvexTuning`] knobs (the
/// default tuning is bit-for-bit the plain convex run).
#[allow(clippy::too_many_arguments)]
pub fn run_seec_convex_on_table_tuned(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    table: &XeonEvalTable,
    target_heart_rate: f64,
    seed: u64,
    tuning: ConvexTuning,
) -> XeonRunOutcome {
    let app = HeartbeatedWorkload::new(Workload::new(benchmark, seed));
    app.set_heart_rate_goal(target_heart_rate);
    let mut runtime = SeecRuntime::builder(app.monitor())
        .actuators(xeon_actuators(server))
        .anchored_estimation(true)
        .belief_halflife(tuning.belief_halflife)
        .controller(
            PiController::new(1.0, CONVEX_PROTOCOL_KI, 1.0 / 64.0, 64.0).with_leak(tuning.leak),
        )
        .seed(seed)
        .build()
        .expect("actuators registered");
    let mut app = app;

    let mut now = 0.0;
    let mut reports: Vec<ServerReport> = Vec::with_capacity(quanta.len());
    for (index, _) in quanta.iter().enumerate() {
        let configuration = map_configuration(server, runtime.current_configuration());
        let config = table
            .config_index(&configuration)
            .expect("SEEC configurations lie on the grid");
        let mut report = table.report(index, config);
        report.seconds += DECISION_OVERHEAD_SECONDS;
        report.energy_joules += DECISION_OVERHEAD_SECONDS * report.total_power_watts;
        let start = now;
        now += report.seconds;
        app.advance_metered(start, now, report.work_units, report.power_above_idle_watts);
        let _ = runtime.decide(now);
        reports.push(report);
    }
    XeonRunOutcome::from_reports(reports.iter())
}

/// The convex-model protocol's uncoordinated baseline: the same anchored /
/// tuned / interpolated treatment as [`run_seec_convex_on_table`], applied
/// to one independent SEEC instance per actuator.
pub fn run_uncoordinated_convex_on_table(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    table: &XeonEvalTable,
    target_heart_rate: f64,
    seed: u64,
) -> XeonRunOutcome {
    run_uncoordinated_convex_on_table_with_leak(
        server,
        benchmark,
        quanta,
        table,
        target_heart_rate,
        seed,
        1.0,
    )
}

/// [`run_uncoordinated_convex_on_table`] with a leaky PI integral in every
/// per-actuator instance (`leak = 1.0` is bit-for-bit the classical
/// integral).
#[allow(clippy::too_many_arguments)]
pub fn run_uncoordinated_convex_on_table_with_leak(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    table: &XeonEvalTable,
    target_heart_rate: f64,
    seed: u64,
    leak: f64,
) -> XeonRunOutcome {
    run_uncoordinated_convex_on_table_tuned(
        server,
        benchmark,
        quanta,
        table,
        target_heart_rate,
        seed,
        ConvexTuning {
            leak,
            ..ConvexTuning::default()
        },
    )
}

/// [`run_uncoordinated_convex_on_table`] with explicit [`ConvexTuning`]
/// knobs in every per-actuator instance (the default tuning is bit-for-bit
/// the plain convex run).
#[allow(clippy::too_many_arguments)]
pub fn run_uncoordinated_convex_on_table_tuned(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    table: &XeonEvalTable,
    target_heart_rate: f64,
    seed: u64,
    tuning: ConvexTuning,
) -> XeonRunOutcome {
    let app = HeartbeatedWorkload::new(Workload::new(benchmark, seed));
    app.set_heart_rate_goal(target_heart_rate);
    let mut uncoordinated = UncoordinatedRuntime::new_with(
        &app.monitor(),
        xeon_actuators(server),
        seed,
        |builder| {
            builder
                .anchored_estimation(true)
                .belief_halflife(tuning.belief_halflife)
                .controller(
                    PiController::new(1.0, CONVEX_PROTOCOL_KI, 1.0 / 64.0, 64.0)
                        .with_leak(tuning.leak),
                )
        },
    )
    .expect("actuators");
    let mut app = app;

    let mut now = 0.0;
    let mut reports: Vec<ServerReport> = Vec::with_capacity(quanta.len());
    for (index, _) in quanta.iter().enumerate() {
        let configuration = map_configuration(server, &uncoordinated.joint_configuration());
        let config = table
            .config_index(&configuration)
            .expect("SEEC configurations lie on the grid");
        let mut report = table.report(index, config);
        let overhead = DECISION_OVERHEAD_SECONDS * uncoordinated.instances() as f64;
        report.seconds += overhead;
        report.energy_joules += overhead * report.total_power_watts;
        let start = now;
        now += report.seconds;
        app.advance_metered(start, now, report.work_units, report.power_above_idle_watts);
        let _ = uncoordinated.decide(now);
        reports.push(report);
    }
    XeonRunOutcome::from_reports(reports.iter())
}

/// [`run_uncoordinated_on_xeon`] against memoized evaluations.
pub fn run_uncoordinated_on_table(
    server: &XeonServer,
    benchmark: SplashBenchmark,
    quanta: &[QuantumDemand],
    table: &XeonEvalTable,
    target_heart_rate: f64,
    seed: u64,
) -> XeonRunOutcome {
    run_uncoordinated_with(server, benchmark, quanta, target_heart_rate, seed, |index, _, cfg| {
        let config = table.config_index(cfg).expect("SEEC configurations lie on the grid");
        table.report(index, config)
    })
}

/// Convenience used by oracles in other modules: the best per-quantum report
/// under a set of configurations.
pub fn best_quantum_report(
    server: &XeonServer,
    quantum: &QuantumDemand,
    configurations: &[ServerConfiguration],
    target_heart_rate: f64,
) -> ServerReport {
    let demand = to_server_demand(quantum);
    configurations
        .iter()
        .map(|cfg| server.evaluate(&demand, cfg))
        .max_by(|a, b| {
            quantum_efficiency(a, target_heart_rate)
                .partial_cmp(&quantum_efficiency(b, target_heart_rate))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one configuration")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_fixed_on_xeon;

    #[test]
    fn actuator_specs_cover_the_papers_three_actions() {
        let server = XeonServer::dell_r410();
        let actuators = xeon_actuators(&server);
        assert_eq!(actuators.len(), 3);
        assert_eq!(actuators[0].spec().len(), 8);
        assert_eq!(actuators[1].spec().len(), 7);
        assert_eq!(actuators[2].spec().len(), 10);
        // Nominal joint configuration maps to the launch state: 1 core at
        // the minimum clock with no forced idling.
        let nominal = Configuration::new(vec![0, 0, 9]);
        let mapped = map_configuration(&server, &nominal);
        assert_eq!(mapped.cores, 1);
        assert_eq!(mapped.pstate_index, server.pstates().len() - 1);
        assert!((mapped.active_cycle_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn map_configuration_reaches_the_fastest_state() {
        let server = XeonServer::dell_r410();
        let fastest = Configuration::new(vec![7, 6, 9]);
        let mapped = map_configuration(&server, &fastest);
        assert_eq!(mapped.cores, 8);
        assert_eq!(mapped.pstate_index, 0);
        assert!((mapped.active_cycle_fraction - 1.0).abs() < 1e-12);
        assert!(mapped.validate(&server).is_ok());
    }

    #[test]
    fn seec_meets_goals_and_beats_uncoordinated_on_a_short_run() {
        let server = XeonServer::dell_r410();
        let benchmark = SplashBenchmark::Barnes;
        let quanta = Workload::new(benchmark, 9).quanta(40);
        let max_rate =
            run_fixed_on_xeon(&server, &quanta, &server.default_configuration()).heart_rate;
        let target = max_rate / 2.0;
        let seec = run_seec_on_xeon(&server, benchmark, &quanta, target, 9);
        let uncoordinated = run_uncoordinated_on_xeon(&server, benchmark, &quanta, target, 9);
        // A 40-quantum run still contains the start-up transient (the paper
        // launches every benchmark on one core at the minimum clock), so the
        // bounds here are looser than the steady-state figures.
        assert!(
            seec.heart_rate >= target * 0.6,
            "SEEC should approach the goal even in a short run: got {} of target {}",
            seec.heart_rate,
            target
        );
        assert!(
            seec.performance_per_watt(target) >= 0.9 * uncoordinated.performance_per_watt(target),
            "coordinated SEEC ({}) should not lose badly to uncoordinated adaptation ({})",
            seec.performance_per_watt(target),
            uncoordinated.performance_per_watt(target)
        );
    }

    #[test]
    fn calibrated_convex_protocol_recovers_seec_standing() {
        // Under the convex utilisation-power model with convex power priors
        // in the actuator specs, anchored estimation, and the
        // goal-respecting protocol, SEEC recovers to >= 0.8 of the dynamic
        // oracle (from 0.42 with the linear priors and drifting baseline)
        // and the paper's ordering is restored: uncoordinated adaptation
        // loses badly, the static oracle tracks the dynamic oracle, and
        // SEEC clearly beats the no-adaptation baseline on average.
        let fig = Figure3::compute_on(&XeonServer::dell_r410_calibrated(), 2012, QUANTA_PER_RUN);
        assert_eq!(fig.rows.len(), 5);
        let seec = fig.seec_fraction_of_dynamic_oracle();
        assert!(
            seec >= 0.8,
            "convex-protocol SEEC must reach >= 0.8 of the dynamic oracle, got {seec:.3}"
        );
        assert!(
            fig.seec_vs_uncoordinated() > 1.3,
            "SEEC must beat uncoordinated adaptation decisively, got {:.3}",
            fig.seec_vs_uncoordinated()
        );
        for row in &fig.rows {
            // The goal-respecting static oracle (min power meeting the
            // run-average target) can beat the *per-quantum greedy* dynamic
            // oracle by a hair on phase-heavy benchmarks, so the tie is
            // pinned as a band rather than an ordering.
            let ratio = row.static_oracle / row.dynamic_oracle;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "{}: static oracle should track the dynamic oracle, ratio {ratio:.3}",
                row.benchmark
            );
            assert!(
                row.no_adaptation <= row.static_oracle * 1.001,
                "{}: the goal-respecting static oracle cannot lose to no adaptation",
                row.benchmark
            );
        }
        // The shared no-adaptation configuration is a compromise across
        // benchmarks: adaptation must win wherever that compromise binds
        // (it happens to sit at water's optimum, so not everywhere).
        let beats_no_adapt = fig.rows.iter().filter(|r| r.seec > r.no_adaptation).count();
        assert!(
            beats_no_adapt >= 3,
            "SEEC should beat the shared static configuration on most benchmarks, won {beats_no_adapt}/5"
        );
    }

    #[test]
    fn figure3_reproduces_the_papers_ordering() {
        // A reduced quantum count keeps the test fast while preserving shape.
        let fig = Figure3::compute_with(7, 30);
        assert_eq!(fig.rows.len(), 5);
        for row in &fig.rows {
            assert!(row.dynamic_oracle >= row.static_oracle * 0.999,
                "{}: dynamic oracle must dominate the static oracle", row.benchmark);
            assert!(row.static_oracle >= row.no_adaptation * 0.999,
                "{}: the static oracle adapts per benchmark and cannot lose to no adaptation",
                row.benchmark);
            assert!(row.seec > 0.0 && row.uncoordinated > 0.0);
            let [na, un, se, dy] = row.normalized();
            assert!(na <= 1.0 + 1e-9 && un <= 1.2 && se <= 1.0 + 1e-9);
            assert!((dy - 1.0).abs() < 1e-12);
        }
        assert!(
            fig.seec_vs_uncoordinated() > 1.0,
            "SEEC must outperform uncoordinated adaptation on average"
        );
        assert!(
            fig.seec_fraction_of_dynamic_oracle() <= 1.0 + 1e-9,
            "nothing beats the dynamic oracle"
        );
        assert!(fig.to_table().contains("barnes"));
        assert_eq!(fig.per_benchmark_multipliers().len(), 5);
    }
}
