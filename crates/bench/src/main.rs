//! The performance harness: `cargo run --release -p bench`.
//!
//! Measures the two numbers the perf trajectory is tracked by —
//!
//! * `BENCH_fig3.json` — end-to-end wall-clock of a full Figure-3 run
//!   (the heaviest figure: five benchmarks × five policies over the
//!   560-configuration grid), compared against the pre-optimisation
//!   baseline recorded below;
//! * `BENCH_decide.json` — the hot-path micro-costs: one SEEC decision
//!   over the Xeon action space, one heartbeat emission, and one
//!   heart-rate statistics query.
//!
//! All timings are summarised as min/median/mean/max over repeated samples
//! (`criterion::summarize`); machine-readable consumers should key on the
//! median, which is robust to scheduler noise. Pass `--fast` (the CI smoke
//! mode) to cut sample counts; the JSON then carries `"mode": "fast"` so
//! trend dashboards can ignore those points.

use std::sync::Arc;
use std::time::{Duration, Instant};

use coordinator::{Coordinator, ManagedApp, PerformanceMarket};
use obs::Recorder;
use criterion::{black_box, summarize, Summary};
use experiments::Figure3;
use heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal};
use seec::SeecRuntime;
use serde::Serialize;
use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};
use xeon_sim::XeonServer;

/// Figure-3 wall-clock of the unoptimised pipeline (seed 2012, 120 quanta),
/// measured at the commit immediately before the allocation-free decision
/// loop and memoized experiment harness landed, on the same reference host
/// the optimised numbers in EXPERIMENTS.md were measured on. Kept so every
/// future `BENCH_fig3.json` records the cumulative speedup.
const PRE_OPTIMIZATION_FIG3_SECONDS: f64 = 0.107;

#[derive(Serialize)]
struct TimingSummary {
    unit: &'static str,
    samples: usize,
    min: f64,
    median: f64,
    mean: f64,
    max: f64,
}

impl TimingSummary {
    fn from_summary(summary: &Summary, unit: &'static str, scale: f64) -> Self {
        let convert = |d: Duration| d.as_secs_f64() * scale;
        TimingSummary {
            unit,
            samples: summary.samples,
            min: convert(summary.min),
            median: convert(summary.median),
            mean: convert(summary.mean),
            max: convert(summary.max),
        }
    }
}

#[derive(Serialize)]
struct Fig3Bench {
    mode: &'static str,
    seed: u64,
    quanta_per_run: usize,
    wall_clock: TimingSummary,
    pre_optimization_baseline_seconds: f64,
    speedup_vs_baseline: f64,
}

#[derive(Serialize)]
struct DecideBench {
    mode: &'static str,
    /// One full observe–decide–act iteration over the 8 × 7 × 10 Xeon
    /// action space (560 configurations), including heartbeat emission.
    ns_per_decision: TimingSummary,
    /// One heartbeat emission into a 64-beat window.
    ns_per_heartbeat: TimingSummary,
    /// One O(1) heart-rate statistics query.
    ns_per_stats_query: TimingSummary,
}

fn sample<F: FnMut() -> usize>(samples: usize, mut routine: F) -> (Summary, f64) {
    // One warm-up, then timed samples; returns the per-iteration scale
    // factor (iterations of the last sample) alongside the summary.
    let mut iterations = routine();
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        iterations = routine();
        timings.push(start.elapsed());
    }
    (summarize(&timings), iterations as f64)
}

fn bench_fig3(samples: usize, mode: &'static str) -> Fig3Bench {
    let seed = 2012;
    let quanta = experiments::fig3::QUANTA_PER_RUN;
    let (summary, _) = sample(samples, || {
        black_box(Figure3::compute_with(seed, quanta));
        1
    });
    let median_seconds = summary.median.as_secs_f64();
    Fig3Bench {
        mode,
        seed,
        quanta_per_run: quanta,
        wall_clock: TimingSummary::from_summary(&summary, "seconds", 1.0),
        pre_optimization_baseline_seconds: PRE_OPTIMIZATION_FIG3_SECONDS,
        speedup_vs_baseline: PRE_OPTIMIZATION_FIG3_SECONDS / median_seconds,
    }
}

fn bench_decide(samples: usize, iterations: usize, mode: &'static str) -> DecideBench {
    let server = XeonServer::dell_r410();

    // ns/decision: a closed loop emitting four beats per period, so every
    // decision runs the full observe–decide–act path (window attribution,
    // model selection over 560 configurations, schedule, actuation).
    let (decision_summary, decision_iters) = sample(samples, || {
        let registry = HeartbeatRegistry::new("bench");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(25.0)));
        let issuer = registry.issuer();
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuators(experiments::fig3::xeon_actuators(&server))
            .seed(7)
            .build()
            .expect("actuators registered");
        let mut now = 0.0;
        for _ in 0..iterations {
            for _ in 0..4 {
                now += 0.01;
                issuer.heartbeat(now);
            }
            black_box(runtime.decide(now).expect("goal registered"));
        }
        iterations
    });

    // ns/heartbeat: emission into the default 64-beat ring.
    let beat_iterations = iterations * 100;
    let (heartbeat_summary, heartbeat_iters) = sample(samples, || {
        let registry = HeartbeatRegistry::new("bench");
        let issuer = registry.issuer();
        let mut now = 0.0;
        for _ in 0..beat_iterations {
            now += 0.001;
            black_box(issuer.heartbeat(now));
        }
        beat_iterations
    });

    // ns/stats query: the O(1) rolling statistics read.
    let registry = HeartbeatRegistry::new("bench");
    let issuer = registry.issuer();
    let monitor = registry.monitor();
    let mut now = 0.0;
    for _ in 0..128 {
        now += 0.001;
        issuer.heartbeat(now);
    }
    let (stats_summary, stats_iters) = sample(samples, || {
        for _ in 0..beat_iterations {
            black_box(monitor.heart_rate());
        }
        beat_iterations
    });

    DecideBench {
        mode,
        ns_per_decision: TimingSummary::from_summary(
            &decision_summary,
            "nanoseconds",
            1.0e9 / decision_iters,
        ),
        ns_per_heartbeat: TimingSummary::from_summary(
            &heartbeat_summary,
            "nanoseconds",
            1.0e9 / heartbeat_iters,
        ),
        ns_per_stats_query: TimingSummary::from_summary(
            &stats_summary,
            "nanoseconds",
            1.0e9 / stats_iters,
        ),
    }
}

#[derive(Serialize)]
struct CoordinatorStepBench {
    /// Registered (and active) applications.
    apps: usize,
    /// One full coordinator step — fleet snapshot, arbitration, and one
    /// power-capped decision per app over the 560-configuration Xeon
    /// action space — with every per-app stage inline on one thread.
    ns_per_step_sequential: TimingSummary,
    /// The same step with its per-app stages sharded across the
    /// coordinator's *persistent* `exec::ExecPool` (`pool_workers`
    /// threads, shard threshold forced to 0 so every fleet size exercises
    /// the pool). Bit-identical output; only the wall-clock differs.
    ns_per_step_pool: TimingSummary,
    /// Worker threads the pooled measurement used
    /// (`min(available_parallelism, 8)`; 1 on single-core hosts, where
    /// pooled ≈ sequential plus scheduling noise).
    pool_workers: usize,
    /// `sequential median / pool median` — above 1.0 when sharding pays.
    pool_speedup: f64,
}

/// Raw fan-out hand-off cost: what one no-op dispatch round costs under
/// per-call `std::thread::scope` spawning (the coordinator's pre-pool
/// design, reconstructed here) vs. the persistent pool's wake-up.
#[derive(Serialize)]
struct DispatchBench {
    /// Threads per round (fixed, so the comparison is host-independent).
    workers: usize,
    /// Spawn `workers` no-op scoped threads and join them — the per-step
    /// price the old `thread::scope` sharding paid at every quantum.
    ns_per_scope_round: TimingSummary,
    /// One `ExecPool::map_indexed` round over `workers` no-op tasks on a
    /// pool that was spawned once and is reused across rounds.
    ns_per_pool_round: TimingSummary,
    /// `scope median / pool median` — how much the persistent pool
    /// amortises the per-quantum hand-off.
    pool_amortization: f64,
    /// Tasks per chunked-claiming round below: wide and near-free, so the
    /// per-index atomic claim is a real fraction of the cost.
    claim_tasks: usize,
    /// Before: `claim_stride` pinned to 1 — one contended `fetch_add` per
    /// index, the original dispatch.
    ns_per_task_claim_single: TimingSummary,
    /// After: `claim_stride` 0 (auto) — each claim hands out a chunk of
    /// consecutive indices, amortising the atomic.
    ns_per_task_claim_chunked: TimingSummary,
    /// `single median / chunked median` — what chunked claiming buys on
    /// fine-grained batches (≈ 1.0 on a 1-core host, where the atomic was
    /// never contended).
    claim_speedup: f64,
}

/// What the telemetry layer costs per coordinator step — both with the
/// recorder detached (the shipping default, one `Option` branch) and with
/// full in-memory recording live. The off/control pair is an A/A
/// measurement: identical configuration measured twice, so its delta is
/// pure scheduler noise and bounds what the disabled telemetry branch can
/// be costing (the < 2 % obs-off budget in ISSUE acceptance).
#[derive(Serialize)]
struct ObsOverheadBench {
    /// Registered (and active) applications in the measured fleet.
    apps: usize,
    /// Timed coordinator steps per sample.
    steps_per_sample: usize,
    /// Telemetry detached (`Coordinator` obs = `None`) — the default path.
    ns_per_step_obs_off: TimingSummary,
    /// The same fleet and step count re-measured, still detached — the A/A
    /// control.
    ns_per_step_obs_off_control: TimingSummary,
    /// An in-memory [`obs::Recorder`] attached: counters, stage clocks, and
    /// latency histograms recording on every step.
    ns_per_step_obs_on: TimingSummary,
    /// `|control − off| / off` over the per-sample *minimum* — the
    /// standard noise-robust microbenchmark estimator (the minimum strips
    /// scheduler preemptions the median still carries on a busy host).
    /// This is the upper bound on the disabled branch's cost. Target: < 2 %.
    obs_off_overhead_percent: f64,
    /// `(on − off) / off` over the per-sample minimum — the full
    /// recording cost.
    obs_on_overhead_percent: f64,
}

/// One row of the worker-scaling arm: the same 1000-app coordinated fleet
/// stepped at a fixed worker count from the 1/2/4/8 protocol grid.
#[derive(Serialize)]
struct WorkerScalingBench {
    /// Worker count the protocol asks for (always emitted, so a 1-core
    /// container still produces the full grid and the dashboard can see
    /// the clamp).
    workers_requested: usize,
    /// Worker count actually measured (`min(requested, host_cores)` —
    /// oversubscribing a small host would measure scheduler churn, not
    /// sharding).
    workers_used: usize,
    /// One full coordinator step at this worker count.
    ns_per_step: TimingSummary,
    /// `workers=1 median / this median` — the sharding scaling curve.
    speedup_vs_one_worker: f64,
}

/// The contended-machine arm: the same sharded cache-line walk at two
/// per-worker working-set sizes — one that fits comfortably in cache and
/// one that spills any shared last-level slice — touching the same number
/// of lines either way. The ratio says how much of the pooled speedup
/// survives when shards compete for cache and memory bandwidth instead of
/// each owning a warm slice, which is the regime a consolidated
/// million-app host actually runs in.
#[derive(Serialize)]
struct ContentionBench {
    /// Pool threads walking concurrently.
    workers: usize,
    /// Bytes each worker's shard spans in the cache-resident variant.
    resident_bytes_per_worker: usize,
    /// Bytes each worker's shard spans in the thrashing variant.
    thrash_bytes_per_worker: usize,
    /// Per cache line touched, shards resident.
    ns_per_line_resident: TimingSummary,
    /// Per cache line touched, shards thrashing (same total lines).
    ns_per_line_thrash: TimingSummary,
    /// `thrash median / resident median` — ≥ 1, and the gap is the cache
    /// contention cost the fleet-scaling projections must budget for.
    contention_penalty: f64,
}

#[derive(Serialize)]
struct Fig5Bench {
    mode: &'static str,
    /// Cores the host actually exposes (`std::thread::available_parallelism`;
    /// 1 when detection fails). Interprets `pool_workers` and the pooled
    /// timings: on a 1-core host pooled ≈ sequential and that is not a
    /// regression.
    host_cores: usize,
    /// Pool-vs-scope dispatch cost (no-op tasks, fixed thread count) and
    /// the chunked-claiming before/after.
    dispatch: DispatchBench,
    /// Sequential-vs-pooled step latency at each fleet size.
    fleet: Vec<CoordinatorStepBench>,
    /// Step latency across the 1/2/4/8 worker grid at 1000 apps.
    worker_scaling: Vec<WorkerScalingBench>,
    /// Cache-resident vs. thrashing shard walks.
    contention: ContentionBench,
    /// Telemetry cost per step: off vs. A/A control vs. recording.
    obs_overhead: ObsOverheadBench,
}

fn bench_dispatch(samples: usize, iterations: usize) -> DispatchBench {
    let workers = 4;
    let rounds = iterations.max(50);
    let (scope_summary, scope_iters) = sample(samples, || {
        for _ in 0..rounds {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| black_box(()));
                }
            });
        }
        rounds
    });
    let pool = exec::ExecPool::new(workers);
    let (pool_summary, pool_iters) = sample(samples, || {
        for _ in 0..rounds {
            black_box(pool.map_indexed(workers, |_| ()));
        }
        rounds
    });

    // Chunked index claiming, before/after: the same wide batch of
    // near-free tasks drained one-index-per-claim (the original dispatch)
    // and chunk-per-claim (the shipping auto stride). The task body writes
    // one word, so the difference is claim traffic, not work.
    let claim_tasks = 65_536usize;
    let mut buffer = vec![0u64; claim_tasks];
    pool.set_claim_stride(1);
    let (single_summary, single_iters) = sample(samples, || {
        pool.for_each_mut(&mut buffer, |i, item| *item = i as u64);
        claim_tasks
    });
    pool.set_claim_stride(0);
    let (chunked_summary, chunked_iters) = sample(samples, || {
        pool.for_each_mut(&mut buffer, |i, item| *item = i as u64);
        claim_tasks
    });
    black_box(&buffer);

    let scope = TimingSummary::from_summary(&scope_summary, "nanoseconds", 1.0e9 / scope_iters);
    let pooled = TimingSummary::from_summary(&pool_summary, "nanoseconds", 1.0e9 / pool_iters);
    let amortization = scope.median / pooled.median.max(f64::MIN_POSITIVE);
    let single =
        TimingSummary::from_summary(&single_summary, "nanoseconds", 1.0e9 / single_iters);
    let chunked =
        TimingSummary::from_summary(&chunked_summary, "nanoseconds", 1.0e9 / chunked_iters);
    let claim_speedup = single.median / chunked.median.max(f64::MIN_POSITIVE);
    DispatchBench {
        workers,
        ns_per_scope_round: scope,
        ns_per_pool_round: pooled,
        pool_amortization: amortization,
        claim_tasks,
        ns_per_task_claim_single: single,
        ns_per_task_claim_chunked: chunked,
        claim_speedup,
    }
}

fn coordinator_with_apps(apps: usize) -> (Coordinator, Vec<coordinator::AppHandle>) {
    let server = XeonServer::dell_r410_calibrated();
    let mut coordinator = Coordinator::new(500.0, Box::new(PerformanceMarket::default()));
    let mut handles = Vec::with_capacity(apps);
    for index in 0..apps {
        let workload = Workload::new(
            SplashBenchmark::ALL[index % SplashBenchmark::ALL.len()],
            index as u64,
        );
        let driver = HeartbeatedWorkload::new(workload);
        driver.set_heart_rate_goal(25.0);
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(experiments::fig3::xeon_actuators(&server))
            .seed(index as u64)
            .build()
            .expect("actuators registered");
        handles.push(coordinator.register(
            ManagedApp::new(driver, runtime)
                .with_weight(1.0 + (index % 4) as f64)
                .with_nominal_power_hint(5.0),
        ));
    }
    (coordinator, handles)
}

fn bench_obs_overhead(samples: usize, iterations: usize) -> ObsOverheadBench {
    let apps = 100;
    // Longer samples than the fleet bench: the off/control delta is the
    // quantity of interest and it needs the per-sample noise well under
    // the 2 % budget it is bounding.
    let steps = (iterations / apps).max(8) * 5;
    let (mut coordinator, handles) = coordinator_with_apps(apps);
    coordinator.set_workers(1);
    let recorder = Arc::new(Recorder::in_memory());
    let mut now = 0.0;
    let mut off = Vec::with_capacity(samples);
    let mut control = Vec::with_capacity(samples);
    let mut on = Vec::with_capacity(samples);
    // The three configurations are interleaved inside every pass so slow
    // drift (thermal, sibling load) hits all of them equally; pass 0 is
    // the warm-up and is discarded.
    for pass in 0..=samples {
        let configurations: [(&mut Vec<Duration>, Option<Arc<Recorder>>); 3] = [
            (&mut off, None),
            (&mut control, None),
            (&mut on, Some(Arc::clone(&recorder))),
        ];
        for (timings, observer) in configurations {
            coordinator.set_obs(observer);
            let mut timed = Duration::ZERO;
            for _ in 0..steps {
                now += 0.1;
                for &handle in &handles {
                    coordinator.advance(handle, now - 0.1, now, 2.0, 5.0);
                }
                let start = Instant::now();
                black_box(coordinator.step(now).expect("goals registered"));
                timed += start.elapsed();
            }
            if pass > 0 {
                timings.push(timed);
            }
        }
    }
    coordinator.set_obs(None);
    let scale = 1.0e9 / steps as f64;
    let off = TimingSummary::from_summary(&summarize(&off), "nanoseconds", scale);
    let control = TimingSummary::from_summary(&summarize(&control), "nanoseconds", scale);
    let on = TimingSummary::from_summary(&summarize(&on), "nanoseconds", scale);
    let baseline = off.min.max(f64::MIN_POSITIVE);
    let obs_off_overhead_percent = (control.min - off.min).abs() / baseline * 100.0;
    let obs_on_overhead_percent = (on.min - off.min) / baseline * 100.0;
    ObsOverheadBench {
        apps,
        steps_per_sample: steps,
        ns_per_step_obs_off: off,
        ns_per_step_obs_off_control: control,
        ns_per_step_obs_on: on,
        obs_off_overhead_percent,
        obs_on_overhead_percent,
    }
}

fn bench_worker_scaling(
    samples: usize,
    iterations: usize,
    host_cores: usize,
) -> Vec<WorkerScalingBench> {
    let apps = 1000;
    let steps = (iterations / apps).max(4);
    let (mut coordinator, handles) = coordinator_with_apps(apps);
    // Threshold 0 so every row actually exercises the pool at its worker
    // count; the fleet is built once and reused across the whole grid.
    coordinator.set_shard_threshold(0);
    let mut now = 0.0;
    let mut baseline = f64::NAN;
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|requested| {
            let used = requested.min(host_cores).max(1);
            coordinator.set_workers(used);
            let mut timings = Vec::with_capacity(samples);
            for pass in 0..=samples {
                let mut timed = Duration::ZERO;
                for _ in 0..steps {
                    now += 0.1;
                    for &handle in &handles {
                        coordinator.advance(handle, now - 0.1, now, 2.0, 5.0);
                    }
                    let start = Instant::now();
                    black_box(coordinator.step(now).expect("goals registered"));
                    timed += start.elapsed();
                }
                if pass > 0 {
                    timings.push(timed);
                }
            }
            let summary = TimingSummary::from_summary(
                &summarize(&timings),
                "nanoseconds",
                1.0e9 / steps as f64,
            );
            if requested == 1 {
                baseline = summary.median;
            }
            let speedup = baseline / summary.median.max(f64::MIN_POSITIVE);
            WorkerScalingBench {
                workers_requested: requested,
                workers_used: used,
                ns_per_step: summary,
                speedup_vs_one_worker: speedup,
            }
        })
        .collect()
}

fn bench_contention(samples: usize) -> ContentionBench {
    let workers = 4;
    let pool = exec::ExecPool::new(workers);
    // 32 KiB/worker sits in L1/L2 on anything; 8 MiB/worker spills any
    // shared LLC slice once four shards walk at once.
    let resident_bytes = 32 << 10;
    let thrash_bytes = 8 << 20;
    let resident_words = resident_bytes / 8;
    let thrash_words = thrash_bytes / 8;
    let resident: Vec<u64> = (0..resident_words * workers).map(|i| i as u64).collect();
    let thrash: Vec<u64> = (0..thrash_words * workers).map(|i| i as u64).collect();
    // Both variants touch the same total line count: the resident walk
    // loops its small shard until it has covered one thrash-shard's worth.
    let touches_per_worker = thrash_words;
    let measure = |data: &[u64], words_per_worker: usize| {
        let rounds = touches_per_worker / words_per_worker;
        sample(samples, || {
            let total: u64 = pool
                .map_indexed(workers, |w| {
                    let shard = &data[w * words_per_worker..(w + 1) * words_per_worker];
                    let mut acc = 0u64;
                    for _ in 0..rounds {
                        // One word per 64-byte line: the walk is a cache /
                        // memory probe, not an ALU benchmark.
                        let mut i = 0;
                        while i < shard.len() {
                            acc = acc.wrapping_add(shard[i]);
                            i += 8;
                        }
                    }
                    acc
                })
                .into_iter()
                .sum();
            black_box(total);
            touches_per_worker / 8 * workers
        })
    };
    let (resident_summary, resident_lines) = measure(&resident, resident_words);
    let (thrash_summary, thrash_lines) = measure(&thrash, thrash_words);
    let resident_timing = TimingSummary::from_summary(
        &resident_summary,
        "nanoseconds",
        1.0e9 / resident_lines,
    );
    let thrash_timing =
        TimingSummary::from_summary(&thrash_summary, "nanoseconds", 1.0e9 / thrash_lines);
    let penalty = thrash_timing.median / resident_timing.median.max(f64::MIN_POSITIVE);
    ContentionBench {
        workers,
        resident_bytes_per_worker: resident_bytes,
        thrash_bytes_per_worker: thrash_bytes,
        ns_per_line_resident: resident_timing,
        ns_per_line_thrash: thrash_timing,
        contention_penalty: penalty,
    }
}

fn bench_coordinator_step(samples: usize, iterations: usize, mode: &'static str) -> Fig5Bench {
    let dispatch = bench_dispatch(samples, iterations / 4);
    let pool_workers = Coordinator::default_workers();
    let fleet = [10usize, 100, 1000, 5000]
        .into_iter()
        .map(|apps| {
            // Scale the iteration count down with fleet size so every
            // configuration samples comparable wall-clock.
            let steps = (iterations / apps.max(1)).max(4);
            // Construction (5000 apps × a 560-configuration table each) is
            // set-up, not step latency: build once and keep stepping the
            // same fleet across samples and both worker counts. Beat
            // emission between steps is application-side work and is
            // excluded from the timings — only the coordinator's
            // observe–arbitrate–decide pipeline counts.
            let (mut coordinator, handles) = coordinator_with_apps(apps);
            let mut now = 0.0;
            let mut sample_steps = |coordinator: &mut Coordinator, timings: &mut Vec<Duration>| {
                // Warm-up pass first: windows populated, buffers sized, so
                // every timed step decides for real on warm state.
                for pass in 0..=samples {
                    let mut timed = Duration::ZERO;
                    for _ in 0..steps {
                        now += 0.1;
                        for &handle in &handles {
                            coordinator.advance(handle, now - 0.1, now, 2.0, 5.0);
                        }
                        let start = Instant::now();
                        black_box(coordinator.step(now).expect("goals registered"));
                        timed += start.elapsed();
                    }
                    if pass > 0 {
                        timings.push(timed);
                    }
                }
            };
            let mut sequential = Vec::with_capacity(samples);
            coordinator.set_workers(1);
            sample_steps(&mut coordinator, &mut sequential);
            let mut pooled = Vec::with_capacity(samples);
            coordinator.set_workers(pool_workers);
            // Threshold 0: even the 10-app fleet goes through the pool, so
            // the column measures the pooled path at every size.
            coordinator.set_shard_threshold(0);
            sample_steps(&mut coordinator, &mut pooled);
            let scale = 1.0e9 / steps as f64;
            let sequential = TimingSummary::from_summary(
                &summarize(&sequential),
                "nanoseconds",
                scale,
            );
            let pooled =
                TimingSummary::from_summary(&summarize(&pooled), "nanoseconds", scale);
            let speedup = sequential.median / pooled.median.max(f64::MIN_POSITIVE);
            CoordinatorStepBench {
                apps,
                ns_per_step_sequential: sequential,
                ns_per_step_pool: pooled,
                pool_workers,
                pool_speedup: speedup,
            }
        })
        .collect();
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    Fig5Bench {
        mode,
        host_cores,
        dispatch,
        fleet,
        worker_scaling: bench_worker_scaling(samples, iterations, host_cores),
        contention: bench_contention(samples),
        obs_overhead: bench_obs_overhead(samples, iterations),
    }
}

/// Writes `BENCH_fig5.json`, carrying over the `fleet_scaling` rows that
/// `fig5 --fleet N` merges into the same file — the perf harness measures
/// the coordinator-step numbers, the fleet harness measures the
/// arbitration-fold scaling, and neither may clobber the other.
fn write_fig5_json(path: &str, fig5: &Fig5Bench) {
    use serde::ser::Value;
    let preserved = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|value| match value {
            Value::Object(entries) => entries
                .into_iter()
                .find(|(key, _)| key == "fleet_scaling")
                .map(|(_, rows)| rows),
            _ => None,
        });
    let mut value = fig5.to_value();
    if let (Value::Object(entries), Some(rows)) = (&mut value, preserved) {
        entries.push(("fleet_scaling".to_string(), rows));
    }
    write_json(path, &value);
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(path, json) {
            Ok(()) => println!("wrote {path}"),
            Err(err) => {
                eprintln!("could not write {path}: {err}");
                std::process::exit(1);
            }
        },
        Err(err) => {
            eprintln!("could not serialise {path}: {err}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let fast = std::env::args().any(|arg| arg == "--fast");
    let (mode, fig3_samples, micro_samples, decide_iterations) = if fast {
        ("fast", 3, 3, 200)
    } else {
        ("full", 7, 5, 2000)
    };

    println!("mode: {mode}");
    let fig3 = bench_fig3(fig3_samples, mode);
    println!(
        "fig3 end-to-end: median {:.3} ms over {} samples ({:.1}x vs pre-optimisation baseline)",
        fig3.wall_clock.median * 1.0e3,
        fig3.wall_clock.samples,
        fig3.speedup_vs_baseline
    );
    write_json("BENCH_fig3.json", &fig3);

    let decide = bench_decide(micro_samples, decide_iterations, mode);
    println!(
        "decision: median {:.0} ns   heartbeat: median {:.0} ns   stats query: median {:.0} ns",
        decide.ns_per_decision.median,
        decide.ns_per_heartbeat.median,
        decide.ns_per_stats_query.median
    );
    write_json("BENCH_decide.json", &decide);

    let fig5 = bench_coordinator_step(micro_samples, decide_iterations, mode);
    println!(
        "dispatch round ({} workers, {} host cores): thread::scope median {:.1} µs, \
         persistent pool {:.1} µs ({:.1}x amortised)",
        fig5.dispatch.workers,
        fig5.host_cores,
        fig5.dispatch.ns_per_scope_round.median / 1.0e3,
        fig5.dispatch.ns_per_pool_round.median / 1.0e3,
        fig5.dispatch.pool_amortization,
    );
    println!(
        "index claiming over {} tasks: single-claim median {:.1} ns/task, chunked {:.1} ns/task \
         ({:.2}x)",
        fig5.dispatch.claim_tasks,
        fig5.dispatch.ns_per_task_claim_single.median,
        fig5.dispatch.ns_per_task_claim_chunked.median,
        fig5.dispatch.claim_speedup,
    );
    for entry in &fig5.fleet {
        println!(
            "coordinator step @ {:4} apps: sequential median {:.1} µs, pooled {:.1} µs \
             ({} workers, {:.2}x)",
            entry.apps,
            entry.ns_per_step_sequential.median / 1.0e3,
            entry.ns_per_step_pool.median / 1.0e3,
            entry.pool_workers,
            entry.pool_speedup,
        );
    }
    for entry in &fig5.worker_scaling {
        println!(
            "worker scaling @ 1000 apps: requested {} (used {}): median {:.1} µs \
             ({:.2}x vs one worker)",
            entry.workers_requested,
            entry.workers_used,
            entry.ns_per_step.median / 1.0e3,
            entry.speedup_vs_one_worker,
        );
    }
    println!(
        "contended shards ({} workers): resident {:.2} ns/line, thrashing {:.2} ns/line \
         ({:.2}x penalty)",
        fig5.contention.workers,
        fig5.contention.ns_per_line_resident.median,
        fig5.contention.ns_per_line_thrash.median,
        fig5.contention.contention_penalty,
    );
    println!(
        "obs overhead @ {} apps: off median {:.1} µs, recording {:.1} µs \
         (off-branch bound {:.2}%, recording {:+.2}%)",
        fig5.obs_overhead.apps,
        fig5.obs_overhead.ns_per_step_obs_off.median / 1.0e3,
        fig5.obs_overhead.ns_per_step_obs_on.median / 1.0e3,
        fig5.obs_overhead.obs_off_overhead_percent,
        fig5.obs_overhead.obs_on_overhead_percent,
    );
    write_fig5_json("BENCH_fig5.json", &fig5);
}
