//! Benchmark-only crate; see the `benches/` directory for the Criterion
//! harnesses that regenerate each figure of the paper's evaluation.
