//! Criterion bench regenerating Figure 3 (SEEC on an existing Linux/x86
//! system): the five benchmarks under no adaptation, uncoordinated
//! adaptation, SEEC, and the oracles.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::Figure3;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_seec_x86");
    group.sample_size(10);
    // A reduced quantum count keeps each iteration affordable; the printed
    // report below uses a longer run.
    group.bench_function("five_benchmarks_all_baselines", |b| {
        b.iter(|| Figure3::compute_with(2012, 20))
    });
    group.finish();

    let figure = Figure3::compute_with(2012, 60);
    println!("\n{}", figure.to_table());
}

criterion_group!(benches, fig3);
criterion_main!(benches);
