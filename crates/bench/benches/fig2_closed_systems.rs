//! Criterion bench regenerating Figure 2 (efficiency of closed adaptive
//! systems): the barnes cores × cache sweep on the 64-core multicore.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::Figure2;

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_closed_systems");
    group.sample_size(10);
    group.bench_function("barnes_cores_x_cache_sweep", |b| {
        b.iter(|| {
            let figure = Figure2::compute();
            assert!(!figure.frontier.is_empty());
            figure
        })
    });
    group.finish();

    // Print the regenerated figure once so the bench run doubles as a report.
    let figure = Figure2::compute();
    println!("\n{}", figure.to_table());
    println!(
        "closed-system choices off the Pareto frontier: {}\n",
        figure.suboptimal_closed_choices().len()
    );
}

criterion_group!(benches, fig2);
criterion_main!(benches);
