//! Criterion bench for the design-choice ablations (adaptive NoC features,
//! coherence protocols, decision placement).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::ablation::Ablations;

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("noc_coherence_partner_core", |b| b.iter(Ablations::compute));
    group.finish();

    println!("\n{}", Ablations::compute().to_table());
}

criterion_group!(benches, ablations);
criterion_main!(benches);
