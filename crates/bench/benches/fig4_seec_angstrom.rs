//! Criterion bench regenerating Figure 4 (anticipated SEEC results on the
//! 256-core Angstrom processor).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::Figure4;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_seec_angstrom");
    group.sample_size(10);
    group.bench_function("angstrom_256_sweep_all_benchmarks", |b| {
        b.iter(|| Figure4::compute_with_multiplier(1.15))
    });
    group.finish();

    let figure = Figure4::compute_with_multiplier(1.15);
    println!("\n{}", figure.to_table());
}

criterion_group!(benches, fig4);
criterion_main!(benches);
