//! Micro-benchmarks of the substrates themselves: a single chip evaluation,
//! a single server evaluation, and one SEEC decision. These track the cost of
//! the building blocks every figure is assembled from.

use angstrom_sim::chip::{AngstromChip, ChipConfiguration};
use angstrom_sim::config::ChipConfig;
use angstrom_sim::WorkloadDemand;
use criterion::{criterion_group, criterion_main, Criterion};
use seec::SeecRuntime;
use xeon_sim::{ServerConfiguration, ServerDemand, XeonServer};

fn substrates(c: &mut Criterion) {
    let chip = AngstromChip::new(ChipConfig::angstrom_256());
    let chip_cfg = ChipConfiguration::default_for(chip.config());
    let demand = WorkloadDemand::builder().build();
    c.bench_function("angstrom_chip_evaluate", |b| {
        b.iter(|| chip.evaluate(&demand, &chip_cfg))
    });

    let server = XeonServer::dell_r410();
    let server_demand = ServerDemand::builder().build();
    let server_cfg = ServerConfiguration::new(8, 0, 1.0);
    c.bench_function("xeon_server_evaluate", |b| {
        b.iter(|| server.evaluate(&server_demand, &server_cfg))
    });

    c.bench_function("seec_decision", |b| {
        use actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
        use heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal};
        let registry = HeartbeatRegistry::new("bench");
        registry
            .issuer()
            .set_goal(Goal::Performance(PerformanceGoal::heart_rate(100.0)));
        let spec = ActuatorSpec::builder("dvfs")
            .setting(SettingSpec::new("slow").effect(Axis::Performance, 0.5).effect(Axis::Power, 0.4))
            .setting(SettingSpec::new("fast"))
            .nominal(1)
            .build()
            .expect("valid spec");
        let mut runtime = SeecRuntime::builder(registry.monitor())
            .actuator(Box::new(TableActuator::new(spec)))
            .build()
            .expect("actuator registered");
        let issuer = registry.issuer();
        let mut now = 0.0;
        b.iter(|| {
            now += 0.01;
            issuer.heartbeat(now);
            runtime.decide(now)
        })
    });
}

criterion_group!(benches, substrates);
criterion_main!(benches);
