//! Property tests: the ring buffer's O(1) rolling statistics must agree
//! with a naive recomputation over the full beat history, for arbitrary
//! beat/window sequences.
//!
//! Quantities derived purely from retained timestamps (rates, min/max
//! instantaneous rate, tagged latency) must agree *bitwise* — the ring
//! performs the same subtractions and divisions on the same operands, just
//! incrementally. The rolling distortion mean may differ from a fresh scan
//! in the last ulps (floating-point addition is not associative under
//! eviction), so it is compared to 1e-9 relative.

use heartbeats::{HeartbeatRecord, Tag, Window};
use proptest::prelude::*;

/// A naive reference: keeps every record ever pushed and recomputes each
/// statistic from scratch over the last `capacity` records.
struct NaiveWindow {
    capacity: usize,
    all: Vec<HeartbeatRecord>,
}

impl NaiveWindow {
    fn retained(&self) -> &[HeartbeatRecord] {
        let start = self.all.len().saturating_sub(self.capacity);
        &self.all[start..]
    }

    fn rate_between(start: f64, end: f64, beats: u64) -> f64 {
        let elapsed = end - start;
        if elapsed > 0.0 {
            beats as f64 / elapsed
        } else {
            0.0
        }
    }

    fn instant(&self) -> f64 {
        let w = self.retained();
        if w.len() < 2 {
            return 0.0;
        }
        Self::rate_between(w[w.len() - 2].timestamp, w[w.len() - 1].timestamp, 1)
    }

    fn window(&self) -> f64 {
        let w = self.retained();
        if w.len() < 2 {
            return 0.0;
        }
        Self::rate_between(w[0].timestamp, w[w.len() - 1].timestamp, w.len() as u64 - 1)
    }

    fn global(&self) -> f64 {
        if self.all.len() < 2 || self.retained().len() < 2 {
            return 0.0;
        }
        Self::rate_between(
            self.all[0].timestamp,
            self.all[self.all.len() - 1].timestamp,
            self.all.len() as u64 - 1,
        )
    }

    /// (min_instant, max_instant) over positive consecutive intervals.
    fn min_max_instant(&self) -> (f64, f64) {
        let w = self.retained();
        let mut min_interval = f64::INFINITY;
        let mut max_interval = 0.0f64;
        for pair in w.windows(2) {
            let dt = pair[1].timestamp - pair[0].timestamp;
            if dt > 0.0 {
                min_interval = min_interval.min(dt);
                max_interval = max_interval.max(dt);
            }
        }
        if max_interval == 0.0 {
            (0.0, 0.0)
        } else {
            (1.0 / max_interval, 1.0 / min_interval)
        }
    }

    fn mean_distortion(&self) -> Option<f64> {
        let values: Vec<f64> = self.retained().iter().filter_map(|r| r.distortion).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    fn tagged_latency(&self, tag: &Tag) -> Option<f64> {
        let times: Vec<f64> = self
            .retained()
            .iter()
            .filter(|r| r.tag.as_ref() == Some(tag))
            .map(|r| r.timestamp)
            .collect();
        if times.len() < 2 {
            None
        } else {
            Some(times[times.len() - 1] - times[times.len() - 2])
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ring_rolling_stats_match_naive_recompute(
        raw_intervals in proptest::collection::vec(0.0..0.5f64, 2..80),
        capacity in 1usize..24,
    ) {
        let mut ring = Window::new(capacity);
        let naive_capacity = capacity;
        let mut naive = NaiveWindow { capacity: naive_capacity, all: Vec::new() };
        let tag = Tag::new("frame");

        let mut now = 0.0;
        for (seq, raw) in raw_intervals.iter().enumerate() {
            // Derive interval/distortion/tag variation deterministically
            // from the generated value so every shape (simultaneous beats,
            // distortion-free beats, sparse tags) is exercised.
            let salt = (raw * 1.0e6) as u64;
            let interval = if salt.is_multiple_of(5) { 0.0 } else { *raw };
            now += interval;
            let mut record = HeartbeatRecord::new(seq as u64, now);
            if salt.is_multiple_of(3) {
                record = record.with_distortion(*raw);
            }
            if salt.is_multiple_of(4) {
                record = record.with_tag(tag.clone());
            }
            ring.push(record.clone());
            naive.all.push(record);

            // Integer bookkeeping is exact.
            prop_assert_eq!(ring.len(), naive.retained().len());
            prop_assert_eq!(ring.total_beats(), naive.all.len() as u64);

            // Timestamp-derived rates are bitwise identical.
            let stats = ring.heart_rate();
            prop_assert_eq!(stats.beats_in_window, naive.retained().len());
            prop_assert_eq!(stats.instant.to_bits(), naive.instant().to_bits());
            prop_assert_eq!(stats.window.to_bits(), naive.window().to_bits());
            prop_assert_eq!(stats.global.to_bits(), naive.global().to_bits());
            let (min_instant, max_instant) = naive.min_max_instant();
            prop_assert_eq!(stats.min_instant.to_bits(), min_instant.to_bits());
            prop_assert_eq!(stats.max_instant.to_bits(), max_instant.to_bits());

            // The rolling distortion mean tracks the scan to float noise.
            let (rolling, scanned) = (ring.mean_distortion(), naive.mean_distortion());
            prop_assert_eq!(rolling.is_some(), scanned.is_some());
            if let (Some(rolling), Some(scanned)) = (rolling, scanned) {
                prop_assert!((rolling - scanned).abs() <= 1e-9 * scanned.abs().max(1.0));
            }

            // Tagged latency is bitwise identical.
            let ring_latency = ring.tagged_latency(&tag).map(f64::to_bits);
            let naive_latency = naive.tagged_latency(&tag).map(f64::to_bits);
            prop_assert_eq!(ring_latency, naive_latency);
        }
    }
}
