use serde::{Deserialize, Serialize};

/// Monotonically increasing sequence number assigned to each heartbeat.
pub type BeatSeq = u64;

/// An optional label attached to a heartbeat.
///
/// Tags mark *special* beats: the SEEC performance goal can be expressed as a
/// target latency between two beats carrying the same tag, and energy goals
/// can be expressed as a budget between tagged beats (DAC 2012 §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tag(String);

impl Tag {
    /// Creates a tag from any string-like value.
    pub fn new(name: impl Into<String>) -> Self {
        Tag(name.into())
    }

    /// Returns the tag name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Tag {
    fn from(value: &str) -> Self {
        Tag::new(value)
    }
}

impl From<String> for Tag {
    fn from(value: String) -> Self {
        Tag::new(value)
    }
}

/// A single recorded heartbeat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatRecord {
    /// Sequence number (0 for the first beat of the application).
    pub seq: BeatSeq,
    /// Simulation time at which the beat was emitted, in seconds.
    pub timestamp: f64,
    /// Optional tag carried by the beat.
    pub tag: Option<Tag>,
    /// Optional application-reported accuracy (distortion from the nominal
    /// value, where 0.0 means "exactly nominal"); see [`crate::AccuracyGoal`].
    pub distortion: Option<f64>,
    /// Optional amount of application work completed since the previous beat
    /// (e.g. particles processed). Purely informational.
    pub work: Option<f64>,
}

impl HeartbeatRecord {
    /// Creates a plain, untagged heartbeat record.
    pub fn new(seq: BeatSeq, timestamp: f64) -> Self {
        HeartbeatRecord {
            seq,
            timestamp,
            tag: None,
            distortion: None,
            work: None,
        }
    }

    /// Attaches a tag to this record.
    pub fn with_tag(mut self, tag: impl Into<Tag>) -> Self {
        self.tag = Some(tag.into());
        self
    }

    /// Attaches a distortion value to this record.
    pub fn with_distortion(mut self, distortion: f64) -> Self {
        self.distortion = Some(distortion);
        self
    }

    /// Attaches a work amount to this record.
    pub fn with_work(mut self, work: f64) -> Self {
        self.work = Some(work);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trips_through_display() {
        let tag = Tag::new("frame-start");
        assert_eq!(tag.name(), "frame-start");
        assert_eq!(tag.to_string(), "frame-start");
        assert_eq!(Tag::from("frame-start"), tag);
        assert_eq!(Tag::from(String::from("frame-start")), tag);
    }

    #[test]
    fn record_builder_attaches_fields() {
        let rec = HeartbeatRecord::new(7, 1.25)
            .with_tag("checkpoint")
            .with_distortion(0.05)
            .with_work(128.0);
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.timestamp, 1.25);
        assert_eq!(rec.tag, Some(Tag::new("checkpoint")));
        assert_eq!(rec.distortion, Some(0.05));
        assert_eq!(rec.work, Some(128.0));
    }

    #[test]
    fn plain_record_has_no_optional_fields() {
        let rec = HeartbeatRecord::new(0, 0.0);
        assert!(rec.tag.is_none());
        assert!(rec.distortion.is_none());
        assert!(rec.work.is_none());
    }
}
