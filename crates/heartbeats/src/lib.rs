//! # Application Heartbeats
//!
//! A Rust implementation of the *Application Heartbeats* interface used by
//! the SEEC self-aware runtime (Hoffmann et al., ICAC 2010; DAC 2012 §3.1).
//!
//! Applications instrument their important loops with [`HeartbeatIssuer::heartbeat`]
//! calls and declare *goals* — a target heart rate, a target latency between
//! tagged beats, an accuracy (distortion) bound, or a power/energy budget.
//! Other system components (most importantly the SEEC decision engine)
//! attach a [`HeartbeatMonitor`] to the same [`HeartbeatRegistry`] and observe
//! whether the goals are being met, without any knowledge of the application
//! internals.
//!
//! Time in this crate is *simulation time* expressed in seconds as `f64`;
//! the substrate driving the application decides how fast that clock
//! advances.
//!
//! ```
//! use heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal};
//!
//! let registry = HeartbeatRegistry::new("video-encoder");
//! let issuer = registry.issuer();
//! let monitor = registry.monitor();
//!
//! issuer.set_goal(Goal::Performance(PerformanceGoal::heart_rate(30.0)));
//! // ... encode frames, one heartbeat per frame ...
//! for frame in 0..120 {
//!     let now = frame as f64 / 60.0; // the substrate's clock
//!     issuer.heartbeat(now);
//! }
//!
//! let rate = monitor.window_heart_rate();
//! assert!(rate > 0.0);
//! assert!(monitor.goal().is_some());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod error;
mod goal;
mod record;
mod registry;
mod window;

pub use error::HeartbeatError;
pub use goal::{AccuracyGoal, Goal, GoalKind, PerformanceGoal, PowerGoal};
pub use record::{BeatSeq, HeartbeatRecord, Tag};
pub use registry::{
    observe_fleet, HeartbeatIssuer, HeartbeatMonitor, HeartbeatRegistry, MonitorObservation,
    RegistryStats,
};
pub use window::{HeartRateStats, Window};
