use serde::{Deserialize, Serialize};

use crate::error::HeartbeatError;
use crate::record::Tag;

/// The axis a goal constrains. Used by decision engines to pair goals with
/// actuators that affect the same axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GoalKind {
    /// Throughput or latency of the application.
    Performance,
    /// Output quality (distortion from a nominal value).
    Accuracy,
    /// Power or energy consumption.
    Power,
}

impl std::fmt::Display for GoalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            GoalKind::Performance => "performance",
            GoalKind::Accuracy => "accuracy",
            GoalKind::Power => "power",
        };
        f.write_str(name)
    }
}

/// A performance goal: either a target heart rate or a target latency
/// between beats carrying a given tag (DAC 2012 §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PerformanceGoal {
    /// Sustain at least `target` heartbeats per second, averaged over the
    /// observation window.
    HeartRate {
        /// Target heart rate in beats per second.
        target: f64,
    },
    /// Keep the elapsed time between consecutive beats tagged `tag` at or
    /// below `max_latency` seconds.
    TaggedLatency {
        /// Tag delimiting the measured interval.
        tag: Tag,
        /// Maximum allowed latency between tagged beats, in seconds.
        max_latency: f64,
    },
}

impl PerformanceGoal {
    /// Convenience constructor for a heart-rate goal.
    pub fn heart_rate(target: f64) -> Self {
        PerformanceGoal::HeartRate { target }
    }

    /// Convenience constructor for a tagged-latency goal.
    pub fn tagged_latency(tag: impl Into<Tag>, max_latency: f64) -> Self {
        PerformanceGoal::TaggedLatency {
            tag: tag.into(),
            max_latency,
        }
    }

    /// The target heart rate this goal implies (1 / latency for latency goals).
    pub fn implied_heart_rate(&self) -> f64 {
        match self {
            PerformanceGoal::HeartRate { target } => *target,
            PerformanceGoal::TaggedLatency { max_latency, .. } => {
                if *max_latency > 0.0 {
                    1.0 / max_latency
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    fn validate(&self) -> Result<(), HeartbeatError> {
        let value = match self {
            PerformanceGoal::HeartRate { target } => *target,
            PerformanceGoal::TaggedLatency { max_latency, .. } => *max_latency,
        };
        if value.is_finite() && value > 0.0 {
            Ok(())
        } else {
            Err(HeartbeatError::InvalidGoal(format!(
                "performance target must be positive and finite, got {value}"
            )))
        }
    }
}

/// An accuracy goal expressed as a maximum *distortion*: the linear distance
/// of the produced output from an application-defined nominal value,
/// averaged over a window of heartbeats (DAC 2012 §3.1, Dynamic Knobs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyGoal {
    /// Maximum acceptable mean distortion (0.0 = bit-exact nominal output).
    pub max_distortion: f64,
    /// Number of heartbeats over which distortion is averaged.
    pub window: usize,
}

impl AccuracyGoal {
    /// Creates an accuracy goal.
    pub fn new(max_distortion: f64, window: usize) -> Self {
        AccuracyGoal {
            max_distortion,
            window,
        }
    }

    fn validate(&self) -> Result<(), HeartbeatError> {
        if !self.max_distortion.is_finite() || self.max_distortion < 0.0 {
            return Err(HeartbeatError::InvalidGoal(format!(
                "max distortion must be non-negative and finite, got {}",
                self.max_distortion
            )));
        }
        if self.window == 0 {
            return Err(HeartbeatError::InvalidGoal(
                "accuracy window must contain at least one heartbeat".into(),
            ));
        }
        Ok(())
    }
}

/// A power or energy goal (DAC 2012 §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerGoal {
    /// Keep average power at or below `max_watts` while sustaining
    /// `min_heart_rate` beats per second.
    AveragePower {
        /// Power budget in watts.
        max_watts: f64,
        /// Heart rate that must be sustained within the budget.
        min_heart_rate: f64,
    },
    /// Keep the energy consumed between consecutive beats tagged `tag` at or
    /// below `max_joules`.
    TaggedEnergy {
        /// Tag delimiting the measured interval.
        tag: Tag,
        /// Energy budget in joules.
        max_joules: f64,
    },
}

impl PowerGoal {
    /// Convenience constructor for an average-power goal.
    pub fn average_power(max_watts: f64, min_heart_rate: f64) -> Self {
        PowerGoal::AveragePower {
            max_watts,
            min_heart_rate,
        }
    }

    /// Convenience constructor for a tagged-energy goal.
    pub fn tagged_energy(tag: impl Into<Tag>, max_joules: f64) -> Self {
        PowerGoal::TaggedEnergy {
            tag: tag.into(),
            max_joules,
        }
    }

    fn validate(&self) -> Result<(), HeartbeatError> {
        let budget = match self {
            PowerGoal::AveragePower { max_watts, .. } => *max_watts,
            PowerGoal::TaggedEnergy { max_joules, .. } => *max_joules,
        };
        if budget.is_finite() && budget > 0.0 {
            Ok(())
        } else {
            Err(HeartbeatError::InvalidGoal(format!(
                "power/energy budget must be positive and finite, got {budget}"
            )))
        }
    }
}

/// An application goal registered through the heartbeat API.
///
/// SEEC supports three goal families: performance, accuracy, and power
/// (DAC 2012 §3.1). A single application may register one goal per family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Goal {
    /// Performance (heart rate or tagged latency).
    Performance(PerformanceGoal),
    /// Accuracy (distortion bound).
    Accuracy(AccuracyGoal),
    /// Power or energy budget.
    Power(PowerGoal),
}

impl Goal {
    /// The goal family this goal belongs to.
    pub fn kind(&self) -> GoalKind {
        match self {
            Goal::Performance(_) => GoalKind::Performance,
            Goal::Accuracy(_) => GoalKind::Accuracy,
            Goal::Power(_) => GoalKind::Power,
        }
    }

    /// Checks the goal parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::InvalidGoal`] if a target is non-positive,
    /// non-finite, or a window is empty.
    pub fn validate(&self) -> Result<(), HeartbeatError> {
        match self {
            Goal::Performance(g) => g.validate(),
            Goal::Accuracy(g) => g.validate(),
            Goal::Power(g) => g.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_goal_validates_targets() {
        assert!(Goal::Performance(PerformanceGoal::heart_rate(30.0))
            .validate()
            .is_ok());
        assert!(Goal::Performance(PerformanceGoal::heart_rate(0.0))
            .validate()
            .is_err());
        assert!(Goal::Performance(PerformanceGoal::heart_rate(-1.0))
            .validate()
            .is_err());
        assert!(Goal::Performance(PerformanceGoal::heart_rate(f64::NAN))
            .validate()
            .is_err());
    }

    #[test]
    fn latency_goal_implies_heart_rate() {
        let goal = PerformanceGoal::tagged_latency("frame", 0.02);
        assert!((goal.implied_heart_rate() - 50.0).abs() < 1e-9);
        let rate_goal = PerformanceGoal::heart_rate(30.0);
        assert_eq!(rate_goal.implied_heart_rate(), 30.0);
    }

    #[test]
    fn accuracy_goal_rejects_empty_window() {
        assert!(Goal::Accuracy(AccuracyGoal::new(0.1, 0)).validate().is_err());
        assert!(Goal::Accuracy(AccuracyGoal::new(0.1, 10)).validate().is_ok());
        assert!(Goal::Accuracy(AccuracyGoal::new(-0.1, 10))
            .validate()
            .is_err());
    }

    #[test]
    fn power_goal_validates_budget() {
        assert!(Goal::Power(PowerGoal::average_power(90.0, 10.0))
            .validate()
            .is_ok());
        assert!(Goal::Power(PowerGoal::tagged_energy("iter", 0.0))
            .validate()
            .is_err());
    }

    #[test]
    fn goal_kinds_display() {
        assert_eq!(GoalKind::Performance.to_string(), "performance");
        assert_eq!(GoalKind::Accuracy.to_string(), "accuracy");
        assert_eq!(GoalKind::Power.to_string(), "power");
        assert_eq!(
            Goal::Performance(PerformanceGoal::heart_rate(1.0)).kind(),
            GoalKind::Performance
        );
        assert_eq!(
            Goal::Accuracy(AccuracyGoal::new(0.0, 1)).kind(),
            GoalKind::Accuracy
        );
        assert_eq!(
            Goal::Power(PowerGoal::average_power(1.0, 1.0)).kind(),
            GoalKind::Power
        );
    }
}
