use std::error::Error;
use std::fmt;

/// Errors reported by the heartbeat registry.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HeartbeatError {
    /// A heartbeat was emitted with a timestamp earlier than the previous one.
    NonMonotonicTime {
        /// Timestamp of the previously recorded beat, in seconds.
        previous: f64,
        /// Timestamp supplied for the new beat, in seconds.
        supplied: f64,
    },
    /// A tag was referenced (e.g. for tagged latency) that has never been emitted.
    UnknownTag(String),
    /// A goal parameter was invalid (non-positive target, empty window, ...).
    InvalidGoal(String),
}

impl fmt::Display for HeartbeatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeartbeatError::NonMonotonicTime { previous, supplied } => write!(
                f,
                "heartbeat timestamp {supplied} s precedes previous beat at {previous} s"
            ),
            HeartbeatError::UnknownTag(tag) => write!(f, "unknown heartbeat tag `{tag}`"),
            HeartbeatError::InvalidGoal(reason) => write!(f, "invalid goal: {reason}"),
        }
    }
}

impl Error for HeartbeatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = HeartbeatError::UnknownTag("frame".into());
        assert!(err.to_string().contains("frame"));
        let err = HeartbeatError::InvalidGoal("target must be positive".into());
        assert!(err.to_string().contains("target must be positive"));
        let err = HeartbeatError::NonMonotonicTime {
            previous: 10.0,
            supplied: 5.0,
        };
        assert!(err.to_string().contains("precedes"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HeartbeatError>();
    }
}
