use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::record::HeartbeatRecord;

/// Summary statistics of the heart rate observed over a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartRateStats {
    /// Heart rate over the most recent pair of beats, in beats/second.
    pub instant: f64,
    /// Heart rate over the whole window, in beats/second.
    pub window: f64,
    /// Heart rate since the first beat ever recorded, in beats/second.
    pub global: f64,
    /// Number of beats currently held in the window.
    pub beats_in_window: usize,
    /// Slowest instantaneous rate over the window (longest positive
    /// beat-to-beat interval), in beats/second. Zero until two beats with
    /// distinct timestamps are retained.
    pub min_instant: f64,
    /// Fastest instantaneous rate over the window (shortest positive
    /// beat-to-beat interval), in beats/second. Simultaneous beats (zero
    /// intervals) are excluded, matching the `instant` convention that a
    /// zero interval yields no rate.
    pub max_instant: f64,
}

impl Default for HeartRateStats {
    fn default() -> Self {
        HeartRateStats {
            instant: 0.0,
            window: 0.0,
            global: 0.0,
            beats_in_window: 0,
            min_instant: 0.0,
            max_instant: 0.0,
        }
    }
}

/// A bounded ring buffer of heartbeat records with O(1) rolling statistics.
///
/// The window retains the most recent `capacity` beats. All statistics are
/// maintained incrementally as beats are pushed and evicted, so every query
/// — heart rates, min/max instantaneous rate (monotonic deques), mean
/// distortion (rolling sum), tagged latency (per-tag timestamp ring) — is
/// O(1) regardless of the window size. Nothing in the observe path scans
/// the retained records.
#[derive(Debug, Clone)]
pub struct Window {
    capacity: usize,
    /// Ring storage: `VecDeque` never grows past `capacity` because a push
    /// at capacity evicts the front first.
    records: VecDeque<HeartbeatRecord>,
    first_timestamp: Option<f64>,
    last_timestamp: Option<f64>,
    total_beats: u64,
    /// Rolling distortion aggregate over retained records that report one.
    distortion_sum: f64,
    distortion_count: usize,
    /// Monotonic deques over the positive beat-to-beat intervals of the
    /// retained records, keyed by the push index of the *newer* beat of each
    /// pair. `min_intervals` is increasing (front = shortest interval =
    /// fastest rate); `max_intervals` is decreasing (front = longest).
    min_intervals: VecDeque<(u64, f64)>,
    max_intervals: VecDeque<(u64, f64)>,
    /// Push index of the oldest retained record (total_beats - len).
    evicted: u64,
    /// Retained timestamps of each tag's beats, oldest first, so the latency
    /// between the two most recent tagged beats is an O(1) lookup.
    tag_times: HashMap<crate::Tag, VecDeque<f64>>,
}

impl Window {
    /// Creates a window retaining up to `capacity` beats.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be at least 1");
        Window {
            capacity,
            records: VecDeque::with_capacity(capacity),
            first_timestamp: None,
            last_timestamp: None,
            total_beats: 0,
            distortion_sum: 0.0,
            distortion_count: 0,
            min_intervals: VecDeque::new(),
            max_intervals: VecDeque::new(),
            evicted: 0,
            tag_times: HashMap::new(),
        }
    }

    /// Maximum number of beats the window retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of beats currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no beats have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of beats ever pushed (including evicted ones).
    pub fn total_beats(&self) -> u64 {
        self.total_beats
    }

    /// Timestamp of the most recent beat, if any.
    pub fn last_timestamp(&self) -> Option<f64> {
        self.last_timestamp
    }

    /// Pushes a new record, evicting the oldest if the window is full.
    pub fn push(&mut self, record: HeartbeatRecord) {
        if self.records.len() == self.capacity {
            self.evict_front();
        }
        if self.first_timestamp.is_none() {
            self.first_timestamp = Some(record.timestamp);
        }
        // The interval belongs to the pair (previous record, this record)
        // and is keyed by this record's push index for eviction.
        let index = self.total_beats;
        if let (Some(last), false) = (self.last_timestamp, self.records.is_empty()) {
            let interval = record.timestamp - last;
            if interval > 0.0 {
                while self
                    .min_intervals
                    .back()
                    .is_some_and(|&(_, v)| v >= interval)
                {
                    self.min_intervals.pop_back();
                }
                self.min_intervals.push_back((index, interval));
                while self
                    .max_intervals
                    .back()
                    .is_some_and(|&(_, v)| v <= interval)
                {
                    self.max_intervals.pop_back();
                }
                self.max_intervals.push_back((index, interval));
            }
        }
        self.last_timestamp = Some(record.timestamp);
        self.total_beats += 1;
        if let Some(d) = record.distortion {
            self.distortion_sum += d;
            self.distortion_count += 1;
        }
        if let Some(tag) = &record.tag {
            self.tag_times
                .entry(tag.clone())
                .or_default()
                .push_back(record.timestamp);
        }
        self.records.push_back(record);
    }

    fn evict_front(&mut self) {
        let Some(old) = self.records.pop_front() else {
            return;
        };
        let index = self.evicted;
        self.evicted += 1;
        // The interval keyed by the *successor* of the evicted record pairs
        // it with the evicted beat, so it leaves the window too.
        while self.min_intervals.front().is_some_and(|&(i, _)| i <= index + 1) {
            self.min_intervals.pop_front();
        }
        while self.max_intervals.front().is_some_and(|&(i, _)| i <= index + 1) {
            self.max_intervals.pop_front();
        }
        if let Some(d) = old.distortion {
            self.distortion_sum -= d;
            self.distortion_count -= 1;
            if self.distortion_count == 0 {
                // Reset rolling error so long-lived windows cannot drift.
                self.distortion_sum = 0.0;
            }
        }
        if let Some(tag) = &old.tag {
            if let Some(times) = self.tag_times.get_mut(tag) {
                times.pop_front();
                if times.is_empty() {
                    self.tag_times.remove(tag);
                }
            }
        }
    }

    /// Iterates over the retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &HeartbeatRecord> {
        self.records.iter()
    }

    /// Heart-rate statistics over the retained beats.
    ///
    /// The *instant* rate uses the last two beats, the *window* rate uses the
    /// first and last retained beat, and the *global* rate uses the first
    /// beat ever recorded. Rates are zero until two beats are available.
    /// `min_instant`/`max_instant` come from the monotonic interval deques
    /// and cover every consecutive pair retained in the window.
    pub fn heart_rate(&self) -> HeartRateStats {
        let n = self.records.len();
        if n < 2 {
            return HeartRateStats {
                beats_in_window: n,
                ..HeartRateStats::default()
            };
        }
        let last = &self.records[n - 1];
        let prev = &self.records[n - 2];
        let first_in_window = &self.records[0];

        let instant = rate_between(prev.timestamp, last.timestamp, 1);
        let window = rate_between(first_in_window.timestamp, last.timestamp, n as u64 - 1);
        let global = match self.first_timestamp {
            Some(first) if self.total_beats > 1 => {
                rate_between(first, last.timestamp, self.total_beats - 1)
            }
            _ => 0.0,
        };
        // Fastest rate = shortest interval (front of the increasing deque);
        // slowest rate = longest interval (front of the decreasing deque).
        let max_instant = self
            .min_intervals
            .front()
            .map_or(0.0, |&(_, dt)| 1.0 / dt);
        let min_instant = self
            .max_intervals
            .front()
            .map_or(0.0, |&(_, dt)| 1.0 / dt);
        HeartRateStats {
            instant,
            window,
            global,
            beats_in_window: n,
            min_instant,
            max_instant,
        }
    }

    /// Mean distortion over the retained beats that report one, or `None`
    /// if no retained beat carries a distortion value. Maintained as a
    /// rolling sum, so repeated queries cost O(1).
    pub fn mean_distortion(&self) -> Option<f64> {
        if self.distortion_count == 0 {
            None
        } else {
            Some(self.distortion_sum / self.distortion_count as f64)
        }
    }

    /// Latency between the two most recent beats carrying `tag`, in seconds.
    /// O(1): each tag's retained timestamps are kept in a per-tag ring.
    pub fn tagged_latency(&self, tag: &crate::Tag) -> Option<f64> {
        let times = self.tag_times.get(tag)?;
        let n = times.len();
        if n < 2 {
            return None;
        }
        Some(times[n - 1] - times[n - 2])
    }
}

fn rate_between(start: f64, end: f64, beats: u64) -> f64 {
    let elapsed = end - start;
    if elapsed > 0.0 {
        beats as f64 / elapsed
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HeartbeatRecord;

    fn beat(seq: u64, t: f64) -> HeartbeatRecord {
        HeartbeatRecord::new(seq, t)
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Window::new(0);
    }

    #[test]
    fn empty_window_reports_zero_rates() {
        let w = Window::new(8);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        let stats = w.heart_rate();
        assert_eq!(stats.instant, 0.0);
        assert_eq!(stats.window, 0.0);
        assert_eq!(stats.global, 0.0);
        assert_eq!(stats.min_instant, 0.0);
        assert_eq!(stats.max_instant, 0.0);
    }

    #[test]
    fn steady_beats_yield_constant_rate() {
        let mut w = Window::new(16);
        for i in 0..10 {
            w.push(beat(i, i as f64 * 0.1)); // 10 beats/s
        }
        let stats = w.heart_rate();
        assert!((stats.instant - 10.0).abs() < 1e-9);
        assert!((stats.window - 10.0).abs() < 1e-9);
        assert!((stats.global - 10.0).abs() < 1e-9);
        assert_eq!(stats.beats_in_window, 10);
        assert!((stats.min_instant - 10.0).abs() < 1e-6);
        assert!((stats.max_instant - 10.0).abs() < 1e-6);
    }

    #[test]
    fn eviction_keeps_window_rate_recent() {
        let mut w = Window::new(4);
        // Slow phase: 1 beat/s.
        for i in 0..5 {
            w.push(beat(i, i as f64));
        }
        // Fast phase: 100 beats/s.
        for i in 0..8 {
            w.push(beat(5 + i, 5.0 + (i + 1) as f64 * 0.01));
        }
        let stats = w.heart_rate();
        assert_eq!(w.len(), 4);
        assert!(stats.window > 50.0, "window rate should track fast phase");
        assert!(stats.global < 5.0, "global rate reflects whole history");
        assert_eq!(w.total_beats(), 13);
        // The slow-phase intervals have been evicted, so the slowest
        // retained instantaneous rate belongs to the fast phase.
        assert!(stats.min_instant > 50.0);
    }

    #[test]
    fn instant_rate_uses_last_pair() {
        let mut w = Window::new(8);
        w.push(beat(0, 0.0));
        w.push(beat(1, 1.0));
        w.push(beat(2, 1.5));
        let stats = w.heart_rate();
        assert!((stats.instant - 2.0).abs() < 1e-9);
        assert!((stats.min_instant - 1.0).abs() < 1e-9);
        assert!((stats.max_instant - 2.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_track_eviction_of_extremes() {
        let mut w = Window::new(3);
        w.push(beat(0, 0.0));
        w.push(beat(1, 10.0)); // interval 10 (slowest)
        w.push(beat(2, 10.5)); // interval 0.5
        assert!((w.heart_rate().min_instant - 0.1).abs() < 1e-12);
        w.push(beat(3, 11.0)); // evicts beat 0 → interval 10 leaves
        let stats = w.heart_rate();
        assert!((stats.min_instant - 2.0).abs() < 1e-12);
        assert!((stats.max_instant - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_distortion_ignores_unreported_beats() {
        let mut w = Window::new(8);
        w.push(beat(0, 0.0).with_distortion(0.2));
        w.push(beat(1, 1.0));
        w.push(beat(2, 2.0).with_distortion(0.4));
        assert!((w.mean_distortion().unwrap() - 0.3).abs() < 1e-9);
        let empty = Window::new(4);
        assert!(empty.mean_distortion().is_none());
    }

    #[test]
    fn mean_distortion_follows_eviction() {
        let mut w = Window::new(2);
        w.push(beat(0, 0.0).with_distortion(0.9));
        w.push(beat(1, 1.0).with_distortion(0.1));
        w.push(beat(2, 2.0).with_distortion(0.3));
        // The 0.9 report was evicted with its beat.
        assert!((w.mean_distortion().unwrap() - 0.2).abs() < 1e-9);
        w.push(beat(3, 3.0));
        w.push(beat(4, 4.0));
        assert!(w.mean_distortion().is_none());
    }

    #[test]
    fn tagged_latency_measures_between_matching_tags() {
        let mut w = Window::new(8);
        w.push(beat(0, 0.0).with_tag("frame"));
        w.push(beat(1, 0.4));
        w.push(beat(2, 1.0).with_tag("frame"));
        w.push(beat(3, 1.2).with_tag("other"));
        let latency = w.tagged_latency(&crate::Tag::new("frame")).unwrap();
        assert!((latency - 1.0).abs() < 1e-9);
        assert!(w.tagged_latency(&crate::Tag::new("missing")).is_none());
    }

    #[test]
    fn tagged_latency_forgets_evicted_beats() {
        let mut w = Window::new(2);
        w.push(beat(0, 0.0).with_tag("frame"));
        w.push(beat(1, 1.0).with_tag("frame"));
        assert!((w.tagged_latency(&crate::Tag::new("frame")).unwrap() - 1.0).abs() < 1e-12);
        w.push(beat(2, 2.0));
        // Only one tagged beat remains in the window.
        assert!(w.tagged_latency(&crate::Tag::new("frame")).is_none());
    }

    #[test]
    fn simultaneous_beats_do_not_divide_by_zero() {
        let mut w = Window::new(4);
        w.push(beat(0, 1.0));
        w.push(beat(1, 1.0));
        let stats = w.heart_rate();
        assert_eq!(stats.instant, 0.0);
        assert_eq!(stats.window, 0.0);
        assert_eq!(stats.min_instant, 0.0);
        assert_eq!(stats.max_instant, 0.0);
    }
}
