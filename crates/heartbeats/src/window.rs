use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::record::HeartbeatRecord;

/// Summary statistics of the heart rate observed over a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartRateStats {
    /// Heart rate over the most recent pair of beats, in beats/second.
    pub instant: f64,
    /// Heart rate over the whole window, in beats/second.
    pub window: f64,
    /// Heart rate since the first beat ever recorded, in beats/second.
    pub global: f64,
    /// Number of beats currently held in the window.
    pub beats_in_window: usize,
}

impl Default for HeartRateStats {
    fn default() -> Self {
        HeartRateStats {
            instant: 0.0,
            window: 0.0,
            global: 0.0,
            beats_in_window: 0,
        }
    }
}

/// A bounded sliding window of heartbeat records.
///
/// The window retains the most recent `capacity` beats and incrementally
/// maintains heart-rate and distortion statistics over them.
#[derive(Debug, Clone)]
pub struct Window {
    capacity: usize,
    records: VecDeque<HeartbeatRecord>,
    first_timestamp: Option<f64>,
    last_timestamp: Option<f64>,
    total_beats: u64,
}

impl Window {
    /// Creates a window retaining up to `capacity` beats.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be at least 1");
        Window {
            capacity,
            records: VecDeque::with_capacity(capacity),
            first_timestamp: None,
            last_timestamp: None,
            total_beats: 0,
        }
    }

    /// Maximum number of beats the window retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of beats currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no beats have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of beats ever pushed (including evicted ones).
    pub fn total_beats(&self) -> u64 {
        self.total_beats
    }

    /// Timestamp of the most recent beat, if any.
    pub fn last_timestamp(&self) -> Option<f64> {
        self.last_timestamp
    }

    /// Pushes a new record, evicting the oldest if the window is full.
    pub fn push(&mut self, record: HeartbeatRecord) {
        if self.first_timestamp.is_none() {
            self.first_timestamp = Some(record.timestamp);
        }
        self.last_timestamp = Some(record.timestamp);
        self.total_beats += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
    }

    /// Iterates over the retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &HeartbeatRecord> {
        self.records.iter()
    }

    /// Heart-rate statistics over the retained beats.
    ///
    /// The *instant* rate uses the last two beats, the *window* rate uses the
    /// first and last retained beat, and the *global* rate uses the first
    /// beat ever recorded. Rates are zero until two beats are available.
    pub fn heart_rate(&self) -> HeartRateStats {
        let n = self.records.len();
        if n < 2 {
            return HeartRateStats {
                beats_in_window: n,
                ..HeartRateStats::default()
            };
        }
        let last = &self.records[n - 1];
        let prev = &self.records[n - 2];
        let first_in_window = &self.records[0];

        let instant = rate_between(prev.timestamp, last.timestamp, 1);
        let window = rate_between(first_in_window.timestamp, last.timestamp, n as u64 - 1);
        let global = match self.first_timestamp {
            Some(first) if self.total_beats > 1 => {
                rate_between(first, last.timestamp, self.total_beats - 1)
            }
            _ => 0.0,
        };
        HeartRateStats {
            instant,
            window,
            global,
            beats_in_window: n,
        }
    }

    /// Mean distortion over the retained beats that report one, or `None`
    /// if no retained beat carries a distortion value.
    pub fn mean_distortion(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for rec in &self.records {
            if let Some(d) = rec.distortion {
                sum += d;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// Latency between the two most recent beats carrying `tag`, in seconds.
    pub fn tagged_latency(&self, tag: &crate::Tag) -> Option<f64> {
        let mut newest: Option<f64> = None;
        for rec in self.records.iter().rev() {
            if rec.tag.as_ref() == Some(tag) {
                match newest {
                    None => newest = Some(rec.timestamp),
                    Some(later) => return Some(later - rec.timestamp),
                }
            }
        }
        None
    }
}

fn rate_between(start: f64, end: f64, beats: u64) -> f64 {
    let elapsed = end - start;
    if elapsed > 0.0 {
        beats as f64 / elapsed
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HeartbeatRecord;

    fn beat(seq: u64, t: f64) -> HeartbeatRecord {
        HeartbeatRecord::new(seq, t)
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Window::new(0);
    }

    #[test]
    fn empty_window_reports_zero_rates() {
        let w = Window::new(8);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        let stats = w.heart_rate();
        assert_eq!(stats.instant, 0.0);
        assert_eq!(stats.window, 0.0);
        assert_eq!(stats.global, 0.0);
    }

    #[test]
    fn steady_beats_yield_constant_rate() {
        let mut w = Window::new(16);
        for i in 0..10 {
            w.push(beat(i, i as f64 * 0.1)); // 10 beats/s
        }
        let stats = w.heart_rate();
        assert!((stats.instant - 10.0).abs() < 1e-9);
        assert!((stats.window - 10.0).abs() < 1e-9);
        assert!((stats.global - 10.0).abs() < 1e-9);
        assert_eq!(stats.beats_in_window, 10);
    }

    #[test]
    fn eviction_keeps_window_rate_recent() {
        let mut w = Window::new(4);
        // Slow phase: 1 beat/s.
        for i in 0..5 {
            w.push(beat(i, i as f64));
        }
        // Fast phase: 100 beats/s.
        for i in 0..8 {
            w.push(beat(5 + i, 5.0 + (i + 1) as f64 * 0.01));
        }
        let stats = w.heart_rate();
        assert_eq!(w.len(), 4);
        assert!(stats.window > 50.0, "window rate should track fast phase");
        assert!(stats.global < 5.0, "global rate reflects whole history");
        assert_eq!(w.total_beats(), 13);
    }

    #[test]
    fn instant_rate_uses_last_pair() {
        let mut w = Window::new(8);
        w.push(beat(0, 0.0));
        w.push(beat(1, 1.0));
        w.push(beat(2, 1.5));
        let stats = w.heart_rate();
        assert!((stats.instant - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_distortion_ignores_unreported_beats() {
        let mut w = Window::new(8);
        w.push(beat(0, 0.0).with_distortion(0.2));
        w.push(beat(1, 1.0));
        w.push(beat(2, 2.0).with_distortion(0.4));
        assert!((w.mean_distortion().unwrap() - 0.3).abs() < 1e-9);
        let empty = Window::new(4);
        assert!(empty.mean_distortion().is_none());
    }

    #[test]
    fn tagged_latency_measures_between_matching_tags() {
        let mut w = Window::new(8);
        w.push(beat(0, 0.0).with_tag("frame"));
        w.push(beat(1, 0.4));
        w.push(beat(2, 1.0).with_tag("frame"));
        w.push(beat(3, 1.2).with_tag("other"));
        let latency = w.tagged_latency(&crate::Tag::new("frame")).unwrap();
        assert!((latency - 1.0).abs() < 1e-9);
        assert!(w.tagged_latency(&crate::Tag::new("missing")).is_none());
    }

    #[test]
    fn simultaneous_beats_do_not_divide_by_zero() {
        let mut w = Window::new(4);
        w.push(beat(0, 1.0));
        w.push(beat(1, 1.0));
        let stats = w.heart_rate();
        assert_eq!(stats.instant, 0.0);
        assert_eq!(stats.window, 0.0);
    }
}
