use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::error::HeartbeatError;
use crate::goal::{Goal, GoalKind};
use crate::record::{BeatSeq, HeartbeatRecord, Tag};
use crate::window::{HeartRateStats, Window};

/// Default number of beats retained in the observation window.
pub const DEFAULT_WINDOW: usize = 64;

/// Aggregate statistics about a registry, useful for logging and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegistryStats {
    /// Total beats emitted over the application lifetime.
    pub total_beats: u64,
    /// Heart-rate statistics over the current window.
    pub heart_rate: HeartRateStats,
    /// Mean distortion over the window (if the application reports accuracy).
    pub mean_distortion: Option<f64>,
}

/// Everything a decision engine needs from one observation of the
/// application, captured under a single lock acquisition.
///
/// [`HeartbeatMonitor::observation`] exists for the hot observe path: the
/// SEEC runtime previously took five independent read locks per decision
/// (stats, goal, goal-met, last beat, power); a snapshot takes one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorObservation {
    /// Heart-rate statistics over the window.
    pub stats: HeartRateStats,
    /// Simulation time of the most recent beat, if any.
    pub last_beat_timestamp: Option<f64>,
    /// Target heart rate implied by the application's performance goal.
    pub target_heart_rate: Option<f64>,
    /// Mean of the retained platform power samples, in watts.
    pub mean_power: Option<f64>,
    /// Whether the performance goal (if any) is met by the window rate;
    /// `None` when no goal is registered or fewer than two beats observed.
    pub performance_goal_met: Option<bool>,
}

#[derive(Debug)]
struct Inner {
    name: Arc<str>,
    window: Window,
    goals: Vec<Goal>,
    next_seq: BeatSeq,
    /// Power samples attributed to this application by the platform, in
    /// (timestamp, watts) pairs. Retained for the same horizon as the
    /// window, in a ring so eviction is O(1).
    power_samples: VecDeque<(f64, f64)>,
    max_power_samples: usize,
}

impl Inner {
    fn record(&mut self, record: HeartbeatRecord) -> Result<BeatSeq, HeartbeatError> {
        if let Some(last) = self.window.last_timestamp() {
            if record.timestamp < last {
                return Err(HeartbeatError::NonMonotonicTime {
                    previous: last,
                    supplied: record.timestamp,
                });
            }
        }
        let seq = record.seq;
        self.window.push(record);
        self.next_seq = seq + 1;
        Ok(seq)
    }

    fn target_heart_rate(&self) -> Option<f64> {
        self.goals.iter().find_map(|g| match g {
            Goal::Performance(goal) => Some(goal.implied_heart_rate()),
            _ => None,
        })
    }

    /// Mean power over the retained samples. Summed front-to-back exactly as
    /// the samples were recorded so the result is bit-identical to a scan of
    /// the pre-ring `Vec` storage (the mean feeds the decision loop, whose
    /// outputs must stay reproducible).
    fn mean_power(&self) -> Option<f64> {
        if self.power_samples.is_empty() {
            return None;
        }
        let sum: f64 = self.power_samples.iter().map(|(_, w)| w).sum();
        Some(sum / self.power_samples.len() as f64)
    }
}

/// Shared heartbeat state for one application.
///
/// The registry is the meeting point of the two halves of the API: the
/// *application side* ([`HeartbeatIssuer`]) emits beats and declares goals,
/// while the *system side* ([`HeartbeatMonitor`]) observes progress. Both
/// handles are cheaply cloneable and thread-safe.
#[derive(Debug, Clone)]
pub struct HeartbeatRegistry {
    inner: Arc<RwLock<Inner>>,
}

impl HeartbeatRegistry {
    /// Creates a registry with the default window size.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_window(name, DEFAULT_WINDOW)
    }

    /// Creates a registry retaining `window` beats for observation.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(name: impl Into<String>, window: usize) -> Self {
        HeartbeatRegistry {
            inner: Arc::new(RwLock::new(Inner {
                name: Arc::from(name.into()),
                window: Window::new(window),
                goals: Vec::new(),
                next_seq: 0,
                power_samples: VecDeque::with_capacity(window.max(DEFAULT_WINDOW)),
                max_power_samples: window.max(DEFAULT_WINDOW),
            })),
        }
    }

    /// Application name given at construction. The name is interned in an
    /// `Arc<str>`, so this clones a pointer, not the string.
    pub fn name(&self) -> Arc<str> {
        Arc::clone(&self.inner.read().name)
    }

    /// Returns the application-side handle.
    pub fn issuer(&self) -> HeartbeatIssuer {
        HeartbeatIssuer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Returns the system-side (observer) handle.
    pub fn monitor(&self) -> HeartbeatMonitor {
        HeartbeatMonitor {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Application-side handle: emits heartbeats and declares goals.
#[derive(Debug, Clone)]
pub struct HeartbeatIssuer {
    inner: Arc<RwLock<Inner>>,
}

impl HeartbeatIssuer {
    /// Emits a heartbeat at simulation time `now` (seconds).
    ///
    /// Returns the sequence number of the new beat. Beats with a timestamp
    /// earlier than the previous beat are rejected; beats with an equal
    /// timestamp are accepted (several beats may share a simulation quantum).
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::NonMonotonicTime`] when `now` precedes the
    /// previous beat.
    pub fn try_heartbeat(&self, now: f64) -> Result<BeatSeq, HeartbeatError> {
        let mut inner = self.inner.write();
        let seq = inner.next_seq;
        inner.record(HeartbeatRecord::new(seq, now))
    }

    /// Emits a heartbeat, panicking on non-monotonic time.
    ///
    /// This mirrors the C API's fire-and-forget `heartbeat()` call and is the
    /// common path for simulated applications whose clock cannot go
    /// backwards.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the timestamp of the previous beat.
    pub fn heartbeat(&self, now: f64) -> BeatSeq {
        self.try_heartbeat(now)
            .expect("heartbeat timestamps must be monotonically non-decreasing")
    }

    /// Emits a tagged heartbeat (see [`Tag`]).
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::NonMonotonicTime`] when `now` precedes the
    /// previous beat.
    pub fn tagged_heartbeat(
        &self,
        now: f64,
        tag: impl Into<Tag>,
    ) -> Result<BeatSeq, HeartbeatError> {
        let mut inner = self.inner.write();
        let seq = inner.next_seq;
        inner.record(HeartbeatRecord::new(seq, now).with_tag(tag))
    }

    /// Emits a heartbeat carrying an accuracy (distortion) report.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::NonMonotonicTime`] when `now` precedes the
    /// previous beat.
    pub fn heartbeat_with_distortion(
        &self,
        now: f64,
        distortion: f64,
    ) -> Result<BeatSeq, HeartbeatError> {
        let mut inner = self.inner.write();
        let seq = inner.next_seq;
        inner.record(HeartbeatRecord::new(seq, now).with_distortion(distortion))
    }

    /// Registers (or replaces) the goal of the same kind.
    ///
    /// # Panics
    ///
    /// Panics if the goal parameters are invalid; use [`Self::try_set_goal`]
    /// to handle invalid goals gracefully.
    pub fn set_goal(&self, goal: Goal) {
        self.try_set_goal(goal).expect("goal must be valid");
    }

    /// Registers (or replaces) the goal of the same kind.
    ///
    /// # Errors
    ///
    /// Returns [`HeartbeatError::InvalidGoal`] if the goal parameters are
    /// invalid (non-positive targets, empty windows, ...).
    pub fn try_set_goal(&self, goal: Goal) -> Result<(), HeartbeatError> {
        goal.validate()?;
        let mut inner = self.inner.write();
        let kind = goal.kind();
        inner.goals.retain(|g| g.kind() != kind);
        inner.goals.push(goal);
        Ok(())
    }

    /// Removes the goal of the given kind, returning it if present.
    pub fn clear_goal(&self, kind: GoalKind) -> Option<Goal> {
        let mut inner = self.inner.write();
        let pos = inner.goals.iter().position(|g| g.kind() == kind)?;
        Some(inner.goals.remove(pos))
    }
}

/// System-side handle: observes heartbeats, goals, and power attribution.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    inner: Arc<RwLock<Inner>>,
}

impl HeartbeatMonitor {
    /// Name of the observed application, as a cheaply cloneable `Arc<str>`.
    pub fn name(&self) -> Arc<str> {
        Arc::clone(&self.inner.read().name)
    }

    /// Heart rate over the observation window, in beats/second.
    pub fn window_heart_rate(&self) -> f64 {
        self.inner.read().window.heart_rate().window
    }

    /// Full heart-rate statistics (instant / window / global / min / max).
    pub fn heart_rate(&self) -> HeartRateStats {
        self.inner.read().window.heart_rate()
    }

    /// Simulation time of the most recent beat, if any. Window-averaged
    /// rates describe the interval *ending at this time*, which may trail
    /// the caller's clock when the application has stopped beating.
    pub fn last_beat_timestamp(&self) -> Option<f64> {
        self.inner.read().window.last_timestamp()
    }

    /// Aggregate registry statistics.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.read();
        RegistryStats {
            total_beats: inner.window.total_beats(),
            heart_rate: inner.window.heart_rate(),
            mean_distortion: inner.window.mean_distortion(),
        }
    }

    /// Captures everything the decide path observes — rate statistics, the
    /// performance target, goal attainment, the last beat time, and mean
    /// power — under one lock acquisition.
    pub fn observation(&self) -> MonitorObservation {
        let inner = self.inner.read();
        let stats = inner.window.heart_rate();
        let target_heart_rate = inner.target_heart_rate();
        let performance_goal_met = match target_heart_rate {
            Some(target) if stats.beats_in_window >= 2 => Some(stats.window >= target),
            Some(_) => None,
            None => None,
        };
        MonitorObservation {
            stats,
            last_beat_timestamp: inner.window.last_timestamp(),
            target_heart_rate,
            mean_power: inner.mean_power(),
            performance_goal_met,
        }
    }

    /// Calls `f` with the application's registered goals, without cloning
    /// them. Prefer this over [`Self::goals`] anywhere called repeatedly.
    pub fn with_goals<R>(&self, f: impl FnOnce(&[Goal]) -> R) -> R {
        f(&self.inner.read().goals)
    }

    /// All goals currently registered by the application, cloned. For
    /// clone-free access use [`Self::with_goals`].
    pub fn goals(&self) -> Vec<Goal> {
        self.inner.read().goals.clone()
    }

    /// The goal of a particular kind, if registered.
    pub fn goal_of_kind(&self, kind: GoalKind) -> Option<Goal> {
        self.inner
            .read()
            .goals
            .iter()
            .find(|g| g.kind() == kind)
            .cloned()
    }

    /// The first registered goal, if any (convenience for single-goal apps).
    pub fn goal(&self) -> Option<Goal> {
        self.inner.read().goals.first().cloned()
    }

    /// Target heart rate implied by the performance goal, if one is set.
    pub fn target_heart_rate(&self) -> Option<f64> {
        self.inner.read().target_heart_rate()
    }

    /// Latency between the last two beats tagged `tag`, if observable.
    pub fn tagged_latency(&self, tag: &Tag) -> Option<f64> {
        self.inner.read().window.tagged_latency(tag)
    }

    /// Mean distortion over the window, if the application reports accuracy.
    pub fn mean_distortion(&self) -> Option<f64> {
        self.inner.read().window.mean_distortion()
    }

    /// Records a platform-attributed power sample (timestamp seconds, watts).
    ///
    /// Power is measured by the platform (e.g. the WattsUp meter in §5.2 or
    /// Angstrom's energy sensors in §4.1), not by the application, so the
    /// sample enters through the monitor side of the API.
    pub fn record_power_sample(&self, now: f64, watts: f64) {
        let mut inner = self.inner.write();
        if inner.power_samples.len() == inner.max_power_samples {
            inner.power_samples.pop_front();
        }
        inner.power_samples.push_back((now, watts));
    }

    /// Mean of the retained power samples, in watts.
    pub fn mean_power(&self) -> Option<f64> {
        self.inner.read().mean_power()
    }

    /// Whether the performance goal (if any) is currently met by the window
    /// heart rate. Returns `None` when no performance goal is registered or
    /// too few beats have been observed.
    pub fn performance_goal_met(&self) -> Option<bool> {
        self.observation().performance_goal_met
    }
}

/// Snapshots every monitor in `monitors` into `out`, in order.
///
/// `out` is cleared and refilled in place, so a caller that keeps the buffer
/// between rounds pays one lock acquisition per application and — once the
/// buffer's capacity has warmed up — no allocation. This is the observe step
/// of a multi-application coordinator: N applications are snapshotted
/// back-to-back instead of interleaving lock traffic with decisions.
///
/// Each observation is exactly what [`HeartbeatMonitor::observation`] would
/// have returned at the same instant; monitors are sampled sequentially, not
/// atomically across applications (per-application snapshots are consistent,
/// the fleet view is not a global barrier).
pub fn observe_fleet(monitors: &[HeartbeatMonitor], out: &mut Vec<MonitorObservation>) {
    out.clear();
    out.reserve(monitors.len());
    out.extend(monitors.iter().map(HeartbeatMonitor::observation));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::{AccuracyGoal, PerformanceGoal, PowerGoal};

    #[test]
    fn issuer_and_monitor_share_state() {
        let registry = HeartbeatRegistry::new("app");
        let issuer = registry.issuer();
        let monitor = registry.monitor();
        for i in 0..20 {
            issuer.heartbeat(i as f64 * 0.05); // 20 beats/s
        }
        assert!((monitor.window_heart_rate() - 20.0).abs() < 1e-9);
        assert_eq!(monitor.stats().total_beats, 20);
        assert_eq!(&*registry.name(), "app");
        assert_eq!(&*monitor.name(), "app");
    }

    #[test]
    fn non_monotonic_time_is_rejected() {
        let registry = HeartbeatRegistry::new("app");
        let issuer = registry.issuer();
        issuer.heartbeat(1.0);
        let err = issuer.try_heartbeat(0.5).unwrap_err();
        assert!(matches!(err, HeartbeatError::NonMonotonicTime { .. }));
        // Equal timestamps are fine.
        assert!(issuer.try_heartbeat(1.0).is_ok());
    }

    #[test]
    fn goals_replace_by_kind() {
        let registry = HeartbeatRegistry::new("app");
        let issuer = registry.issuer();
        let monitor = registry.monitor();
        issuer.set_goal(Goal::Performance(PerformanceGoal::heart_rate(10.0)));
        issuer.set_goal(Goal::Performance(PerformanceGoal::heart_rate(30.0)));
        issuer.set_goal(Goal::Power(PowerGoal::average_power(100.0, 30.0)));
        let goals = monitor.goals();
        assert_eq!(goals.len(), 2);
        assert_eq!(monitor.with_goals(<[Goal]>::len), 2);
        assert_eq!(monitor.target_heart_rate(), Some(30.0));
        assert!(monitor.goal_of_kind(GoalKind::Power).is_some());
        assert!(monitor.goal_of_kind(GoalKind::Accuracy).is_none());
    }

    #[test]
    fn invalid_goal_is_rejected() {
        let registry = HeartbeatRegistry::new("app");
        let issuer = registry.issuer();
        assert!(issuer
            .try_set_goal(Goal::Performance(PerformanceGoal::heart_rate(-3.0)))
            .is_err());
        assert!(registry.monitor().goals().is_empty());
    }

    #[test]
    fn clear_goal_removes_only_that_kind() {
        let registry = HeartbeatRegistry::new("app");
        let issuer = registry.issuer();
        issuer.set_goal(Goal::Performance(PerformanceGoal::heart_rate(10.0)));
        issuer.set_goal(Goal::Accuracy(AccuracyGoal::new(0.1, 8)));
        assert!(issuer.clear_goal(GoalKind::Performance).is_some());
        assert!(issuer.clear_goal(GoalKind::Performance).is_none());
        assert_eq!(registry.monitor().goals().len(), 1);
    }

    #[test]
    fn performance_goal_met_tracks_window_rate() {
        let registry = HeartbeatRegistry::new("app");
        let issuer = registry.issuer();
        let monitor = registry.monitor();
        issuer.set_goal(Goal::Performance(PerformanceGoal::heart_rate(10.0)));
        assert_eq!(monitor.performance_goal_met(), None);
        for i in 0..10 {
            issuer.heartbeat(i as f64 * 0.05); // 20 beats/s > 10 target
        }
        assert_eq!(monitor.performance_goal_met(), Some(true));
        // Slow down drastically: subsequent beats 2 s apart.
        for i in 0..64 {
            issuer.heartbeat(0.5 + (i + 1) as f64 * 2.0);
        }
        assert_eq!(monitor.performance_goal_met(), Some(false));
    }

    #[test]
    fn observation_snapshot_matches_individual_queries() {
        let registry = HeartbeatRegistry::new("app");
        let issuer = registry.issuer();
        let monitor = registry.monitor();
        issuer.set_goal(Goal::Performance(PerformanceGoal::heart_rate(10.0)));
        for i in 0..12 {
            issuer.heartbeat(i as f64 * 0.05);
            monitor.record_power_sample(i as f64 * 0.05, 40.0 + i as f64);
        }
        let obs = monitor.observation();
        assert_eq!(obs.stats, monitor.heart_rate());
        assert_eq!(obs.last_beat_timestamp, monitor.last_beat_timestamp());
        assert_eq!(obs.target_heart_rate, monitor.target_heart_rate());
        assert_eq!(obs.mean_power, monitor.mean_power());
        assert_eq!(obs.performance_goal_met, monitor.performance_goal_met());
    }

    #[test]
    fn power_samples_average_and_are_bounded() {
        let registry = HeartbeatRegistry::with_window("app", 4);
        let monitor = registry.monitor();
        assert!(monitor.mean_power().is_none());
        for i in 0..100 {
            monitor.record_power_sample(i as f64, 50.0 + (i % 2) as f64);
        }
        let mean = monitor.mean_power().unwrap();
        assert!(mean > 50.0 && mean < 51.0);
    }

    #[test]
    fn tagged_beats_expose_latency() {
        let registry = HeartbeatRegistry::new("app");
        let issuer = registry.issuer();
        let monitor = registry.monitor();
        issuer.tagged_heartbeat(0.0, "frame").unwrap();
        issuer.heartbeat(0.3);
        issuer.tagged_heartbeat(0.8, "frame").unwrap();
        let latency = monitor.tagged_latency(&Tag::new("frame")).unwrap();
        assert!((latency - 0.8).abs() < 1e-9);
    }

    #[test]
    fn distortion_reports_average() {
        let registry = HeartbeatRegistry::new("app");
        let issuer = registry.issuer();
        issuer.heartbeat_with_distortion(0.0, 0.1).unwrap();
        issuer.heartbeat_with_distortion(1.0, 0.3).unwrap();
        let monitor = registry.monitor();
        assert!((monitor.mean_distortion().unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn observe_fleet_matches_individual_snapshots_and_reuses_the_buffer() {
        let registries: Vec<HeartbeatRegistry> = (0..4)
            .map(|i| HeartbeatRegistry::new(format!("app-{i}")))
            .collect();
        for (i, registry) in registries.iter().enumerate() {
            let issuer = registry.issuer();
            issuer.set_goal(Goal::Performance(PerformanceGoal::heart_rate(
                5.0 + i as f64,
            )));
            for beat in 0..8 {
                issuer.heartbeat(beat as f64 * 0.1 * (i + 1) as f64);
            }
            registry.monitor().record_power_sample(1.0, 30.0 + i as f64);
        }
        let monitors: Vec<HeartbeatMonitor> =
            registries.iter().map(HeartbeatRegistry::monitor).collect();
        let mut fleet = Vec::new();
        observe_fleet(&monitors, &mut fleet);
        assert_eq!(fleet.len(), monitors.len());
        for (observation, monitor) in fleet.iter().zip(&monitors) {
            assert_eq!(*observation, monitor.observation());
        }
        // Refilling reuses the buffer: capacity does not grow again.
        let capacity = fleet.capacity();
        observe_fleet(&monitors, &mut fleet);
        assert_eq!(fleet.capacity(), capacity);
        assert_eq!(fleet.len(), monitors.len());
        observe_fleet(&[], &mut fleet);
        assert!(fleet.is_empty());
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HeartbeatRegistry>();
        assert_send_sync::<HeartbeatIssuer>();
        assert_send_sync::<HeartbeatMonitor>();
    }
}
