//! Property pins for the execution layer's determinism guarantee.
//!
//! For arbitrary inputs and thread counts, [`exec::ExecPool::map_indexed`]
//! must return **bit-identical** results, in index order, to the plain
//! sequential map — this is the contract that lets the coordinator and the
//! experiment harness treat the pool as a pure performance knob. The tasks
//! here mix float arithmetic (where any reassociation or reordering would
//! show up in the bits) with index-dependent control flow.

use exec::ExecPool;
use proptest::prelude::*;

/// A deliberately order-sensitive float fold: the sequential reference and
/// the pooled run must agree on every bit.
fn cell(inputs: &[f64], index: usize) -> f64 {
    let mut acc = inputs[index];
    // A few serial dependent operations so the result is sensitive to any
    // deviation in evaluation order or operand values.
    for (offset, &x) in inputs.iter().enumerate() {
        acc = acc * 0.75 + (x + offset as f64) * 0.25;
        if offset % 3 == index % 3 {
            acc = acc.sqrt().max(1e-3) * 1.5;
        }
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn map_indexed_is_bit_identical_to_sequential(
        inputs in proptest::collection::vec(0.001..1.0e6f64, 1..40),
        threads_a in 2usize..9,
        threads_b in 2usize..9,
    ) {
        let count = inputs.len();
        let sequential: Vec<u64> =
            (0..count).map(|i| cell(&inputs, i).to_bits()).collect();
        for threads in [1, threads_a, threads_b] {
            let pool = ExecPool::new(threads);
            // Several batches per pool: reuse must not perturb results.
            for _ in 0..3 {
                let pooled: Vec<u64> = pool
                    .map_indexed(count, |i| cell(&inputs, i).to_bits());
                prop_assert!(
                    pooled == sequential,
                    "pooled run diverged at {} threads over {} tasks",
                    threads,
                    count
                );
            }
        }
    }

    #[test]
    fn for_each_mut_matches_the_sequential_update(
        inputs in proptest::collection::vec(0.001..1.0e6f64, 1..40),
        threads in 2usize..9,
    ) {
        let mut sequential = inputs.clone();
        for (i, slot) in sequential.iter_mut().enumerate() {
            *slot += cell(&inputs, i);
        }
        let pool = ExecPool::new(threads);
        let mut pooled = inputs.clone();
        pool.for_each_mut(&mut pooled, |i, slot| *slot += cell(&inputs, i));
        let sequential: Vec<u64> = sequential.iter().map(|x| x.to_bits()).collect();
        let pooled: Vec<u64> = pooled.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(pooled, sequential);
    }
}
