//! # Deterministic execution layer
//!
//! Every parallel site in this workspace has the same shape: a batch of
//! *index-pure* tasks — task `i` is a function of `i` (and state only task
//! `i` touches) — whose results must come back in index order. The
//! experiment harness fans figure cells out this way, and the
//! multi-application coordinator shards its per-app observe/decide stages
//! the same way. Both used to spawn fresh `std::thread::scope` workers at
//! every call, paying the thread spawn/join cost once per decision quantum.
//!
//! [`ExecPool`] replaces those sites with one **persistent** pool: worker
//! threads are spawned once, parked on a condvar, and reused for every
//! subsequent batch, so the steady-state dispatch cost is a lock + wake
//! rather than N thread spawns. The pool is *deterministic by
//! construction*:
//!
//! * tasks are index-pure, so which worker runs a task (and in what order
//!   workers claim tasks) cannot change any task's result;
//! * results are written into the slot of their own index and handed back
//!   in index order ([`ExecPool::map_indexed`]), so the fan-in order is
//!   fixed whatever the interleaving;
//! * a pool with one thread (or a batch of one task) runs **inline** on the
//!   caller's thread, sequentially, in index order — and because of the two
//!   points above, the parallel path is bit-identical to that sequential
//!   path at every thread count (pinned by `tests/pool_props.rs`).
//!
//! The caller always participates in its own batch, so a batch makes
//! progress even if every worker is busy with someone else's batch (nested
//! dispatch degrades to inline execution rather than deadlocking).
//!
//! ```
//! use exec::ExecPool;
//!
//! let pool = ExecPool::new(4);
//! let squares = pool.map_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Disjoint in-place mutation: each slot is touched by exactly one task.
//! let mut totals = vec![1.0f64; 5];
//! pool.for_each_mut(&mut totals, |i, total| *total += i as f64);
//! assert_eq!(totals, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// The type-erased batch closure workers execute: call it with each claimed
/// index. Lifetime-erased to `'static` for the hand-off to persistent
/// threads; soundness comes from [`CompletionGuard`], which blocks the
/// dispatching call until every claimed index has finished (even on
/// unwind), so the borrow can never dangle while a worker holds it.
type Task = *const (dyn Fn(usize) + Sync);

/// One batch in flight: the erased task, how many indices it spans, how
/// many are still unfinished, and the first panic any task raised (workers
/// catch task panics and park the payload here; the dispatching caller
/// re-raises it once the batch has fully completed, mirroring the panic
/// propagation of the `std::thread::scope` join this pool replaced).
struct Batch {
    task: TaskPtr,
    count: usize,
    next: AtomicUsize,
    /// Consecutive indices one `next` claim hands out (≥ 1). Large batches
    /// of cheap tasks claim in chunks so the claim cost is amortised over
    /// `stride` tasks instead of paying one contended atomic per index;
    /// see [`ExecPool::set_claim_stride`].
    stride: usize,
    unfinished: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Send/Sync wrapper for the erased task pointer. Safe to share because the
/// pointee is `Sync` (bound enforced where the pointer is created) and is
/// kept alive for the whole batch by [`CompletionGuard`].
struct TaskPtr(Task);

// SAFETY: the pointee is `dyn Fn(usize) + Sync`, so shared calls from many
// threads are sound; liveness is guaranteed by the completion guard (the
// dispatching stack frame outlives every dereference).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// State shared between the pool handle and its worker threads.
struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a new batch (or shutdown).
    work: Condvar,
    /// Dispatchers park here waiting for their batch's last index.
    done: Condvar,
}

struct PoolState {
    /// The most recently published batch. Workers that wake late and find
    /// it exhausted simply claim nothing and go back to sleep.
    batch: Option<Arc<Batch>>,
    /// Bumped at every publish so sleeping workers can tell a new batch
    /// from the one they already drained.
    epoch: u64,
    shutdown: bool,
}

/// Decrements a batch's unfinished count when dropped — *after* the task
/// call, or during unwind if the task panicked — and wakes the dispatcher
/// on the last index. Keeping the decrement in a `Drop` impl is what makes
/// the completion latch reliable under panics.
struct IndexGuard<'a> {
    batch: &'a Batch,
    shared: &'a Shared,
}

impl Drop for IndexGuard<'_> {
    fn drop(&mut self) {
        if self.batch.unfinished.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last index: wake the dispatcher. Taking the lock orders this
            // wake after the dispatcher either saw zero or entered the wait.
            let _state = self.shared.state.lock().unwrap();
            self.shared.done.notify_all();
        }
    }
}

/// Blocks until the guarded batch has fully completed. Held by the
/// dispatching call across its own participation, so even if the caller's
/// task panics, the unwind waits for straggling workers before the borrowed
/// closure goes out of scope.
struct CompletionGuard<'a> {
    batch: &'a Arc<Batch>,
    shared: &'a Shared,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        while self.batch.unfinished.load(Ordering::Acquire) != 0 {
            state = self.shared.done.wait(state).unwrap();
        }
        // Drop the pool's reference so the batch (and its dangling task
        // pointer) does not linger once the borrow it points into ends —
        // unless a nested or concurrent dispatch has already published a
        // newer batch, which must not be clobbered.
        if state
            .batch
            .as_ref()
            .is_some_and(|current| Arc::ptr_eq(current, self.batch))
        {
            state.batch = None;
        }
    }
}

/// The callback type [`ExecPool::set_dispatch_observer`] accepts: invoked
/// with each pooled dispatch's wall-clock nanoseconds.
pub type DispatchObserver = Arc<dyn Fn(u64) + Send + Sync>;

/// A persistent, deterministic worker pool with ordered fan-out/fan-in.
///
/// See the [crate docs](crate) for the determinism argument. Construction
/// spawns `threads - 1` background workers (the dispatching caller is
/// always the remaining participant); a pool of one thread never spawns
/// anything and runs every batch inline. Dropping the pool joins all
/// workers.
pub struct ExecPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Index-claim granularity: 0 = auto (scale with batch size), 1 = one
    /// index per atomic claim (the original dispatch), n = fixed chunk of
    /// n. See [`Self::set_claim_stride`].
    claim_stride: AtomicUsize,
    /// Fast flag for [`Self::set_dispatch_observer`]: the dispatch hot path
    /// pays one relaxed load when no observer is attached.
    observed: AtomicBool,
    /// Telemetry callback invoked with each pooled dispatch's wall-clock
    /// nanoseconds (publish → last task finished). Purely passive — it
    /// observes timing, never task order or results — so this crate stays
    /// dependency-free while the telemetry layer hooks in from above.
    observer: Mutex<Option<DispatchObserver>>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ExecPool {
    /// A pool executing batches on `threads` threads in total — the caller
    /// plus `threads - 1` persistent workers. Clamped to at least 1; one
    /// thread means pure inline (sequential) execution.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                batch: None,
                epoch: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("exec-pool-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        ExecPool {
            shared,
            workers,
            threads,
            claim_stride: AtomicUsize::new(0),
            observed: AtomicBool::new(false),
            observer: Mutex::new(None),
        }
    }

    /// Sets the index-claim granularity: how many *consecutive* indices a
    /// thread takes per atomic claim when draining a batch. `0` (the
    /// default) picks automatically — chunks that scale with the batch so
    /// each thread makes on the order of a few dozen claims, however large
    /// the batch; `1` restores the original one-index-per-claim dispatch;
    /// any other value fixes the chunk size. Purely a performance knob:
    /// tasks are index-pure and results land in their own slots, so the
    /// claiming pattern cannot change any output (the property suite runs
    /// at several strides). Takes effect from the next dispatch.
    pub fn set_claim_stride(&self, stride: usize) {
        self.claim_stride.store(stride, Ordering::Release);
    }

    /// The configured index-claim granularity (see
    /// [`Self::set_claim_stride`]; 0 = auto).
    pub fn claim_stride(&self) -> usize {
        self.claim_stride.load(Ordering::Acquire)
    }

    /// The stride a batch of `count` tasks will actually claim at under
    /// the current setting — the auto heuristic targets ~32 claims per
    /// thread and caps chunks at 64 so no thread can strand a big tail of
    /// work behind one straggler.
    pub fn effective_claim_stride(&self, count: usize) -> usize {
        match self.claim_stride.load(Ordering::Acquire) {
            0 => (count / (self.threads * 32)).clamp(1, 64),
            stride => stride,
        }
    }

    /// Attaches (or, with `None`, detaches) a dispatch observer: a callback
    /// invoked with the wall-clock nanoseconds of every *pooled* dispatch
    /// (inline fast-path batches are not timed). The observer sees only
    /// durations — task order, results, and scheduling are unaffected — so
    /// telemetry layered on top cannot perturb the pool's determinism
    /// guarantee.
    pub fn set_dispatch_observer(&self, observer: Option<DispatchObserver>) {
        let enabled = observer.is_some();
        *self.observer.lock().unwrap() = observer;
        self.observed.store(enabled, Ordering::Release);
    }

    /// The host's available parallelism (1 when it cannot be queried) —
    /// the natural size for a process-wide pool.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Total threads batches run on (callers included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `count` index-pure tasks and returns their results in index
    /// order — the ordered fan-out/fan-in primitive. Bit-identical to
    /// `(0..count).map(task).collect()` at every thread count: see the
    /// [crate docs](crate) for the argument and `tests/pool_props.rs` for
    /// the property pin.
    pub fn map_indexed<T, F>(&self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);
        {
            let slots = SlotPtr(slots.as_mut_ptr());
            self.dispatch(count, &|index| {
                // SAFETY: the batch hands each index to exactly one task, so
                // this is the only write to slot `index`, disjoint from all
                // other slots; the Vec outlives the dispatch (the completion
                // guard blocks until every task finished).
                unsafe { *slots.slot(index) = Some(task(index)) };
            });
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("dispatch covers every index exactly once"))
            .collect()
    }

    /// Runs `task(i, &mut items[i])` for every item — disjoint in-place
    /// mutation with the same determinism guarantee as
    /// [`Self::map_indexed`]. This is the shape the coordinator's sharded
    /// stages use: each "item" is one shard's worth of exclusive `&mut`
    /// state.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], task: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let count = items.len();
        let items = SlotPtr(items.as_mut_ptr());
        self.dispatch(count, &|index| {
            // SAFETY: exactly one task per index, so this `&mut` is
            // exclusive; the slice outlives the dispatch (completion guard).
            task(index, unsafe { &mut *items.slot(index) });
        });
    }

    /// Fans `count` invocations of `task` out across the pool and returns
    /// once all have completed. Inline (sequential, index order) when the
    /// pool has one thread or the batch one task.
    fn dispatch(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() || count <= 1 {
            for index in 0..count {
                task(index);
            }
            return;
        }
        // Telemetry: one relaxed flag load when disabled; clone the
        // callback out of the lock so the dispatch itself runs unlocked.
        let observer = if self.observed.load(Ordering::Acquire) {
            self.observer.lock().unwrap().clone()
        } else {
            None
        };
        let started = observer.as_ref().map(|_| std::time::Instant::now());
        // Erase the lifetime for the hand-off to the persistent threads.
        // SAFETY: the completion guard below blocks this frame (even on
        // unwind) until no worker can touch the reference again.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        let task: Task = task;
        let batch = Arc::new(Batch {
            task: TaskPtr(task),
            count,
            next: AtomicUsize::new(0),
            stride: self.effective_claim_stride(count),
            unfinished: AtomicUsize::new(count),
            panic: Mutex::new(None),
        });
        {
            let mut state = self.shared.state.lock().unwrap();
            state.batch = Some(Arc::clone(&batch));
            state.epoch += 1;
            self.shared.work.notify_all();
        }
        let guard = CompletionGuard {
            batch: &batch,
            shared: &self.shared,
        };
        // The caller participates in its own batch: progress is guaranteed
        // even if every worker is busy elsewhere (e.g. nested dispatch).
        run_batch(&batch, &self.shared);
        drop(guard); // blocks until stragglers finish
        // Re-raise the first task panic on the dispatching thread, with its
        // original payload — the same observable behaviour as a panicking
        // `std::thread::scope` child at join.
        let panicked = batch.panic.lock().unwrap().take();
        if let (Some(observer), Some(started)) = (observer, started) {
            observer(started.elapsed().as_nanos() as u64);
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Claims and runs indices of `batch` until none remain. Task panics are
/// caught (first payload stored for the dispatcher to re-raise), so a
/// panicking task neither kills a persistent worker nor deadlocks the
/// completion latch.
fn run_batch(batch: &Batch, shared: &Shared) {
    let stride = batch.stride.max(1);
    loop {
        let start = batch.next.fetch_add(stride, Ordering::Relaxed);
        if start >= batch.count {
            return;
        }
        // The latch stays per-index: `unfinished` counts indices, not
        // claims, so a task panic mid-chunk releases exactly the indices
        // that ran and the completion guard still sees the rest drain.
        for index in start..(start + stride).min(batch.count) {
            let guard = IndexGuard { batch, shared };
            // SAFETY: the dispatching frame keeps the pointee alive until
            // the batch completes; `unfinished` cannot hit zero before this
            // call returns (this index's decrement happens in `guard`'s
            // drop).
            let task = unsafe { &*batch.task.0 };
            // AssertUnwindSafe: the payload is re-raised by the dispatcher,
            // so any broken invariants behind the shared reference
            // propagate as the panic they are — exactly as with an
            // unwinding scoped thread.
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                task(index);
            })) {
                let mut slot = batch.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            drop(guard);
        }
    }
}

/// The persistent worker body: sleep until a new batch (or shutdown) is
/// published, help drain it, go back to sleep.
fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let batch = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    if let Some(batch) = state.batch.clone() {
                        break batch;
                    }
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        run_batch(&batch, shared);
    }
}

/// Send/Sync raw-pointer wrapper for result slots / mutable items. Safety
/// rests on the dispatch contract: one task per index, disjoint access,
/// allocation outlives the batch.
struct SlotPtr<T>(*mut T);

impl<T> SlotPtr<T> {
    /// Pointer to slot `index`. A method (rather than direct field access)
    /// so closures capture the whole `Sync` wrapper, not the bare pointer.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds of the wrapped allocation.
    unsafe fn slot(&self, index: usize) -> *mut T {
        self.0.add(index)
    }
}

// SAFETY: each index is claimed by exactly one task, so cross-thread access
// to the pointee is exclusive per element; `T: Send` is enforced at the two
// call sites' public bounds.
unsafe impl<T: Send> Send for SlotPtr<T> {}
unsafe impl<T: Send> Sync for SlotPtr<T> {}

/// The process-wide shared pool, sized to [`ExecPool::default_threads`] on
/// first use and reused for every subsequent batch — the "sized once,
/// reused across every quantum" pool the experiment harness fans its
/// figure cells out on (via [`ExecPool::map_indexed`]).
pub fn global_pool() -> &'static ExecPool {
    global_pool_arc()
}

/// [`global_pool`] as a cloneable [`Arc`] handle, for consumers whose APIs
/// take owned pool handles (e.g. attaching the shared pool to many
/// coordinators instead of spawning one idle private pool each).
pub fn global_pool_arc() -> &'static Arc<ExecPool> {
    static POOL: OnceLock<Arc<ExecPool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(ExecPool::new(ExecPool::default_threads())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_index_order() {
        for threads in [1, 2, 4, 7] {
            let pool = ExecPool::new(threads);
            for count in [0usize, 1, 2, 3, 16, 257] {
                let got = pool.map_indexed(count, |i| i * 3 + 1);
                let want: Vec<usize> = (0..count).map(|i| i * 3 + 1).collect();
                assert_eq!(got, want, "threads {threads}, count {count}");
            }
        }
    }

    #[test]
    fn pool_is_reused_across_many_batches() {
        let pool = ExecPool::new(3);
        assert_eq!(pool.threads(), 3);
        for round in 0..200 {
            let out = pool.map_indexed(9, move |i| i + round);
            assert_eq!(out, (round..round + 9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_mut_touches_every_item_exactly_once() {
        let pool = ExecPool::new(4);
        let mut items = vec![0u64; 100];
        pool.for_each_mut(&mut items, |i, item| *item += i as u64 + 1);
        assert_eq!(
            items,
            (0..100).map(|i| i as u64 + 1).collect::<Vec<_>>()
        );
        // A second pass over the same buffer: the pool and the buffer are
        // both reusable.
        pool.for_each_mut(&mut items, |_, item| *item *= 2);
        assert_eq!(
            items,
            (0..100).map(|i| (i as u64 + 1) * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nested_dispatch_degrades_gracefully() {
        // A batch whose tasks dispatch their own sub-batches on the same
        // pool: the inner callers drain their own batches, so this cannot
        // deadlock and all results stay index-pure.
        let pool = ExecPool::new(4);
        let got = pool.map_indexed(6, |i| {
            let inner = pool.map_indexed(5, move |j| i * 10 + j);
            inner.into_iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..6)
            .map(|i| (0..5).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ExecPool::new(1);
        assert_eq!(pool.threads(), 1);
        // Inline execution can borrow thread-local-ish state mutably via a
        // cell without any synchronisation surprises.
        let order = std::sync::Mutex::new(Vec::new());
        pool.for_each_mut(&mut [0u8; 7][..], |i, _| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ExecPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn results_carry_non_copy_types() {
        let pool = ExecPool::new(4);
        let got = pool.map_indexed(10, |i| format!("cell-{i}"));
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s, &format!("cell-{i}"));
        }
    }

    #[test]
    fn global_pool_is_shared_and_stable() {
        let a = global_pool() as *const ExecPool;
        let b = global_pool() as *const ExecPool;
        assert_eq!(a, b);
        assert!(global_pool().threads() >= 1);
        assert_eq!(global_pool().map_indexed(4, |i| i * i), vec![0, 1, 4, 9]);
    }

    #[test]
    fn task_panics_propagate_to_the_dispatcher_with_their_payload() {
        let pool = ExecPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_indexed(16, |i| {
                if i == 7 {
                    panic!("task 7 exploded");
                }
                i
            })
        }));
        let payload = result.expect_err("the task panic must reach the dispatcher");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("original payload preserved");
        assert_eq!(message, "task 7 exploded");
        // The pool survives (no worker died, the latch completed): the next
        // batch runs normally.
        assert_eq!(pool.map_indexed(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn debug_formats() {
        assert!(format!("{:?}", ExecPool::new(2)).contains("ExecPool"));
    }

    #[test]
    fn claim_stride_never_changes_results() {
        // The claiming pattern is invisible to callers: every stride —
        // legacy single-index, odd fixed chunks, chunks larger than the
        // batch, and auto — produces identical index-pure output.
        for threads in [2, 4, 7] {
            let pool = ExecPool::new(threads);
            for stride in [0usize, 1, 2, 7, 64, 1000] {
                pool.set_claim_stride(stride);
                assert_eq!(pool.claim_stride(), stride);
                for count in [2usize, 3, 16, 257, 1024] {
                    let got = pool.map_indexed(count, |i| i * 3 + 1);
                    let want: Vec<usize> = (0..count).map(|i| i * 3 + 1).collect();
                    assert_eq!(got, want, "threads {threads}, stride {stride}, count {count}");
                }
            }
        }
    }

    #[test]
    fn effective_claim_stride_scales_with_the_batch() {
        let pool = ExecPool::new(4);
        // Auto: small batches claim one at a time, huge batches chunk up,
        // capped so the tail cannot hide behind one straggler thread.
        assert_eq!(pool.effective_claim_stride(16), 1);
        assert_eq!(pool.effective_claim_stride(1 << 20), 64);
        let mid = pool.effective_claim_stride(10_000);
        assert!((1..=64).contains(&mid), "mid-size stride {mid}");
        // Fixed: the knob wins verbatim.
        pool.set_claim_stride(7);
        assert_eq!(pool.effective_claim_stride(16), 7);
        assert_eq!(pool.effective_claim_stride(1 << 20), 7);
        pool.set_claim_stride(0);
        assert_eq!(pool.effective_claim_stride(16), 1);
    }

    #[test]
    fn a_panic_mid_chunk_still_drains_the_batch() {
        // With a wide stride the panicking index shares a claim with its
        // neighbours; the per-index latch must still release every index so
        // the dispatcher unblocks and re-raises the payload.
        let pool = ExecPool::new(3);
        pool.set_claim_stride(32);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_indexed(100, |i| {
                if i == 40 {
                    panic!("chunked task exploded");
                }
                i
            })
        }));
        assert!(result.is_err(), "the panic must reach the dispatcher");
        // The pool survives and later batches are unaffected.
        assert_eq!(pool.map_indexed(3, |i| i + 1), vec![1, 2, 3]);
    }
}
