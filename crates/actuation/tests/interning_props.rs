//! Property tests: configuration interning must round-trip for arbitrary
//! spaces — `ConfigId` → settings → the same `ConfigId` — and the arena's
//! precomputed effects and neighbour enumeration must agree exactly with
//! the unmemoized `ConfigurationSpace` queries they replace.

use actuation::{
    ActuatorSpec, Axis, ConfigId, Configuration, ConfigurationSpace, SettingSpec,
};
use proptest::prelude::*;

/// Builds a deterministic space from a shape vector: one actuator per
/// entry, that many settings, with effects derived from the indices.
fn space_from_shape(radices: &[usize]) -> ConfigurationSpace {
    let specs = radices
        .iter()
        .enumerate()
        .map(|(actuator, &settings)| {
            let mut builder = ActuatorSpec::builder(format!("actuator-{actuator}"));
            for setting in 0..settings {
                builder = builder.setting(
                    SettingSpec::new(format!("s{setting}"))
                        .effect(Axis::Performance, 0.5 + setting as f64 * 0.7)
                        .effect(Axis::Power, 0.3 + setting as f64 * (actuator + 1) as f64 * 0.4),
                );
            }
            builder
                .nominal(settings / 2)
                .build()
                .expect("generated spec is valid")
        })
        .collect();
    ConfigurationSpace::new(specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interning_round_trips_and_matches_the_space(
        radices in proptest::collection::vec(1usize..5, 1..5),
    ) {
        let space = space_from_shape(&radices);
        let table = space.table();
        prop_assert_eq!(table.len(), space.cardinality());
        prop_assert_eq!(table.arity(), space.arity());
        prop_assert_eq!(table.config_of(table.nominal()), space.nominal());

        for (index, config) in space.iter().enumerate() {
            let id = ConfigId(index as u32);

            // ConfigId → settings → the same ConfigId.
            let materialised = table.config_of(id);
            prop_assert_eq!(&materialised, &config);
            prop_assert_eq!(table.id_of(&materialised), Some(id));
            for pos in 0..config.len() {
                prop_assert_eq!(Some(table.setting(id, pos)), config.setting(pos));
            }

            // Precomputed declared effects are bit-identical to the
            // space's on-the-fly prediction.
            let declared = table.declared_effect(id);
            let predicted = space.predicted_effect(&config).expect("valid configuration");
            prop_assert_eq!(declared.performance.to_bits(), predicted.performance.to_bits());
            prop_assert_eq!(declared.power.to_bits(), predicted.power.to_bits());
            prop_assert_eq!(declared.accuracy.to_bits(), predicted.accuracy.to_bits());

            // Neighbour arithmetic enumerates exactly the space's
            // neighbour list, in the same order.
            let neighbors = space.neighbors(&config);
            prop_assert_eq!(table.neighbor_count(), neighbors.len());
            for (k, neighbor) in neighbors.iter().enumerate() {
                prop_assert_eq!(&table.config_of(table.neighbor(id, k)), neighbor);
            }
        }

        // Arity mismatches and out-of-range settings do not intern.
        let mut too_long: Vec<usize> = vec![0; radices.len() + 1];
        too_long[radices.len()] = 0;
        prop_assert_eq!(table.id_of(&Configuration::new(too_long)), None);
        let mut out_of_range: Vec<usize> = vec![0; radices.len()];
        out_of_range[0] = radices[0];
        prop_assert_eq!(table.id_of(&Configuration::new(out_of_range)), None);

        // The sorted indices cover every id and are ordered by their keys.
        let by_speedup = table.by_declared_speedup();
        prop_assert_eq!(by_speedup.len(), table.len());
        for pair in by_speedup.windows(2) {
            prop_assert!(
                table.declared_effect(pair[0]).performance
                    <= table.declared_effect(pair[1]).performance
            );
        }
        let by_power = table.by_declared_power();
        for pair in by_power.windows(2) {
            prop_assert!(table.declared_effect(pair[0]).power <= table.declared_effect(pair[1]).power);
        }
    }
}
