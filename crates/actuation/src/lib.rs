//! # Actuation: the SEEC action-specification interface
//!
//! In the SEEC model (DAC 2012 §3.2), applications provide *goals* while
//! every other component of the system — system software, the operating
//! system, and the Angstrom hardware itself — provides *actions* that change
//! system behaviour. Actions are described by the **actuators** that
//! implement them. An actuator is a data object with:
//!
//! * a name,
//! * a list of allowable settings,
//! * a function that changes the setting,
//! * the set of axes the actuator affects (performance, power, accuracy),
//! * the effect of each setting on each axis, expressed as a multiplier over
//!   a *nominal* setting whose effect is 1.0 on every axis,
//! * a delay between applying a setting and its effects becoming observable,
//! * a scope: whether the actuator affects only the registering application
//!   or the whole system.
//!
//! The [`Actuator`] trait captures the "function that changes the setting";
//! [`ActuatorSpec`] captures everything else. A [`ConfigurationSpace`]
//! combines several actuators into a joint search space the decision engine
//! can optimise over.
//!
//! ```
//! use actuation::{Actuator, ActuatorSpec, Axis, Scope, SettingSpec, TableActuator};
//!
//! // A three-point DVFS knob: half speed, nominal, turbo.
//! let spec = ActuatorSpec::builder("dvfs")
//!     .scope(Scope::Global)
//!     .delay(0.001)
//!     .setting(SettingSpec::new("0.8GHz").effect(Axis::Performance, 0.5).effect(Axis::Power, 0.4))
//!     .setting(SettingSpec::new("1.6GHz")) // nominal: all effects 1.0
//!     .setting(SettingSpec::new("2.4GHz").effect(Axis::Performance, 1.4).effect(Axis::Power, 1.9))
//!     .nominal(1)
//!     .build()
//!     .expect("spec is well formed");
//!
//! let mut dvfs = TableActuator::new(spec);
//! dvfs.apply(2).expect("setting exists");
//! assert_eq!(dvfs.current(), 2);
//! assert!(dvfs.spec().setting(2).unwrap().effect_on(Axis::Power) > 1.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod actuator;
mod error;
mod space;
mod spec;

pub use actuator::{Actuator, FnActuator, TableActuator};
pub use error::ActuationError;
pub use space::{ConfigId, ConfigTable, Configuration, ConfigurationSpace, PredictedEffect};
pub use spec::{ActuatorSpec, ActuatorSpecBuilder, Axis, Scope, SettingIndex, SettingSpec};
