use crate::error::ActuationError;
use crate::spec::{ActuatorSpec, SettingIndex};

/// An actuator: a described knob plus the function that changes it.
///
/// Implementations wrap a platform resource (core allocation, clock speed,
/// cache configuration, routing tables, ...) and apply setting changes to it.
/// The SEEC runtime only interacts with actuators through this trait, which
/// keeps the decision engine independent of any particular substrate.
pub trait Actuator: Send {
    /// The static description of this actuator.
    fn spec(&self) -> &ActuatorSpec;

    /// The currently applied setting index.
    fn current(&self) -> SettingIndex;

    /// Applies the setting at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`ActuationError::UnknownSetting`] if `index` is out of range,
    /// or [`ActuationError::PlatformRejected`] if the platform cannot apply
    /// the change.
    fn apply(&mut self, index: SettingIndex) -> Result<(), ActuationError>;

    /// Convenience: applies the nominal setting.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Actuator::apply`].
    fn reset_to_nominal(&mut self) -> Result<(), ActuationError> {
        let nominal = self.spec().nominal();
        self.apply(nominal)
    }
}

/// A self-contained actuator that simply remembers its current setting.
///
/// Useful for tests, for modelling application-level knobs whose effect is
/// fully captured by the declared multipliers, and as the building block of
/// substrate actuators that apply the setting elsewhere before recording it.
#[derive(Debug, Clone)]
pub struct TableActuator {
    spec: ActuatorSpec,
    current: SettingIndex,
}

impl TableActuator {
    /// Creates the actuator positioned at the spec's nominal setting.
    pub fn new(spec: ActuatorSpec) -> Self {
        let current = spec.nominal();
        TableActuator { spec, current }
    }
}

impl Actuator for TableActuator {
    fn spec(&self) -> &ActuatorSpec {
        &self.spec
    }

    fn current(&self) -> SettingIndex {
        self.current
    }

    fn apply(&mut self, index: SettingIndex) -> Result<(), ActuationError> {
        if index >= self.spec.len() {
            return Err(ActuationError::UnknownSetting {
                actuator: self.spec.name().to_string(),
                requested: index,
                available: self.spec.len(),
            });
        }
        self.current = index;
        Ok(())
    }
}

/// An actuator whose setting changes are forwarded to a closure.
///
/// The closure receives the new setting index and returns `Err(reason)` if
/// the platform rejects the change. This is the usual way substrates expose
/// their knobs: the closure captures a handle to the platform state.
pub struct FnActuator<F>
where
    F: FnMut(SettingIndex) -> Result<(), String> + Send,
{
    spec: ActuatorSpec,
    current: SettingIndex,
    apply_fn: F,
}

impl<F> FnActuator<F>
where
    F: FnMut(SettingIndex) -> Result<(), String> + Send,
{
    /// Creates the actuator positioned at the spec's nominal setting.
    ///
    /// The closure is *not* invoked for the initial nominal position; the
    /// platform is assumed to start in its nominal configuration.
    pub fn new(spec: ActuatorSpec, apply_fn: F) -> Self {
        let current = spec.nominal();
        FnActuator {
            spec,
            current,
            apply_fn,
        }
    }
}

impl<F> std::fmt::Debug for FnActuator<F>
where
    F: FnMut(SettingIndex) -> Result<(), String> + Send,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnActuator")
            .field("spec", &self.spec)
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl<F> Actuator for FnActuator<F>
where
    F: FnMut(SettingIndex) -> Result<(), String> + Send,
{
    fn spec(&self) -> &ActuatorSpec {
        &self.spec
    }

    fn current(&self) -> SettingIndex {
        self.current
    }

    fn apply(&mut self, index: SettingIndex) -> Result<(), ActuationError> {
        if index >= self.spec.len() {
            return Err(ActuationError::UnknownSetting {
                actuator: self.spec.name().to_string(),
                requested: index,
                available: self.spec.len(),
            });
        }
        (self.apply_fn)(index).map_err(|reason| ActuationError::PlatformRejected {
            actuator: self.spec.name().to_string(),
            reason,
        })?;
        self.current = index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, SettingSpec};

    fn spec() -> ActuatorSpec {
        ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1").effect(Axis::Performance, 0.3))
            .setting(SettingSpec::new("2"))
            .setting(SettingSpec::new("4").effect(Axis::Performance, 1.8))
            .nominal(1)
            .build()
            .unwrap()
    }

    #[test]
    fn table_actuator_starts_at_nominal_and_applies() {
        let mut act = TableActuator::new(spec());
        assert_eq!(act.current(), 1);
        act.apply(2).unwrap();
        assert_eq!(act.current(), 2);
        act.reset_to_nominal().unwrap();
        assert_eq!(act.current(), 1);
    }

    #[test]
    fn table_actuator_rejects_out_of_range() {
        let mut act = TableActuator::new(spec());
        let err = act.apply(5).unwrap_err();
        assert!(matches!(err, ActuationError::UnknownSetting { .. }));
        assert_eq!(act.current(), 1, "failed apply leaves setting unchanged");
    }

    #[test]
    fn fn_actuator_forwards_to_platform() {
        let applied = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&applied);
        let mut act = FnActuator::new(spec(), move |idx| {
            sink.lock().unwrap().push(idx);
            Ok(())
        });
        act.apply(0).unwrap();
        act.apply(2).unwrap();
        assert_eq!(*applied.lock().unwrap(), vec![0, 2]);
        assert_eq!(act.current(), 2);
    }

    #[test]
    fn fn_actuator_surfaces_platform_rejection() {
        let mut act = FnActuator::new(spec(), |idx| {
            if idx == 0 {
                Err("thermal limit".to_string())
            } else {
                Ok(())
            }
        });
        let err = act.apply(0).unwrap_err();
        assert!(matches!(err, ActuationError::PlatformRejected { .. }));
        assert_eq!(act.current(), 1, "rejected apply leaves setting unchanged");
        assert!(format!("{act:?}").contains("FnActuator"));
    }
}
