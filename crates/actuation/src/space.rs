use serde::{Deserialize, Serialize};

use crate::error::ActuationError;
use crate::spec::{ActuatorSpec, Axis, SettingIndex};

/// A joint configuration: one setting index per actuator, in actuator order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Configuration(Vec<SettingIndex>);

impl Configuration {
    /// Creates a configuration from per-actuator setting indices.
    pub fn new(settings: Vec<SettingIndex>) -> Self {
        Configuration(settings)
    }

    /// The setting chosen for the actuator at `position`.
    pub fn setting(&self, position: usize) -> Option<SettingIndex> {
        self.0.get(position).copied()
    }

    /// Per-actuator setting indices.
    pub fn settings(&self) -> &[SettingIndex] {
        &self.0
    }

    /// Number of actuators this configuration covers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the configuration covers no actuators.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<SettingIndex>> for Configuration {
    fn from(settings: Vec<SettingIndex>) -> Self {
        Configuration::new(settings)
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

/// The predicted joint effect of a configuration, as multipliers over the
/// all-nominal configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedEffect {
    /// Predicted performance multiplier (speedup).
    pub performance: f64,
    /// Predicted power multiplier.
    pub power: f64,
    /// Predicted accuracy multiplier.
    pub accuracy: f64,
}

impl PredictedEffect {
    /// The all-nominal effect (1.0 on every axis).
    pub fn nominal() -> Self {
        PredictedEffect {
            performance: 1.0,
            power: 1.0,
            accuracy: 1.0,
        }
    }

    /// Predicted performance-per-watt multiplier.
    pub fn efficiency(&self) -> f64 {
        if self.power > 0.0 {
            self.performance / self.power
        } else {
            f64::INFINITY
        }
    }

    /// Multiplier along a particular axis.
    pub fn on(&self, axis: Axis) -> f64 {
        match axis {
            Axis::Performance => self.performance,
            Axis::Power => self.power,
            Axis::Accuracy => self.accuracy,
        }
    }
}

impl Default for PredictedEffect {
    fn default() -> Self {
        PredictedEffect::nominal()
    }
}

/// The joint search space spanned by a set of actuator specifications.
///
/// The space assumes effects compose multiplicatively across actuators —
/// the same first-order model SEEC uses to seed its controllers before any
/// runtime observation corrects it (DAC 2012 §3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationSpace {
    specs: Vec<ActuatorSpec>,
}

impl ConfigurationSpace {
    /// Creates a space over the given actuator specifications.
    pub fn new(specs: Vec<ActuatorSpec>) -> Self {
        ConfigurationSpace { specs }
    }

    /// The actuator specifications, in configuration order.
    pub fn specs(&self) -> &[ActuatorSpec] {
        &self.specs
    }

    /// Number of actuators in the space.
    pub fn arity(&self) -> usize {
        self.specs.len()
    }

    /// Total number of joint configurations.
    pub fn cardinality(&self) -> usize {
        if self.specs.is_empty() {
            return 0;
        }
        self.specs.iter().map(ActuatorSpec::len).product()
    }

    /// The all-nominal configuration.
    pub fn nominal(&self) -> Configuration {
        Configuration::new(self.specs.iter().map(ActuatorSpec::nominal).collect())
    }

    /// Checks that `config` addresses every actuator with a valid setting.
    ///
    /// # Errors
    ///
    /// Returns [`ActuationError::UnknownSetting`] for the first actuator whose
    /// setting index is out of range, or [`ActuationError::InvalidSpec`] when
    /// the configuration arity does not match the space.
    pub fn validate(&self, config: &Configuration) -> Result<(), ActuationError> {
        if config.len() != self.specs.len() {
            return Err(ActuationError::InvalidSpec(format!(
                "configuration has {} entries but the space has {} actuators",
                config.len(),
                self.specs.len()
            )));
        }
        for (spec, &setting) in self.specs.iter().zip(config.settings()) {
            if setting >= spec.len() {
                return Err(ActuationError::UnknownSetting {
                    actuator: spec.name().to_string(),
                    requested: setting,
                    available: spec.len(),
                });
            }
        }
        Ok(())
    }

    /// Predicted joint effect of `config`, multiplying per-actuator effects.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`Self::validate`].
    pub fn predicted_effect(
        &self,
        config: &Configuration,
    ) -> Result<PredictedEffect, ActuationError> {
        self.validate(config)?;
        let mut effect = PredictedEffect::nominal();
        for (spec, &setting) in self.specs.iter().zip(config.settings()) {
            effect.performance *= spec.predicted_effect(setting, Axis::Performance)?;
            effect.power *= spec.predicted_effect(setting, Axis::Power)?;
            effect.accuracy *= spec.predicted_effect(setting, Axis::Accuracy)?;
        }
        Ok(effect)
    }

    /// Iterates over every joint configuration in lexicographic order.
    pub fn iter(&self) -> ConfigurationIter<'_> {
        ConfigurationIter {
            space: self,
            next: if self.cardinality() == 0 {
                None
            } else {
                Some(vec![0; self.specs.len()])
            },
        }
    }

    /// Builds the interned-configuration arena for this space: dense
    /// [`ConfigId`] handles, precomputed declared effects, and
    /// speedup-/power-sorted indices. See [`ConfigTable`].
    pub fn table(&self) -> ConfigTable {
        ConfigTable::new(self)
    }

    /// Configurations that differ from `config` in exactly one actuator.
    pub fn neighbors(&self, config: &Configuration) -> Vec<Configuration> {
        let mut out = Vec::new();
        for (pos, spec) in self.specs.iter().enumerate() {
            let current = config.setting(pos).unwrap_or(spec.nominal());
            for candidate in 0..spec.len() {
                if candidate != current {
                    let mut settings = config.settings().to_vec();
                    settings[pos] = candidate;
                    out.push(Configuration::new(settings));
                }
            }
        }
        out
    }
}

impl FromIterator<ActuatorSpec> for ConfigurationSpace {
    fn from_iter<I: IntoIterator<Item = ActuatorSpec>>(iter: I) -> Self {
        ConfigurationSpace::new(iter.into_iter().collect())
    }
}

/// Iterator over every configuration of a [`ConfigurationSpace`].
#[derive(Debug)]
pub struct ConfigurationIter<'a> {
    space: &'a ConfigurationSpace,
    next: Option<Vec<SettingIndex>>,
}

impl Iterator for ConfigurationIter<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.next.clone()?;
        // Advance like an odometer, most-significant actuator first.
        let mut following = current.clone();
        let mut pos = following.len();
        loop {
            if pos == 0 {
                self.next = None;
                break;
            }
            pos -= 1;
            following[pos] += 1;
            if following[pos] < self.space.specs[pos].len() {
                self.next = Some(following);
                break;
            }
            following[pos] = 0;
        }
        Some(Configuration::new(current))
    }
}

/// A small, copyable handle to one interned joint configuration.
///
/// Ids are dense (`0..cardinality`) and ordered exactly like
/// [`ConfigurationSpace::iter`] (lexicographic, last actuator fastest), so
/// iterating ids in order visits the same configurations in the same order
/// as iterating the space — without allocating a settings vector per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConfigId(pub u32);

impl ConfigId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ConfigId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The interned-configuration arena of a [`ConfigurationSpace`].
///
/// Instead of materialising a `Vec<SettingIndex>` per joint configuration,
/// the table identifies each configuration by a mixed-radix [`ConfigId`] and
/// precomputes everything the decision loop needs per id: the declared joint
/// effect and indices sorted by declared speedup and declared power. Setting
/// decode/encode is O(arity) integer arithmetic; no configuration is stored.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigTable {
    /// Settings per actuator, in configuration order.
    radices: Vec<usize>,
    /// Mixed-radix strides: `strides[last] == 1`, matching the iteration
    /// order of [`ConfigurationSpace::iter`].
    strides: Vec<usize>,
    nominal: ConfigId,
    /// Declared joint effect of every id, bit-identical to
    /// [`ConfigurationSpace::predicted_effect`].
    effects: Vec<PredictedEffect>,
    /// Ids sorted ascending by (declared speedup, id).
    by_speedup: Vec<ConfigId>,
    /// Ids sorted ascending by (declared power, id).
    by_power: Vec<ConfigId>,
}

impl ConfigTable {
    fn new(space: &ConfigurationSpace) -> Self {
        let radices: Vec<usize> = space.specs().iter().map(ActuatorSpec::len).collect();
        let mut strides = vec![1usize; radices.len()];
        for pos in (0..radices.len().saturating_sub(1)).rev() {
            strides[pos] = strides[pos + 1] * radices[pos + 1];
        }
        let cardinality = space.cardinality();
        assert!(
            cardinality <= u32::MAX as usize,
            "configuration space too large to intern ({cardinality} configurations)"
        );
        let mut effects = Vec::with_capacity(cardinality);
        let mut settings = vec![0usize; radices.len()];
        for id in 0..cardinality {
            decode_into(id, &radices, &strides, &mut settings);
            let mut effect = PredictedEffect::nominal();
            for (spec, &setting) in space.specs().iter().zip(settings.iter()) {
                // Settings decoded from a valid id are always in range, so
                // the per-axis lookups cannot fail; the multiplication order
                // matches `ConfigurationSpace::predicted_effect` exactly.
                effect.performance *= spec
                    .predicted_effect(setting, Axis::Performance)
                    .expect("decoded setting in range");
                effect.power *= spec
                    .predicted_effect(setting, Axis::Power)
                    .expect("decoded setting in range");
                effect.accuracy *= spec
                    .predicted_effect(setting, Axis::Accuracy)
                    .expect("decoded setting in range");
            }
            effects.push(effect);
        }
        let mut by_speedup: Vec<ConfigId> = (0..cardinality as u32).map(ConfigId).collect();
        by_speedup.sort_by(|a, b| {
            effects[a.index()]
                .performance
                .partial_cmp(&effects[b.index()].performance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        let mut by_power = by_speedup.clone();
        by_power.sort_by(|a, b| {
            effects[a.index()]
                .power
                .partial_cmp(&effects[b.index()].power)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        let nominal = if cardinality == 0 {
            ConfigId(0)
        } else {
            let nominal_settings: Vec<usize> =
                space.specs().iter().map(ActuatorSpec::nominal).collect();
            ConfigId(encode(&nominal_settings, &strides) as u32)
        };
        ConfigTable {
            radices,
            strides,
            nominal,
            effects,
            by_speedup,
            by_power,
        }
    }

    /// Number of interned configurations (the space's cardinality).
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// `true` when the space has no configurations.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }

    /// Number of actuators per configuration.
    pub fn arity(&self) -> usize {
        self.radices.len()
    }

    /// The id of the all-nominal configuration.
    pub fn nominal(&self) -> ConfigId {
        self.nominal
    }

    /// The setting chosen for actuator `pos` by configuration `id`.
    #[inline]
    pub fn setting(&self, id: ConfigId, pos: usize) -> SettingIndex {
        (id.index() / self.strides[pos]) % self.radices[pos]
    }

    /// Decodes `id` into `out` (cleared and refilled), without allocating
    /// when `out` already has capacity.
    pub fn write_settings(&self, id: ConfigId, out: &mut Vec<SettingIndex>) {
        out.clear();
        for pos in 0..self.radices.len() {
            out.push(self.setting(id, pos));
        }
    }

    /// Materialises `id` as an owned [`Configuration`] (boundary use only;
    /// the hot path passes ids).
    pub fn config_of(&self, id: ConfigId) -> Configuration {
        let mut settings = Vec::with_capacity(self.radices.len());
        self.write_settings(id, &mut settings);
        Configuration::new(settings)
    }

    /// Interns `config`, returning its id — or `None` if the configuration's
    /// arity or any setting is out of range for the space.
    pub fn id_of(&self, config: &Configuration) -> Option<ConfigId> {
        if config.len() != self.radices.len() || self.effects.is_empty() {
            return None;
        }
        let mut id = 0usize;
        for (pos, &setting) in config.settings().iter().enumerate() {
            if setting >= self.radices[pos] {
                return None;
            }
            id += setting * self.strides[pos];
        }
        Some(ConfigId(id as u32))
    }

    /// The declared joint effect of `id`, bit-identical to
    /// [`ConfigurationSpace::predicted_effect`] on the materialised
    /// configuration.
    #[inline]
    pub fn declared_effect(&self, id: ConfigId) -> PredictedEffect {
        self.effects[id.index()]
    }

    /// Ids sorted ascending by declared speedup (ties by id).
    pub fn by_declared_speedup(&self) -> &[ConfigId] {
        &self.by_speedup
    }

    /// Ids sorted ascending by declared power (ties by id).
    pub fn by_declared_power(&self) -> &[ConfigId] {
        &self.by_power
    }

    /// The declared power multiplier of the cheapest configuration (the
    /// floor any power envelope must admit). 1.0 for an empty table.
    pub fn min_declared_power(&self) -> f64 {
        self.by_power
            .first()
            .map_or(1.0, |&id| self.effects[id.index()].power)
    }

    /// The declared power multiplier of the most expensive configuration —
    /// the per-table power ceiling an application can reach flat out. 1.0
    /// for an empty table.
    pub fn max_declared_power(&self) -> f64 {
        self.by_power
            .last()
            .map_or(1.0, |&id| self.effects[id.index()].power)
    }

    /// Number of configurations whose declared power multiplier is at most
    /// `cap` — the length of the admissible prefix of
    /// [`Self::by_declared_power`] under a power envelope.
    pub fn count_within_declared_power(&self, cap: f64) -> usize {
        self.by_power
            .partition_point(|&id| self.effects[id.index()].power <= cap)
    }

    /// Number of single-actuator neighbours of any configuration.
    pub fn neighbor_count(&self) -> usize {
        self.radices.iter().map(|r| r - 1).sum()
    }

    /// The `k`-th neighbour of `id`, in the same order as
    /// [`ConfigurationSpace::neighbors`]: actuators in position order, each
    /// actuator's candidate settings ascending, skipping the current one.
    ///
    /// # Panics
    ///
    /// Panics if `k >= neighbor_count()`.
    pub fn neighbor(&self, id: ConfigId, mut k: usize) -> ConfigId {
        for pos in 0..self.radices.len() {
            let options = self.radices[pos] - 1;
            if k < options {
                let current = self.setting(id, pos);
                // Candidates are 0..radix skipping `current`.
                let candidate = if k < current { k } else { k + 1 };
                let delta = candidate as isize - current as isize;
                let new = id.index() as isize + delta * self.strides[pos] as isize;
                return ConfigId(new as u32);
            }
            k -= options;
        }
        panic!("neighbor index out of range");
    }
}

fn decode_into(id: usize, radices: &[usize], strides: &[usize], out: &mut [usize]) {
    for pos in 0..radices.len() {
        out[pos] = (id / strides[pos]) % radices[pos];
    }
}

fn encode(settings: &[usize], strides: &[usize]) -> usize {
    settings
        .iter()
        .zip(strides)
        .map(|(&s, &stride)| s * stride)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SettingSpec;

    fn space() -> ConfigurationSpace {
        let dvfs = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("fast"))
            .nominal(1)
            .build()
            .unwrap();
        let cores = ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("2")
                    .effect(Axis::Performance, 1.8)
                    .effect(Axis::Power, 2.0),
            )
            .setting(
                SettingSpec::new("4")
                    .effect(Axis::Performance, 3.0)
                    .effect(Axis::Power, 4.0),
            )
            .build()
            .unwrap();
        ConfigurationSpace::new(vec![dvfs, cores])
    }

    #[test]
    fn cardinality_and_nominal() {
        let s = space();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.cardinality(), 6);
        assert_eq!(s.nominal(), Configuration::new(vec![1, 0]));
        assert_eq!(ConfigurationSpace::new(vec![]).cardinality(), 0);
    }

    #[test]
    fn iterator_visits_every_configuration_once() {
        let s = space();
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all.len(), 6);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
        for config in &all {
            assert!(s.validate(config).is_ok());
        }
    }

    #[test]
    fn empty_space_iterates_nothing() {
        let s = ConfigurationSpace::new(vec![]);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn predicted_effects_multiply() {
        let s = space();
        let effect = s
            .predicted_effect(&Configuration::new(vec![0, 2]))
            .unwrap();
        assert!((effect.performance - 0.5 * 3.0).abs() < 1e-12);
        assert!((effect.power - 0.4 * 4.0).abs() < 1e-12);
        assert_eq!(effect.accuracy, 1.0);
        assert!((effect.efficiency() - 1.5 / 1.6).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_configurations() {
        let s = space();
        assert!(s.validate(&Configuration::new(vec![0])).is_err());
        assert!(s.validate(&Configuration::new(vec![0, 9])).is_err());
        assert!(s.predicted_effect(&Configuration::new(vec![5, 0])).is_err());
    }

    #[test]
    fn neighbors_differ_in_exactly_one_position() {
        let s = space();
        let base = Configuration::new(vec![1, 1]);
        let neighbors = s.neighbors(&base);
        assert_eq!(neighbors.len(), 1 + 2);
        for n in neighbors {
            let diffs = n
                .settings()
                .iter()
                .zip(base.settings())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn configuration_display_and_conversions() {
        let config: Configuration = vec![1, 2, 3].into();
        assert_eq!(config.to_string(), "[1, 2, 3]");
        assert_eq!(config.len(), 3);
        assert!(!config.is_empty());
        assert_eq!(config.setting(2), Some(3));
        assert_eq!(config.setting(9), None);
    }

    #[test]
    fn table_ids_match_iteration_order() {
        let s = space();
        let table = s.table();
        assert_eq!(table.len(), s.cardinality());
        assert_eq!(table.arity(), s.arity());
        for (i, config) in s.iter().enumerate() {
            let id = ConfigId(i as u32);
            assert_eq!(table.config_of(id), config);
            assert_eq!(table.id_of(&config), Some(id));
            for pos in 0..config.len() {
                assert_eq!(Some(table.setting(id, pos)), config.setting(pos));
            }
        }
        assert_eq!(table.config_of(table.nominal()), s.nominal());
    }

    #[test]
    fn table_effects_match_space_predictions() {
        let s = space();
        let table = s.table();
        for (i, config) in s.iter().enumerate() {
            let expected = s.predicted_effect(&config).unwrap();
            let got = table.declared_effect(ConfigId(i as u32));
            // Bit-identical, not merely close: the arena must be a drop-in
            // replacement for on-the-fly prediction.
            assert_eq!(expected.performance.to_bits(), got.performance.to_bits());
            assert_eq!(expected.power.to_bits(), got.power.to_bits());
            assert_eq!(expected.accuracy.to_bits(), got.accuracy.to_bits());
        }
    }

    #[test]
    fn table_rejects_invalid_configurations() {
        let table = space().table();
        assert_eq!(table.id_of(&Configuration::new(vec![0])), None);
        assert_eq!(table.id_of(&Configuration::new(vec![0, 9])), None);
        assert_eq!(table.id_of(&Configuration::new(vec![0, 0, 0])), None);
    }

    #[test]
    fn sorted_indices_are_ordered() {
        let table = space().table();
        let speedups: Vec<f64> = table
            .by_declared_speedup()
            .iter()
            .map(|&id| table.declared_effect(id).performance)
            .collect();
        assert!(speedups.windows(2).all(|w| w[0] <= w[1]));
        let powers: Vec<f64> = table
            .by_declared_power()
            .iter()
            .map(|&id| table.declared_effect(id).power)
            .collect();
        assert!(powers.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(table.by_declared_speedup().len(), table.len());
    }

    #[test]
    fn neighbor_enumeration_matches_space_neighbors() {
        let s = space();
        let table = s.table();
        for (i, config) in s.iter().enumerate() {
            let id = ConfigId(i as u32);
            let expected = s.neighbors(&config);
            assert_eq!(table.neighbor_count(), expected.len());
            for (k, neighbor) in expected.iter().enumerate() {
                assert_eq!(&table.config_of(table.neighbor(id, k)), neighbor);
            }
        }
    }

    #[test]
    fn power_ceiling_helpers_follow_the_sorted_index() {
        let table = space().table();
        let powers: Vec<f64> = table
            .by_declared_power()
            .iter()
            .map(|&id| table.declared_effect(id).power)
            .collect();
        assert_eq!(table.min_declared_power(), powers[0]);
        assert_eq!(table.max_declared_power(), *powers.last().unwrap());
        // The admissible prefix under any cap matches a naive count.
        for cap in [0.0, 0.4, 1.0, 2.0, 4.0, 100.0] {
            let expected = powers.iter().filter(|&&p| p <= cap).count();
            assert_eq!(table.count_within_declared_power(cap), expected, "cap {cap}");
        }
        let empty = ConfigurationSpace::new(vec![]).table();
        assert_eq!(empty.min_declared_power(), 1.0);
        assert_eq!(empty.max_declared_power(), 1.0);
        assert_eq!(empty.count_within_declared_power(5.0), 0);
    }

    #[test]
    fn empty_space_table_is_empty() {
        let table = ConfigurationSpace::new(vec![]).table();
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.neighbor_count(), 0);
        assert_eq!(table.id_of(&Configuration::new(vec![])), None);
    }

    #[test]
    fn effect_axis_accessors() {
        let effect = PredictedEffect {
            performance: 2.0,
            power: 0.5,
            accuracy: 0.9,
        };
        assert_eq!(effect.on(Axis::Performance), 2.0);
        assert_eq!(effect.on(Axis::Power), 0.5);
        assert_eq!(effect.on(Axis::Accuracy), 0.9);
        assert_eq!(PredictedEffect::default(), PredictedEffect::nominal());
    }
}
