use serde::{Deserialize, Serialize};

use crate::error::ActuationError;
use crate::spec::{ActuatorSpec, Axis, SettingIndex};

/// A joint configuration: one setting index per actuator, in actuator order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Configuration(Vec<SettingIndex>);

impl Configuration {
    /// Creates a configuration from per-actuator setting indices.
    pub fn new(settings: Vec<SettingIndex>) -> Self {
        Configuration(settings)
    }

    /// The setting chosen for the actuator at `position`.
    pub fn setting(&self, position: usize) -> Option<SettingIndex> {
        self.0.get(position).copied()
    }

    /// Per-actuator setting indices.
    pub fn settings(&self) -> &[SettingIndex] {
        &self.0
    }

    /// Number of actuators this configuration covers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the configuration covers no actuators.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<SettingIndex>> for Configuration {
    fn from(settings: Vec<SettingIndex>) -> Self {
        Configuration::new(settings)
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

/// The predicted joint effect of a configuration, as multipliers over the
/// all-nominal configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedEffect {
    /// Predicted performance multiplier (speedup).
    pub performance: f64,
    /// Predicted power multiplier.
    pub power: f64,
    /// Predicted accuracy multiplier.
    pub accuracy: f64,
}

impl PredictedEffect {
    /// The all-nominal effect (1.0 on every axis).
    pub fn nominal() -> Self {
        PredictedEffect {
            performance: 1.0,
            power: 1.0,
            accuracy: 1.0,
        }
    }

    /// Predicted performance-per-watt multiplier.
    pub fn efficiency(&self) -> f64 {
        if self.power > 0.0 {
            self.performance / self.power
        } else {
            f64::INFINITY
        }
    }

    /// Multiplier along a particular axis.
    pub fn on(&self, axis: Axis) -> f64 {
        match axis {
            Axis::Performance => self.performance,
            Axis::Power => self.power,
            Axis::Accuracy => self.accuracy,
        }
    }
}

impl Default for PredictedEffect {
    fn default() -> Self {
        PredictedEffect::nominal()
    }
}

/// The joint search space spanned by a set of actuator specifications.
///
/// The space assumes effects compose multiplicatively across actuators —
/// the same first-order model SEEC uses to seed its controllers before any
/// runtime observation corrects it (DAC 2012 §3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationSpace {
    specs: Vec<ActuatorSpec>,
}

impl ConfigurationSpace {
    /// Creates a space over the given actuator specifications.
    pub fn new(specs: Vec<ActuatorSpec>) -> Self {
        ConfigurationSpace { specs }
    }

    /// The actuator specifications, in configuration order.
    pub fn specs(&self) -> &[ActuatorSpec] {
        &self.specs
    }

    /// Number of actuators in the space.
    pub fn arity(&self) -> usize {
        self.specs.len()
    }

    /// Total number of joint configurations.
    pub fn cardinality(&self) -> usize {
        if self.specs.is_empty() {
            return 0;
        }
        self.specs.iter().map(ActuatorSpec::len).product()
    }

    /// The all-nominal configuration.
    pub fn nominal(&self) -> Configuration {
        Configuration::new(self.specs.iter().map(ActuatorSpec::nominal).collect())
    }

    /// Checks that `config` addresses every actuator with a valid setting.
    ///
    /// # Errors
    ///
    /// Returns [`ActuationError::UnknownSetting`] for the first actuator whose
    /// setting index is out of range, or [`ActuationError::InvalidSpec`] when
    /// the configuration arity does not match the space.
    pub fn validate(&self, config: &Configuration) -> Result<(), ActuationError> {
        if config.len() != self.specs.len() {
            return Err(ActuationError::InvalidSpec(format!(
                "configuration has {} entries but the space has {} actuators",
                config.len(),
                self.specs.len()
            )));
        }
        for (spec, &setting) in self.specs.iter().zip(config.settings()) {
            if setting >= spec.len() {
                return Err(ActuationError::UnknownSetting {
                    actuator: spec.name().to_string(),
                    requested: setting,
                    available: spec.len(),
                });
            }
        }
        Ok(())
    }

    /// Predicted joint effect of `config`, multiplying per-actuator effects.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`Self::validate`].
    pub fn predicted_effect(
        &self,
        config: &Configuration,
    ) -> Result<PredictedEffect, ActuationError> {
        self.validate(config)?;
        let mut effect = PredictedEffect::nominal();
        for (spec, &setting) in self.specs.iter().zip(config.settings()) {
            effect.performance *= spec.predicted_effect(setting, Axis::Performance)?;
            effect.power *= spec.predicted_effect(setting, Axis::Power)?;
            effect.accuracy *= spec.predicted_effect(setting, Axis::Accuracy)?;
        }
        Ok(effect)
    }

    /// Iterates over every joint configuration in lexicographic order.
    pub fn iter(&self) -> ConfigurationIter<'_> {
        ConfigurationIter {
            space: self,
            next: if self.cardinality() == 0 {
                None
            } else {
                Some(vec![0; self.specs.len()])
            },
        }
    }

    /// Configurations that differ from `config` in exactly one actuator.
    pub fn neighbors(&self, config: &Configuration) -> Vec<Configuration> {
        let mut out = Vec::new();
        for (pos, spec) in self.specs.iter().enumerate() {
            let current = config.setting(pos).unwrap_or(spec.nominal());
            for candidate in 0..spec.len() {
                if candidate != current {
                    let mut settings = config.settings().to_vec();
                    settings[pos] = candidate;
                    out.push(Configuration::new(settings));
                }
            }
        }
        out
    }
}

impl FromIterator<ActuatorSpec> for ConfigurationSpace {
    fn from_iter<I: IntoIterator<Item = ActuatorSpec>>(iter: I) -> Self {
        ConfigurationSpace::new(iter.into_iter().collect())
    }
}

/// Iterator over every configuration of a [`ConfigurationSpace`].
#[derive(Debug)]
pub struct ConfigurationIter<'a> {
    space: &'a ConfigurationSpace,
    next: Option<Vec<SettingIndex>>,
}

impl Iterator for ConfigurationIter<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.next.clone()?;
        // Advance like an odometer, most-significant actuator first.
        let mut following = current.clone();
        let mut pos = following.len();
        loop {
            if pos == 0 {
                self.next = None;
                break;
            }
            pos -= 1;
            following[pos] += 1;
            if following[pos] < self.space.specs[pos].len() {
                self.next = Some(following);
                break;
            }
            following[pos] = 0;
        }
        Some(Configuration::new(current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SettingSpec;

    fn space() -> ConfigurationSpace {
        let dvfs = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("fast"))
            .nominal(1)
            .build()
            .unwrap();
        let cores = ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("2")
                    .effect(Axis::Performance, 1.8)
                    .effect(Axis::Power, 2.0),
            )
            .setting(
                SettingSpec::new("4")
                    .effect(Axis::Performance, 3.0)
                    .effect(Axis::Power, 4.0),
            )
            .build()
            .unwrap();
        ConfigurationSpace::new(vec![dvfs, cores])
    }

    #[test]
    fn cardinality_and_nominal() {
        let s = space();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.cardinality(), 6);
        assert_eq!(s.nominal(), Configuration::new(vec![1, 0]));
        assert_eq!(ConfigurationSpace::new(vec![]).cardinality(), 0);
    }

    #[test]
    fn iterator_visits_every_configuration_once() {
        let s = space();
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all.len(), 6);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
        for config in &all {
            assert!(s.validate(config).is_ok());
        }
    }

    #[test]
    fn empty_space_iterates_nothing() {
        let s = ConfigurationSpace::new(vec![]);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn predicted_effects_multiply() {
        let s = space();
        let effect = s
            .predicted_effect(&Configuration::new(vec![0, 2]))
            .unwrap();
        assert!((effect.performance - 0.5 * 3.0).abs() < 1e-12);
        assert!((effect.power - 0.4 * 4.0).abs() < 1e-12);
        assert_eq!(effect.accuracy, 1.0);
        assert!((effect.efficiency() - 1.5 / 1.6).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_configurations() {
        let s = space();
        assert!(s.validate(&Configuration::new(vec![0])).is_err());
        assert!(s.validate(&Configuration::new(vec![0, 9])).is_err());
        assert!(s.predicted_effect(&Configuration::new(vec![5, 0])).is_err());
    }

    #[test]
    fn neighbors_differ_in_exactly_one_position() {
        let s = space();
        let base = Configuration::new(vec![1, 1]);
        let neighbors = s.neighbors(&base);
        assert_eq!(neighbors.len(), 1 + 2);
        for n in neighbors {
            let diffs = n
                .settings()
                .iter()
                .zip(base.settings())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn configuration_display_and_conversions() {
        let config: Configuration = vec![1, 2, 3].into();
        assert_eq!(config.to_string(), "[1, 2, 3]");
        assert_eq!(config.len(), 3);
        assert!(!config.is_empty());
        assert_eq!(config.setting(2), Some(3));
        assert_eq!(config.setting(9), None);
    }

    #[test]
    fn effect_axis_accessors() {
        let effect = PredictedEffect {
            performance: 2.0,
            power: 0.5,
            accuracy: 0.9,
        };
        assert_eq!(effect.on(Axis::Performance), 2.0);
        assert_eq!(effect.on(Axis::Power), 0.5);
        assert_eq!(effect.on(Axis::Accuracy), 0.9);
        assert_eq!(PredictedEffect::default(), PredictedEffect::nominal());
    }
}
