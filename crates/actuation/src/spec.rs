use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::ActuationError;

/// Index into an actuator's list of allowable settings.
pub type SettingIndex = usize;

/// An axis of system behaviour an actuator can affect.
///
/// These mirror the three goal families of the heartbeat API so that the
/// decision engine can pair goals with the actuators able to influence them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis {
    /// Application throughput / latency.
    Performance,
    /// Power (and energy) consumption.
    Power,
    /// Output quality.
    Accuracy,
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Axis::Performance => "performance",
            Axis::Power => "power",
            Axis::Accuracy => "accuracy",
        };
        f.write_str(name)
    }
}

/// Whether an actuator affects only the application that registered it or
/// the whole system (DAC 2012 §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Scope {
    /// Only the registering application is affected (e.g. switching the
    /// application's algorithm).
    #[default]
    Application,
    /// Every application on the system is affected (e.g. allocating cores,
    /// changing chip-wide voltage).
    Global,
}

/// One allowable setting of an actuator and its predicted effects.
///
/// Effects are multipliers relative to the actuator's *nominal* setting,
/// whose effect is 1.0 on every axis. An axis with no declared effect is
/// assumed to be unaffected (multiplier 1.0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettingSpec {
    label: String,
    effects: BTreeMap<Axis, f64>,
}

impl SettingSpec {
    /// Creates a setting with the given human-readable label and no declared
    /// effects (all multipliers 1.0).
    pub fn new(label: impl Into<String>) -> Self {
        SettingSpec {
            label: label.into(),
            effects: BTreeMap::new(),
        }
    }

    /// Declares the effect of this setting on `axis` as a multiplier over the
    /// nominal setting.
    pub fn effect(mut self, axis: Axis, multiplier: f64) -> Self {
        self.effects.insert(axis, multiplier);
        self
    }

    /// Human-readable label (e.g. `"2.4GHz"`, `"64KB"`, `"16 cores"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Multiplier this setting applies to `axis` (1.0 when undeclared).
    pub fn effect_on(&self, axis: Axis) -> f64 {
        self.effects.get(&axis).copied().unwrap_or(1.0)
    }

    /// Axes with explicitly declared effects.
    pub fn declared_axes(&self) -> impl Iterator<Item = Axis> + '_ {
        self.effects.keys().copied()
    }
}

/// Static description of an actuator: everything except the function that
/// actually changes the setting (see [`crate::Actuator`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActuatorSpec {
    name: String,
    settings: Vec<SettingSpec>,
    nominal: SettingIndex,
    delay: f64,
    scope: Scope,
    /// Optional per-axis exponents applied on top of the declared
    /// multipliers when predicting effects (absent axes behave linearly,
    /// exponent 1.0). Lets designers declare *convex* priors — e.g. a core
    /// allocator whose power grows as `n^1.15` on platforms where
    /// utilisation-power is super-linear — without re-tabulating every
    /// setting.
    axis_exponents: BTreeMap<Axis, f64>,
}

impl ActuatorSpec {
    /// Starts building a spec for an actuator called `name`.
    pub fn builder(name: impl Into<String>) -> ActuatorSpecBuilder {
        ActuatorSpecBuilder {
            name: name.into(),
            settings: Vec::new(),
            nominal: 0,
            delay: 0.0,
            scope: Scope::default(),
            axis_exponents: BTreeMap::new(),
        }
    }

    /// Actuator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All allowable settings, in index order.
    pub fn settings(&self) -> &[SettingSpec] {
        &self.settings
    }

    /// The setting at `index`, if it exists.
    pub fn setting(&self, index: SettingIndex) -> Option<&SettingSpec> {
        self.settings.get(index)
    }

    /// Number of allowable settings.
    pub fn len(&self) -> usize {
        self.settings.len()
    }

    /// Returns `true` if the actuator has no settings (never true for a
    /// successfully built spec).
    pub fn is_empty(&self) -> bool {
        self.settings.is_empty()
    }

    /// Index of the nominal setting (effects 1.0 on every axis).
    pub fn nominal(&self) -> SettingIndex {
        self.nominal
    }

    /// Seconds between applying a setting and its effects being observable.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Whether the actuator is application-scoped or global.
    pub fn scope(&self) -> Scope {
        self.scope
    }

    /// Union of the axes any setting declares an effect on.
    pub fn affected_axes(&self) -> Vec<Axis> {
        let mut axes: Vec<Axis> = self
            .settings
            .iter()
            .flat_map(|s| s.declared_axes())
            .collect();
        axes.sort();
        axes.dedup();
        axes
    }

    /// Exponent applied to declared multipliers on `axis` when predicting
    /// effects (1.0 — the linear default — when none was declared).
    pub fn axis_exponent(&self, axis: Axis) -> f64 {
        self.axis_exponents.get(&axis).copied().unwrap_or(1.0)
    }

    /// Predicted multiplier of setting `index` on `axis`, relative to
    /// nominal: the declared multiplier raised to the axis exponent.
    ///
    /// The exponentiation is skipped entirely (not computed as `m.powf(1.0)`)
    /// when the exponent is 1.0, so linear specs predict the exact declared
    /// bits — existing decision paths are unchanged unless an exponent is
    /// explicitly declared.
    ///
    /// # Errors
    ///
    /// Returns [`ActuationError::UnknownSetting`] when `index` is out of range.
    pub fn predicted_effect(
        &self,
        index: SettingIndex,
        axis: Axis,
    ) -> Result<f64, ActuationError> {
        let multiplier = self
            .setting(index)
            .map(|s| s.effect_on(axis))
            .ok_or_else(|| ActuationError::UnknownSetting {
                actuator: self.name.clone(),
                requested: index,
                available: self.settings.len(),
            })?;
        let exponent = self.axis_exponent(axis);
        Ok(if exponent == 1.0 {
            multiplier
        } else {
            multiplier.powf(exponent)
        })
    }
}

/// Builder for [`ActuatorSpec`] (see [`ActuatorSpec::builder`]).
#[derive(Debug, Clone)]
pub struct ActuatorSpecBuilder {
    name: String,
    settings: Vec<SettingSpec>,
    nominal: SettingIndex,
    delay: f64,
    scope: Scope,
    axis_exponents: BTreeMap<Axis, f64>,
}

impl ActuatorSpecBuilder {
    /// Appends an allowable setting.
    pub fn setting(mut self, setting: SettingSpec) -> Self {
        self.settings.push(setting);
        self
    }

    /// Appends several settings at once.
    pub fn settings<I: IntoIterator<Item = SettingSpec>>(mut self, settings: I) -> Self {
        self.settings.extend(settings);
        self
    }

    /// Declares which setting index is nominal (default 0).
    pub fn nominal(mut self, index: SettingIndex) -> Self {
        self.nominal = index;
        self
    }

    /// Declares the actuation delay in seconds (default 0).
    pub fn delay(mut self, seconds: f64) -> Self {
        self.delay = seconds;
        self
    }

    /// Declares the actuator scope (default [`Scope::Application`]).
    pub fn scope(mut self, scope: Scope) -> Self {
        self.scope = scope;
        self
    }

    /// Declares an exponent applied to every setting's multiplier on `axis`
    /// when predicting effects (default 1.0 — linear). Exponent 1.0 is a
    /// no-op: predictions return the declared multipliers bit-for-bit.
    pub fn axis_exponent(mut self, axis: Axis, exponent: f64) -> Self {
        self.axis_exponents.insert(axis, exponent);
        self
    }

    /// Finalises the specification.
    ///
    /// # Errors
    ///
    /// Returns [`ActuationError::InvalidSpec`] if there are no settings, the
    /// nominal index is out of range, the delay is negative/non-finite, or
    /// any effect multiplier is non-positive or non-finite.
    pub fn build(self) -> Result<ActuatorSpec, ActuationError> {
        if self.settings.is_empty() {
            return Err(ActuationError::InvalidSpec(format!(
                "actuator `{}` declares no settings",
                self.name
            )));
        }
        if self.nominal >= self.settings.len() {
            return Err(ActuationError::InvalidSpec(format!(
                "nominal index {} out of range for `{}` ({} settings)",
                self.nominal,
                self.name,
                self.settings.len()
            )));
        }
        if !self.delay.is_finite() || self.delay < 0.0 {
            return Err(ActuationError::InvalidSpec(format!(
                "delay must be non-negative and finite, got {}",
                self.delay
            )));
        }
        for (i, setting) in self.settings.iter().enumerate() {
            for axis in setting.declared_axes() {
                let m = setting.effect_on(axis);
                if !m.is_finite() || m <= 0.0 {
                    return Err(ActuationError::InvalidSpec(format!(
                        "setting {i} (`{}`) of `{}` has non-positive multiplier {m} on {axis}",
                        setting.label(),
                        self.name
                    )));
                }
            }
        }
        for (&axis, &exponent) in &self.axis_exponents {
            if !exponent.is_finite() || exponent <= 0.0 {
                return Err(ActuationError::InvalidSpec(format!(
                    "axis exponent on {axis} of `{}` must be positive and finite, got {exponent}",
                    self.name
                )));
            }
        }
        Ok(ActuatorSpec {
            name: self.name,
            settings: self.settings,
            nominal: self.nominal,
            delay: self.delay,
            scope: self.scope,
            axis_exponents: self.axis_exponents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dvfs_spec() -> ActuatorSpec {
        ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("nominal"))
            .setting(
                SettingSpec::new("fast")
                    .effect(Axis::Performance, 1.5)
                    .effect(Axis::Power, 2.0),
            )
            .nominal(1)
            .delay(0.001)
            .scope(Scope::Global)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_complete_spec() {
        let spec = dvfs_spec();
        assert_eq!(spec.name(), "dvfs");
        assert_eq!(spec.len(), 3);
        assert!(!spec.is_empty());
        assert_eq!(spec.nominal(), 1);
        assert_eq!(spec.delay(), 0.001);
        assert_eq!(spec.scope(), Scope::Global);
        assert_eq!(
            spec.affected_axes(),
            vec![Axis::Performance, Axis::Power]
        );
    }

    #[test]
    fn undeclared_effects_default_to_unity() {
        let spec = dvfs_spec();
        let nominal = spec.setting(1).unwrap();
        assert_eq!(nominal.effect_on(Axis::Performance), 1.0);
        assert_eq!(nominal.effect_on(Axis::Power), 1.0);
        assert_eq!(nominal.effect_on(Axis::Accuracy), 1.0);
    }

    #[test]
    fn predicted_effect_checks_bounds() {
        let spec = dvfs_spec();
        assert_eq!(spec.predicted_effect(2, Axis::Power).unwrap(), 2.0);
        assert!(matches!(
            spec.predicted_effect(7, Axis::Power),
            Err(ActuationError::UnknownSetting { requested: 7, .. })
        ));
    }

    #[test]
    fn empty_spec_is_rejected() {
        let err = ActuatorSpec::builder("empty").build().unwrap_err();
        assert!(matches!(err, ActuationError::InvalidSpec(_)));
    }

    #[test]
    fn bad_nominal_index_is_rejected() {
        let err = ActuatorSpec::builder("x")
            .setting(SettingSpec::new("only"))
            .nominal(3)
            .build()
            .unwrap_err();
        assert!(matches!(err, ActuationError::InvalidSpec(_)));
    }

    #[test]
    fn negative_delay_is_rejected() {
        let err = ActuatorSpec::builder("x")
            .setting(SettingSpec::new("only"))
            .delay(-1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ActuationError::InvalidSpec(_)));
    }

    #[test]
    fn non_positive_multiplier_is_rejected() {
        let err = ActuatorSpec::builder("x")
            .setting(SettingSpec::new("bad").effect(Axis::Power, 0.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ActuationError::InvalidSpec(_)));
    }

    #[test]
    fn axis_exponent_shapes_predicted_effects() {
        let spec = ActuatorSpec::builder("cores")
            .setting(SettingSpec::new("1"))
            .setting(
                SettingSpec::new("4")
                    .effect(Axis::Performance, 4.0)
                    .effect(Axis::Power, 4.0),
            )
            .axis_exponent(Axis::Power, 1.15)
            .build()
            .unwrap();
        assert_eq!(spec.axis_exponent(Axis::Power), 1.15);
        assert_eq!(spec.axis_exponent(Axis::Performance), 1.0);
        // Performance stays linear; power is raised to the exponent.
        assert_eq!(spec.predicted_effect(1, Axis::Performance).unwrap(), 4.0);
        let power = spec.predicted_effect(1, Axis::Power).unwrap();
        assert!((power - 4.0f64.powf(1.15)).abs() < 1e-12);
        // The nominal setting's unity multiplier is a fixed point.
        assert_eq!(spec.predicted_effect(0, Axis::Power).unwrap(), 1.0);
    }

    #[test]
    fn unity_axis_exponent_is_bit_identical_to_no_exponent() {
        let base = dvfs_spec();
        let with_unity = ActuatorSpec::builder("dvfs")
            .setting(
                SettingSpec::new("slow")
                    .effect(Axis::Performance, 0.5)
                    .effect(Axis::Power, 0.4),
            )
            .setting(SettingSpec::new("nominal"))
            .setting(
                SettingSpec::new("fast")
                    .effect(Axis::Performance, 1.5)
                    .effect(Axis::Power, 2.0),
            )
            .nominal(1)
            .delay(0.001)
            .scope(Scope::Global)
            .axis_exponent(Axis::Power, 1.0)
            .build()
            .unwrap();
        for index in 0..base.len() {
            for axis in [Axis::Performance, Axis::Power, Axis::Accuracy] {
                assert_eq!(
                    base.predicted_effect(index, axis).unwrap().to_bits(),
                    with_unity.predicted_effect(index, axis).unwrap().to_bits()
                );
            }
        }
    }

    #[test]
    fn invalid_axis_exponent_is_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ActuatorSpec::builder("x")
                .setting(SettingSpec::new("only"))
                .axis_exponent(Axis::Power, bad)
                .build()
                .unwrap_err();
            assert!(matches!(err, ActuationError::InvalidSpec(_)), "exponent {bad}");
        }
    }

    #[test]
    fn default_scope_is_application() {
        let spec = ActuatorSpec::builder("x")
            .setting(SettingSpec::new("only"))
            .build()
            .unwrap();
        assert_eq!(spec.scope(), Scope::Application);
    }
}
