use std::error::Error;
use std::fmt;

/// Errors arising while building actuator specifications or applying settings.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ActuationError {
    /// The requested setting index does not exist for this actuator.
    UnknownSetting {
        /// Name of the actuator.
        actuator: String,
        /// Requested setting index.
        requested: usize,
        /// Number of settings the actuator exposes.
        available: usize,
    },
    /// The actuator specification is malformed (no settings, bad nominal, ...).
    InvalidSpec(String),
    /// The underlying platform rejected the setting change.
    PlatformRejected {
        /// Name of the actuator.
        actuator: String,
        /// Platform-provided reason.
        reason: String,
    },
}

impl fmt::Display for ActuationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActuationError::UnknownSetting {
                actuator,
                requested,
                available,
            } => write!(
                f,
                "actuator `{actuator}` has {available} settings, index {requested} does not exist"
            ),
            ActuationError::InvalidSpec(reason) => write!(f, "invalid actuator spec: {reason}"),
            ActuationError::PlatformRejected { actuator, reason } => {
                write!(f, "platform rejected setting on `{actuator}`: {reason}")
            }
        }
    }
}

impl Error for ActuationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ActuationError::UnknownSetting {
            actuator: "dvfs".into(),
            requested: 9,
            available: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("dvfs") && msg.contains('9') && msg.contains('3'));
        assert!(ActuationError::InvalidSpec("empty".into())
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ActuationError>();
    }
}
