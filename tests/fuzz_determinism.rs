//! End-to-end determinism pin for the scenario fuzzer.
//!
//! The fuzzer's own unit tests pin determinism against a toy executor;
//! this test closes the loop with the real instrumented probe: the same
//! seed and iteration budget must produce byte-identical corpus and
//! report JSON, because CI and incident triage both rely on replaying a
//! run from its two numbers alone.

use scenario_fuzz::{fuzz, FuzzConfig};

fn run(seed: u64) -> (String, String) {
    let config = FuzzConfig {
        seed,
        iterations: 16,
        ..FuzzConfig::default()
    };
    let seeds = workloads::scenario_mixes(seed);
    let mut executor = experiments::fuzz::probe_executor(seed);
    let (corpus, report) = fuzz(&config, &seeds, &mut executor);
    (
        corpus.to_json(),
        serde_json::to_string_pretty(&report).expect("report serializes"),
    )
}

#[test]
fn same_seed_same_bytes_different_seed_different_run() {
    let (corpus_a, report_a) = run(2012);
    let (corpus_b, report_b) = run(2012);
    assert_eq!(corpus_a, corpus_b, "corpus JSON must be byte-identical");
    assert_eq!(report_a, report_b, "report JSON must be byte-identical");

    let (corpus_c, report_c) = run(2013);
    assert!(
        corpus_a != corpus_c || report_a != report_c,
        "a different seed explores differently"
    );
}
