//! Cross-crate integration tests: the full observe–decide–act loop over both
//! substrates, plus property-based tests of the core invariants.

use angstrom_seec::experiments::driver::{run_fixed_on_xeon, to_chip_demand, to_server_demand};
use angstrom_seec::experiments::fig3::{map_configuration, xeon_actuators};
use angstrom_seec::prelude::*;
use angstrom_seec::seec::SeecRuntime;
use proptest::prelude::*;

/// SEEC on the Xeon model: starting from one core at the minimum clock, the
/// runtime must raise a parallel benchmark to (near) its requested rate and
/// settle on a configuration cheaper than running flat out.
#[test]
fn seec_closes_the_loop_on_the_xeon_server() {
    let server = XeonServer::dell_r410();
    let workload = Workload::new(SplashBenchmark::Barnes, 11);
    let quanta = workload.quanta(80);
    let max_rate = run_fixed_on_xeon(&server, &quanta, &server.default_configuration()).heart_rate;
    let target = max_rate / 2.0;

    let mut app = HeartbeatedWorkload::new(workload);
    app.set_heart_rate_goal(target);
    let mut runtime = SeecRuntime::builder(app.monitor())
        .actuators(xeon_actuators(&server))
        .build()
        .expect("actuators registered");
    let monitor = app.monitor();

    let mut now = 0.0;
    let mut above_idle_energy = 0.0;
    for quantum in &quanta {
        let cfg = map_configuration(&server, runtime.current_configuration());
        let report = server.evaluate(&to_server_demand(quantum), &cfg);
        now += report.seconds;
        above_idle_energy += report.power_above_idle_watts * report.seconds;
        app.advance(now, report.work_units);
        monitor.record_power_sample(now, report.power_above_idle_watts);
        runtime.decide(now).expect("goal registered");
    }

    let achieved = app.completed_work() / now;
    assert!(
        achieved >= target * 0.6,
        "SEEC should approach the target: {achieved:.1} of {target:.1}"
    );
    // SEEC's energy above idle must be below the flat-out run's (it only
    // needs half the performance).
    let flat_out = run_fixed_on_xeon(&server, &quanta, &server.default_configuration());
    let flat_energy = flat_out.power_above_idle_watts * flat_out.seconds;
    assert!(
        above_idle_energy < flat_energy,
        "meeting half the performance should take less energy than flat out"
    );
    assert!(app.is_finished());
}

/// The same SEEC runtime drives the Angstrom chip model: heartbeats come from
/// the instrumented workload, power from the chip's energy sensors.
#[test]
fn seec_controls_the_angstrom_chip_through_hardware_actuators() {
    use angstrom_seec::actuation::{ActuatorSpec, Axis, SettingSpec, TableActuator};
    use angstrom_seec::angstrom_sim::chip::ChipConfiguration;

    let mut chip = AngstromChip::new(ChipConfig::angstrom_256());
    let chip_config = chip.config().clone();
    let workload = Workload::new(SplashBenchmark::Volrend, 5);
    let quanta = workload.quanta(60);

    // Hardware-exposed actuators: core allocation and the DVFS point.
    let mut cores = ActuatorSpec::builder("cores");
    for &n in &chip_config.core_allocation_options {
        cores = cores.setting(
            SettingSpec::new(format!("{n}"))
                .effect(Axis::Performance, n as f64)
                .effect(Axis::Power, n as f64),
        );
    }
    let cores = cores.nominal(0).build().expect("valid spec");
    let mut dvfs = ActuatorSpec::builder("dvfs");
    for (i, point) in chip_config.operating_points.iter().enumerate() {
        let ratio = point.frequency / chip_config.operating_points[0].frequency;
        dvfs = dvfs.setting(
            SettingSpec::new(format!("op{i}"))
                .effect(Axis::Performance, ratio)
                .effect(Axis::Power, ratio * ratio),
        );
    }
    let dvfs = dvfs.nominal(0).build().expect("valid spec");

    let mut app = HeartbeatedWorkload::new(workload);
    // A modest goal: 4x the single-core low-voltage rate.
    let probe = chip.evaluate(
        &to_chip_demand(&quanta[0]),
        &ChipConfiguration {
            cores: 1,
            cache_per_core_kb: 128.0,
            operating_point_index: 0,
            coherence: chip_config.coherence,
            noc_features: None,
            decision_placement: chip_config.decision_placement,
        },
    );
    let nominal_rate = probe.work_units / probe.seconds;
    app.set_heart_rate_goal(nominal_rate * 4.0);

    let mut runtime = SeecRuntime::builder(app.monitor())
        .actuator(Box::new(TableActuator::new(cores)))
        .actuator(Box::new(TableActuator::new(dvfs)))
        .build()
        .expect("actuators registered");
    let monitor = app.monitor();

    for quantum in &quanta {
        let joint = runtime.current_configuration().clone();
        let cfg = ChipConfiguration {
            cores: chip_config.core_allocation_options[joint.setting(0).unwrap_or(0)],
            cache_per_core_kb: 128.0,
            operating_point_index: joint.setting(1).unwrap_or(0),
            coherence: chip_config.coherence,
            noc_features: None,
            decision_placement: chip_config.decision_placement,
        };
        let report = chip.execute(&to_chip_demand(quantum), &cfg);
        let now = chip.now();
        app.advance(now, report.work_units);
        monitor.record_power_sample(now, report.average_power_watts);
        runtime.decide(now).expect("goal registered");
    }

    assert!(runtime.decisions_made() as usize >= quanta.len());
    assert!(
        monitor.window_heart_rate() >= nominal_rate * 2.0,
        "SEEC must have scaled the chip up from its single-core launch state"
    );
    // The chip's observability surface recorded the run.
    assert!(chip.total_sensed_energy() > 0.0);
    assert!(
        chip.tiles()[0]
            .counters
            .read(angstrom_seec::angstrom_sim::counters::CounterId::Instructions)
            > 0
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chip reports are physically sensible for any demand and configuration
    /// within the documented domains.
    #[test]
    fn chip_reports_are_physical(
        instructions in 1.0e6..1.0e10f64,
        parallel in 0.0..1.0f64,
        mem_ops in 0.0..0.6f64,
        ws_mb in 0.1..128.0f64,
        cores_exp in 0u32..8,
        cache_kb in 8.0..128.0f64,
        op in 0usize..2,
    ) {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let demand = angstrom_seec::angstrom_sim::WorkloadDemand::builder()
            .instructions(instructions)
            .parallel_fraction(parallel)
            .memory_ops_per_instruction(mem_ops)
            .working_set_bytes(ws_mb * 1024.0 * 1024.0)
            .build();
        let cfg = ChipConfiguration {
            cores: 1 << cores_exp,
            cache_per_core_kb: cache_kb,
            operating_point_index: op,
            coherence: chip.config().coherence,
            noc_features: None,
            decision_placement: chip.config().decision_placement,
        };
        let report = chip.evaluate(&demand, &cfg);
        prop_assert!(report.seconds > 0.0 && report.seconds.is_finite());
        prop_assert!(report.energy_joules > 0.0 && report.energy_joules.is_finite());
        prop_assert!(report.average_power_watts > 0.0);
        prop_assert!((report.breakdown.total() - report.energy_joules).abs() <= 1e-9 * report.energy_joules.max(1.0));
        prop_assert!((0.0..=1.0).contains(&report.offchip_rate));
    }

    /// For an embarrassingly parallel, compute-only workload, more cores
    /// never slow the run down and never reduce chip power. (Workloads with
    /// serial sections or memory traffic may legitimately slow down when
    /// over-allocated — that is the heterogeneity the oracles exploit.)
    #[test]
    fn monotonicity_in_core_allocation(
        base_cpi in 0.5..2.0f64,
        cores_exp in 0u32..7,
    ) {
        let chip = AngstromChip::new(ChipConfig::angstrom_256());
        let demand = angstrom_seec::angstrom_sim::WorkloadDemand::builder()
            .parallel_fraction(1.0)
            .memory_ops_per_instruction(0.0)
            .communication_flits_per_instruction(0.0)
            .base_cpi(base_cpi)
            .build();
        let mut cfg = angstrom_seec::angstrom_sim::chip::ChipConfiguration::default_for(chip.config());
        cfg.cores = 1 << cores_exp;
        let fewer = chip.evaluate(&demand, &cfg);
        cfg.cores = 1 << (cores_exp + 1);
        let more = chip.evaluate(&demand, &cfg);
        prop_assert!(more.seconds <= fewer.seconds * 1.0001);
        prop_assert!(more.average_power_watts >= fewer.average_power_watts * 0.999);
    }

    /// The Xeon model stays inside its published power envelope for every
    /// valid configuration.
    #[test]
    fn xeon_power_stays_in_envelope(
        cores in 1usize..=8,
        pstate in 0usize..7,
        duty_step in 1usize..=10,
        llc_miss in 0.0..0.2f64,
    ) {
        let server = XeonServer::dell_r410();
        let demand = ServerDemand::builder().llc_miss_rate(llc_miss).build();
        let cfg = ServerConfiguration::new(cores, pstate, duty_step as f64 / 10.0);
        let report = server.evaluate(&demand, &cfg);
        prop_assert!(report.total_power_watts >= server.idle_power_watts());
        prop_assert!(report.total_power_watts <= server.max_power_watts() + 1e-9);
        prop_assert!(report.seconds > 0.0 && report.seconds.is_finite());
    }

    /// Heart-rate accounting: the registry's global rate equals beats over
    /// elapsed time for any positive beat spacing.
    #[test]
    fn heartbeat_global_rate_matches_definition(intervals in proptest::collection::vec(1.0e-3..1.0f64, 2..100)) {
        let registry = HeartbeatRegistry::with_window("app", 16);
        let issuer = registry.issuer();
        let mut now = 0.0;
        for dt in &intervals {
            now += dt;
            issuer.heartbeat(now);
        }
        let stats = registry.monitor().heart_rate();
        let expected = (intervals.len() as f64 - 1.0) / (now - intervals[0]);
        prop_assert!((stats.global - expected).abs() <= 1e-6 * expected);
    }
}
