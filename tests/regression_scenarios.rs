//! Replays the pinned fuzz corpus under `tests/corpus/`.
//!
//! Every fixture is a shrunk incident emitted by the scenario fuzzer
//! (`cargo run --release --bin fuzz`), wrapped with a status:
//!
//! * `"expected"` — a known incident class: the replay must still raise
//!   every recorded class. If one of these starts passing clean, the
//!   underlying behavior changed (possibly a fix!) and the fixture must be
//!   consciously retired, not ignored.
//! * `"clean"` — a scenario pinned to stay violation-free.
//!
//! Replays are fully deterministic: the fixture records the probe seed,
//! and `fuzz_probe` derives everything else from it.

use experiments::fuzz::fuzz_probe;
use scenario_fuzz::Incident;
use serde::Deserialize;
use xeon_sim::XeonServer;

#[derive(Deserialize)]
struct Fixture {
    status: String,
    note: String,
    seed: u64,
    incident: Incident,
}

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn load_fixtures() -> Vec<(String, Fixture)> {
    let mut fixtures: Vec<(String, Fixture)> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|entry| entry.expect("corpus entry is readable").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .map(|path| {
            let name = path
                .file_stem()
                .expect("fixture has a stem")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&path).expect("fixture is readable");
            let fixture: Fixture = serde_json::from_str(&text)
                .unwrap_or_else(|err| panic!("fixture {name} parses: {err}"));
            (name, fixture)
        })
        .collect();
    fixtures.sort_by(|a, b| a.0.cmp(&b.0));
    fixtures
}

#[test]
fn corpus_is_present_and_well_formed() {
    let fixtures = load_fixtures();
    assert!(
        fixtures.len() >= 5,
        "the pinned corpus holds at least the five discovered incident classes, found {}",
        fixtures.len()
    );
    for (name, fixture) in &fixtures {
        assert!(
            fixture.incident.scenario.is_well_formed(),
            "fixture {name} carries a well-formed scenario"
        );
        assert!(
            matches!(fixture.status.as_str(), "expected" | "clean"),
            "fixture {name} has unknown status {:?}",
            fixture.status
        );
        assert!(!fixture.note.is_empty(), "fixture {name} documents itself");
        if fixture.status == "expected" {
            assert!(
                !fixture.incident.classes.is_empty(),
                "expected fixture {name} names its incident classes"
            );
        }
    }
}

#[test]
fn replaying_the_corpus_reproduces_every_pinned_verdict() {
    let server = XeonServer::dell_r410_calibrated();
    for (name, fixture) in load_fixtures() {
        let outcome = fuzz_probe(&server, &fixture.incident.scenario, fixture.seed);
        let labels = outcome.incident_labels();
        match fixture.status.as_str() {
            "expected" => {
                for class in &fixture.incident.classes {
                    assert!(
                        labels.contains(class),
                        "fixture {name}: class {class} no longer reproduces \
                         (got {labels:?}); if this is an intentional fix, retire \
                         the fixture"
                    );
                }
            }
            "clean" => {
                assert!(
                    labels.is_empty(),
                    "fixture {name}: pinned-clean scenario now violates {labels:?}"
                );
            }
            other => panic!("fixture {name} has unknown status {other:?}"),
        }
    }
}
