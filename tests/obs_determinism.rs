//! Telemetry passivity pins: observation must never perturb results.
//!
//! The `obs` crate's recorder threads through the coordinator's step
//! pipeline, so the one property the whole layer stands on is that
//! attaching a recorder changes *nothing* about what the stack computes —
//! at any worker count (sequential and sharded steps must agree), and
//! under fault plans (the chaos pipeline exercises quarantine ladders,
//! envelope clamps, and breaker enforcement, all of which emit events).
//! These properties drive the real pipelines end to end; the unit-level
//! equivalents (histogram bucket counts vs. a naive recompute, merge
//! associativity) live in `crates/obs`.
//!
//! The file also pins the decide-counter *ledger*: every active
//! app-quantum lands in exactly one of `apps_skipped`,
//! `apps_rearbitrated`, or `apps_decided` — on the full path, the
//! incremental path, and in the `fig5 --fleet` fleet-scaling report.

use std::sync::Arc;

use coordinator::{Coordinator, ManagedApp, PerformanceMarket};
use obs::{Counter, Recorder};
use proptest::prelude::*;
use seec::SeecRuntime;
use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};
use xeon_sim::XeonServer;

/// Steps a small fleet for `quanta` quanta and returns the exact
/// `StepSummary` sequence (as `Debug` strings — the summary is plain
/// `Copy` data, so this is a faithful byte-level transcript).
fn drive(apps: usize, workers: usize, quanta: usize, observe: bool) -> Vec<String> {
    let server = XeonServer::dell_r410_calibrated();
    let mut coordinator = Coordinator::new(120.0, Box::new(PerformanceMarket::default()));
    coordinator.set_workers(workers);
    // Threshold 0: even tiny fleets go through the sharded path, so a
    // worker count > 1 genuinely exercises the pool.
    coordinator.set_shard_threshold(0);
    if observe {
        coordinator.set_obs(Some(Arc::new(Recorder::in_memory())));
    }
    let mut handles = Vec::with_capacity(apps);
    for index in 0..apps {
        let workload = Workload::new(
            SplashBenchmark::ALL[index % SplashBenchmark::ALL.len()],
            index as u64,
        );
        let driver = HeartbeatedWorkload::new(workload);
        driver.set_heart_rate_goal(20.0 + index as f64);
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(experiments::fig3::xeon_actuators(&server))
            .seed(index as u64)
            .build()
            .expect("actuators registered");
        handles.push(coordinator.register(
            ManagedApp::new(driver, runtime)
                .with_weight(1.0 + (index % 3) as f64)
                .with_nominal_power_hint(6.0),
        ));
    }
    let mut now = 0.0;
    let mut transcript = Vec::with_capacity(quanta);
    for _ in 0..quanta {
        now += 0.1;
        for &handle in &handles {
            coordinator.advance(handle, now - 0.1, now, 2.0, 5.0);
        }
        let summary = coordinator.step(now).expect("goals registered");
        transcript.push(format!("{summary:?}"));
    }
    transcript
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Attaching a recorder leaves the coordinator's step summaries
    /// byte-identical at any worker count, and every worker count agrees
    /// with the sequential reference.
    #[test]
    fn telemetry_is_passive_at_any_worker_count(
        apps in 1usize..8,
        workers in 1usize..5,
        quanta in 2usize..8,
    ) {
        let reference = drive(apps, 1, quanta, false);
        let sharded = drive(apps, workers, quanta, false);
        prop_assert_eq!(&reference, &sharded);
        let observed = drive(apps, workers, quanta, true);
        prop_assert_eq!(&reference, &observed);
    }
}

/// Steps a fleet of always-active apps under a recorder and returns the
/// (skipped, rearbitrated, decided) counter triple.
fn drive_counted(
    apps: usize,
    quanta: usize,
    tolerance: Option<f64>,
) -> (u64, u64, u64) {
    let server = XeonServer::dell_r410_calibrated();
    let recorder = Arc::new(Recorder::in_memory());
    let mut coordinator = Coordinator::new(120.0, Box::new(PerformanceMarket::default()))
        .with_obs(Arc::clone(&recorder));
    coordinator.set_arbitration_tolerance(tolerance);
    let mut handles = Vec::with_capacity(apps);
    for index in 0..apps {
        let workload = Workload::new(
            SplashBenchmark::ALL[index % SplashBenchmark::ALL.len()],
            index as u64,
        );
        let driver = HeartbeatedWorkload::new(workload);
        driver.set_heart_rate_goal(20.0 + index as f64);
        let runtime = SeecRuntime::builder(driver.monitor())
            .actuators(experiments::fig3::xeon_actuators(&server))
            .seed(index as u64)
            .build()
            .expect("actuators registered");
        handles.push(coordinator.register(
            ManagedApp::new(driver, runtime)
                .with_weight(1.0 + (index % 3) as f64)
                .with_nominal_power_hint(6.0),
        ));
    }
    let mut now = 0.0;
    for _ in 0..quanta {
        now += 0.1;
        for &handle in &handles {
            coordinator.advance(handle, now - 0.1, now, 2.0, 5.0);
        }
        coordinator.step(now).expect("goals registered");
    }
    let snapshot = recorder.snapshot();
    (
        snapshot.counter(Counter::AppsSkipped),
        snapshot.counter(Counter::AppsRearbitrated),
        snapshot.counter(Counter::AppsDecided),
    )
}

/// Every active app-quantum lands in exactly one of the three decide
/// counters, on both arbitration paths: the full path books everything
/// under `apps_decided`, the incremental path splits the same ledger into
/// `apps_skipped` + `apps_rearbitrated`.
#[test]
fn incremental_counters_reconcile_with_the_quantum_ledger() {
    let (apps, quanta) = (6, 10);
    let ledger = (apps * quanta) as u64;

    let (skipped, rearbitrated, decided) = drive_counted(apps, quanta, None);
    assert_eq!(skipped + rearbitrated + decided, ledger);
    assert_eq!(skipped, 0, "the full path never skips");
    assert_eq!(rearbitrated, 0, "the full path books under apps_decided");

    let (skipped, rearbitrated, decided) = drive_counted(apps, quanta, Some(0.2));
    assert_eq!(skipped + rearbitrated + decided, ledger);
    assert_eq!(decided, 0, "the incremental path books its own counters");
    assert!(
        skipped > 0,
        "a steady fleet at tolerance 0.2 must skip: {rearbitrated} rearbitrated"
    );

    // Tolerance 0 exercises the incremental machinery but can never skip.
    let (skipped, rearbitrated, decided) = drive_counted(apps, quanta, Some(0.0));
    assert_eq!(skipped + rearbitrated + decided, ledger);
    assert_eq!(skipped, 0, "tolerance 0 re-arbitrates everything");
    assert_eq!(decided, 0);
    assert_eq!(rearbitrated, ledger);
}

/// The `fig5 --fleet` report's own ledger reconciles, its tolerance-0
/// differential holds, and everything but the wall-clock timings is
/// deterministic across runs.
#[test]
fn fleet_scaling_report_reconciles_and_is_deterministic() {
    let first = experiments::FleetScalingReport::measure(2_000);
    assert!(first.counters_reconcile, "{first:?}");
    assert!(first.tolerance_zero_identical, "{first:?}");
    assert_eq!(
        first.apps_skipped + first.apps_rearbitrated,
        first.active_app_quanta
    );
    assert!(first.apps_skipped > 0, "steady fleet majority skips");

    let second = experiments::FleetScalingReport::measure(2_000);
    assert_eq!(first.apps_skipped, second.apps_skipped);
    assert_eq!(first.apps_rearbitrated, second.apps_rearbitrated);
    assert_eq!(first.active_app_quanta, second.active_app_quanta);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The chaos pipeline — fault plans, quarantine ladders, rack
    /// breakers, the paths that actually emit events — serialises to
    /// byte-identical figure JSON with and without telemetry (wall-clock
    /// runtime fields canonicalised away, as everywhere else).
    #[test]
    fn figure_json_is_byte_identical_under_fault_plans(seed in 0u64..1_000) {
        let scenarios = workloads::chaos_mixes(seed);
        let scenario = scenarios[(seed as usize) % scenarios.len()].clone();
        let baseline =
            experiments::FigureChaos::compute_scenarios(std::slice::from_ref(&scenario), seed);
        let (observed, snapshot) = experiments::FigureChaos::compute_scenarios_obs(
            std::slice::from_ref(&scenario),
            seed,
            true,
        );
        let snapshot = snapshot.expect("observe=true yields a snapshot");
        let baseline_json = serde_json::to_string_pretty(&baseline.canonical())
            .expect("figure serialises");
        let observed_json = serde_json::to_string_pretty(&observed.canonical())
            .expect("figure serialises");
        prop_assert_eq!(baseline_json, observed_json);
        // The snapshot itself must reconcile with the run it watched:
        // every decided app shows up in the per-decision histogram, and
        // the four coordinated arms each stepped every quantum on every
        // rack, so the step histogram total matches the step counter.
        let report = snapshot.to_report();
        let decided = report.counter("apps_decided").expect("counter present");
        let decisions = report.stage("decision").expect("stage present").count;
        prop_assert_eq!(decided, decisions);
        let stepped = report.counter("quanta_stepped").expect("counter present");
        let steps = report.stage("step").expect("stage present").count;
        prop_assert_eq!(stepped, steps);
        prop_assert!(stepped > 0);
    }
}
