//! # angstrom-seec: a reproduction of *Self-aware Computing in the Angstrom Processor*
//!
//! This facade crate re-exports every component of the reproduction so that
//! examples, integration tests, and downstream users can depend on a single
//! crate:
//!
//! * [`heartbeats`] — the Application Heartbeats goal/progress interface.
//! * [`actuation`] — the actuator (action) specification interface.
//! * [`seec`] — the SEEC observe–decide–act runtime with layered control.
//! * [`coordinator`] — multi-application coordination: shared power-budget
//!   arbitration across many ODA loops.
//! * [`angstrom_sim`] — the Angstrom manycore architectural simulator.
//! * [`xeon_sim`] — the Linux/x86 Xeon server model of the existing-system
//!   evaluation.
//! * [`workloads`] — synthetic SPLASH-2 workload models.
//! * [`experiments`] — baselines, oracles, sweeps, and figure generators.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use angstrom_seec::prelude::*;
//!
//! let chip = AngstromChip::new(ChipConfig::angstrom_256());
//! let demand = Workload::new(SplashBenchmark::Barnes, 1).average_quantum();
//! let report = chip.evaluate(
//!     &experiments::driver::to_chip_demand(&demand),
//!     &ChipConfiguration::default_for(chip.config()),
//! );
//! assert!(report.performance_per_watt() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use actuation;
pub use angstrom_sim;
pub use coordinator;
pub use experiments;
pub use heartbeats;
pub use seec;
pub use workloads;
pub use xeon_sim;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use actuation::{Actuator, ActuatorSpec, Axis, Configuration, Scope, SettingSpec, TableActuator};
    pub use angstrom_sim::chip::{AngstromChip, ChipConfiguration, ExecutionReport};
    pub use angstrom_sim::config::ChipConfig;
    pub use coordinator::{
        Coordinator, ManagedApp, PerformanceMarket, StaticShare, WeightedFair,
    };
    pub use heartbeats::{Goal, HeartbeatRegistry, PerformanceGoal, PowerGoal};
    pub use seec::{SeecRuntime, UncoordinatedRuntime};
    pub use workloads::{HeartbeatedWorkload, SplashBenchmark, Workload};
    pub use xeon_sim::{MachineMeter, ServerConfiguration, ServerDemand, XeonServer};
}
